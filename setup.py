"""Legacy setup shim for offline editable installs (`pip install -e .`).

Project metadata lives in pyproject.toml; this file only exists so pip
can fall back to the setup.py editable-install path in environments
without the `wheel` package.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "nvpsim: behavioral simulation framework for energy-harvesting "
        "nonvolatile processors"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
)
