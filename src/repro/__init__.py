"""nvpsim — a behavioral simulation framework for nonvolatile processors.

Reproduction of *"Nonvolatile processors: Why is it trending?"*
(F. Su, K. Ma, X. Li, T. Wu, Y. Liu, V. Narayanan — DATE 2017): an
end-to-end model of batteryless, energy-harvesting IoT systems built
around NVPs, spanning the NVM device layer, the MCU architecture, the
harvesting/storage front end, the system-level power-management state
machine, the conventional baselines, and the adaptive policies the
tutorial surveys.

Quick start::

    from repro import (
        wristwatch_trace, standard_rectifier, AbstractWorkload,
        build_nvp, build_wait_compute, SystemSimulator,
    )

    trace = wristwatch_trace(10.0, seed=1)
    nvp = build_nvp(AbstractWorkload())
    result = SystemSimulator(trace, nvp, rectifier=standard_rectifier()).run()
    print(result.summary())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduced experiment suite.
"""

from repro.core import (
    BackupController,
    CompareAndWriteBackup,
    ForwardProgressLedger,
    FullBackup,
    IncrementalWordBackup,
    NVPConfig,
    NVPPlatform,
    WakeupModel,
)
from repro.baselines import (
    CheckpointConfig,
    CheckpointPlatform,
    OraclePlatform,
    WaitComputePlatform,
)
from repro.harvest import (
    PowerTrace,
    Rectifier,
    analyze_outages,
    combine_traces,
    constant_trace,
    hybrid_trace,
    rf_trace,
    solar_trace,
    square_trace,
    standard_profiles,
    thermal_trace,
    wristwatch_trace,
)
from repro.exp import (
    ExperimentSpec,
    ResultCache,
    RunRecord,
    SweepOutcome,
    SweepRunner,
)
from repro.isa.energy import EnergyModel, dvfs_model
from repro.policy import (
    ConfigMatcher,
    EnergyBandGovernor,
    PowerAwareFrequencyPolicy,
)
from repro.storage.frontend import DualChannelFrontEnd, SingleChannelFrontEnd
from repro.system.peripherals import (
    ADC_10BIT,
    IMAGE_SENSOR,
    Peripheral,
    PeripheralSet,
    RADIO_TRX,
)
from repro.nvm import (
    FERAM,
    LinearPolicy,
    LogPolicy,
    NVMArray,
    NVMTechnology,
    ParabolaPolicy,
    RERAM,
    STT_MRAM,
    TECHNOLOGIES,
    UniformPolicy,
    technology_by_name,
)
from repro.storage import Capacitor, ChargeEfficiency, IdealStorage, TieredStorage
from repro.system import (
    PeriodicTask,
    ScheduleReport,
    SimulationResult,
    SystemSimulator,
    Telemetry,
    plan_thresholds,
    schedule_replay,
)
from repro.system.presets import (
    build_checkpoint,
    build_nvp,
    build_oracle,
    build_wait_compute,
    checkpoint_capacitor,
    nvp_capacitor,
    standard_rectifier,
    supercap,
)
from repro.workloads import AbstractWorkload, FunctionalWorkload, Workload
from repro.workloads.suite import (
    KERNELS,
    abstract_twin,
    build_kernel,
    expected_stream,
    make_functional_workload,
    measure_kernel,
)
from repro.quality import mse, psnr

__version__ = "1.0.0"

__all__ = [
    "ADC_10BIT",
    "AbstractWorkload",
    "BackupController",
    "ConfigMatcher",
    "DualChannelFrontEnd",
    "EnergyBandGovernor",
    "EnergyModel",
    "ExperimentSpec",
    "ResultCache",
    "RunRecord",
    "SweepOutcome",
    "SweepRunner",
    "IMAGE_SENSOR",
    "Peripheral",
    "PeripheralSet",
    "PeriodicTask",
    "PowerAwareFrequencyPolicy",
    "RADIO_TRX",
    "ScheduleReport",
    "SingleChannelFrontEnd",
    "Telemetry",
    "TieredStorage",
    "schedule_replay",
    "combine_traces",
    "dvfs_model",
    "hybrid_trace",
    "Capacitor",
    "ChargeEfficiency",
    "CheckpointConfig",
    "CheckpointPlatform",
    "CompareAndWriteBackup",
    "FERAM",
    "ForwardProgressLedger",
    "FullBackup",
    "FunctionalWorkload",
    "IdealStorage",
    "IncrementalWordBackup",
    "KERNELS",
    "LinearPolicy",
    "LogPolicy",
    "NVMArray",
    "NVMTechnology",
    "NVPConfig",
    "NVPPlatform",
    "OraclePlatform",
    "ParabolaPolicy",
    "PowerTrace",
    "RERAM",
    "Rectifier",
    "STT_MRAM",
    "SimulationResult",
    "SystemSimulator",
    "TECHNOLOGIES",
    "UniformPolicy",
    "WaitComputePlatform",
    "WakeupModel",
    "Workload",
    "abstract_twin",
    "analyze_outages",
    "build_checkpoint",
    "build_kernel",
    "build_nvp",
    "build_oracle",
    "build_wait_compute",
    "checkpoint_capacitor",
    "constant_trace",
    "expected_stream",
    "make_functional_workload",
    "measure_kernel",
    "mse",
    "nvp_capacitor",
    "plan_thresholds",
    "psnr",
    "rf_trace",
    "solar_trace",
    "square_trace",
    "standard_profiles",
    "standard_rectifier",
    "supercap",
    "technology_by_name",
    "thermal_trace",
    "wristwatch_trace",
]
