"""Comparator platforms.

The DATE'17 tutorial positions the NVP against the two conventional
ways of computing on harvested power:

* **wait-and-compute** (:mod:`repro.baselines.waitcompute`): a
  volatile MCU sleeps while a large storage capacitor trickle-charges
  enough energy for an entire work unit, then runs it to completion —
  losing everything if the estimate was wrong.
* **software checkpointing** (:mod:`repro.baselines.checkpoint`):
  a volatile MCU with on-chip NVM (the MSP430-FRAM model embraced by
  Mementos / Hibernus / QuickRecall) copies its state through a
  software loop, either periodically or on a voltage trigger.
* **oracle** (:mod:`repro.baselines.oracle`): uninterrupted execution
  at the trace's mean power — the upper bound used for normalisation.
"""

from repro.baselines.waitcompute import WaitComputePlatform
from repro.baselines.checkpoint import CheckpointConfig, CheckpointPlatform
from repro.baselines.oracle import OraclePlatform

__all__ = [
    "CheckpointConfig",
    "CheckpointPlatform",
    "OraclePlatform",
    "WaitComputePlatform",
]
