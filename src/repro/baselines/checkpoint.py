"""Software-checkpointing baselines (Mementos / Hibernus class).

A volatile MCU with on-chip NVM (the MSP430-FRAM model) preserves
progress by copying its registers and live RAM to NVM through a
*software* loop — no distributed nonvolatile flip-flops.  Compared to
an NVP's hardware backup this is:

* **bigger** — the software cannot know the minimal live set, so it
  saves a conservative RAM window on top of the registers;
* **slower** — each word costs load/store instructions rather than a
  parallel flip-flop write;
* **triggered differently** —
  - ``"periodic"`` (Mementos): checkpoint every N instructions, and
    roll back to the last checkpoint on power loss;
  - ``"voltage"`` (Hibernus): checkpoint once, when stored energy
    falls to a threshold, then sleep — resume on recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.progress import ForwardProgressLedger
from repro.nvm.technology import FERAM, NVMTechnology
from repro.system import exactkernel, fastpath
from repro.system.fastpath import OffRunPlan
from repro.system.simulator import TickReport
from repro.system.thresholds import ThresholdPlan, plan_thresholds
from repro.workloads.base import Workload


@dataclass(frozen=True)
class CheckpointConfig:
    """Software-checkpoint cost model.

    Attributes:
        technology: NVM the checkpoint is written to.
        checkpoint_words: words copied per checkpoint (registers plus
            the conservative live-RAM window).
        instructions_per_word: software copy-loop cost per word.
        trigger: ``"periodic"`` or ``"voltage"``.
        period_instructions: checkpoint period for the periodic trigger.
        margin: energy-safety multiplier for the voltage trigger.
        boot_time_s: MCU wake-up/re-init time (software restore adds
            the copy-back on top).
        label: result label.
    """

    technology: NVMTechnology = FERAM
    checkpoint_words: int = 96
    instructions_per_word: int = 4
    trigger: str = "voltage"
    period_instructions: int = 2_000
    margin: float = 1.5
    boot_time_s: float = 400e-6
    label: str = "sw-checkpoint"

    def __post_init__(self) -> None:
        if self.checkpoint_words <= 0:
            raise ValueError("checkpoint_words must be positive")
        if self.instructions_per_word <= 0:
            raise ValueError("instructions_per_word must be positive")
        if self.trigger not in ("periodic", "voltage"):
            raise ValueError(f"unknown trigger {self.trigger!r}")
        if self.period_instructions <= 0:
            raise ValueError("period must be positive")
        if self.margin < 1.0:
            raise ValueError("margin must be >= 1.0")
        if self.boot_time_s < 0:
            raise ValueError("boot time cannot be negative")
        if self.technology.volatile:
            raise ValueError("checkpoints need a nonvolatile technology")


class CheckpointPlatform:
    """Volatile MCU + software checkpointing to on-chip NVM.

    Args:
        workload: the computation.
        storage: the storage element.
        config: checkpoint cost/trigger model.
    """

    def __init__(
        self,
        workload: Workload,
        storage,
        config: Optional[CheckpointConfig] = None,
    ) -> None:
        self.workload = workload
        self.storage = storage
        self.config = config if config is not None else CheckpointConfig()
        self.label = self.config.label
        self.ledger = ForwardProgressLedger()
        self._state = "off"
        self._stall_s = 0.0
        self._instr_since_cp = 0
        self._snapshot = workload.snapshot()
        self._has_checkpoint = False
        self._plan: Optional[ThresholdPlan] = None
        self.checkpoints = 0
        self.failed_checkpoints = 0
        self.resumes = 0
        self.failed_resumes = 0
        self.checkpoint_energy_total_j = 0.0
        self.restore_energy_total_j = 0.0
        self.consumed_j = 0.0

    # -- cost model --------------------------------------------------------

    def checkpoint_energy_j(self) -> float:
        """Energy of one software checkpoint (copy loop + NVM writes)."""
        cfg = self.config
        copy_instr = cfg.checkpoint_words * cfg.instructions_per_word
        software = copy_instr * self.workload.mean_instruction_energy_j()
        writes = cfg.technology.backup_energy_j(cfg.checkpoint_words * 16)
        return software + writes

    def checkpoint_time_s(self) -> float:
        """Duration of one software checkpoint."""
        cfg = self.config
        copy_instr = cfg.checkpoint_words * cfg.instructions_per_word
        software = copy_instr * self.workload.mean_instruction_time_s()
        writes = cfg.technology.backup_time_s(cfg.checkpoint_words * 16, 16)
        return software + writes

    def restore_energy_j(self) -> float:
        """Energy of one software resume (read-back copy loop)."""
        cfg = self.config
        copy_instr = cfg.checkpoint_words * cfg.instructions_per_word
        software = copy_instr * self.workload.mean_instruction_energy_j()
        reads = cfg.technology.restore_energy_j(cfg.checkpoint_words * 16)
        return software + reads

    def restore_time_s(self) -> float:
        """Duration of one software resume, including MCU boot."""
        cfg = self.config
        copy_instr = cfg.checkpoint_words * cfg.instructions_per_word
        software = copy_instr * self.workload.mean_instruction_time_s()
        reads = cfg.technology.restore_time_s(cfg.checkpoint_words * 16, 16)
        return cfg.boot_time_s + software + reads

    def thresholds(self, dt_s: float) -> ThresholdPlan:
        """Energy thresholds (voltage-trigger variant)."""
        if self._plan is None:
            self._plan = plan_thresholds(
                backup_cost_j=self.checkpoint_energy_j(),
                restore_cost_j=self.restore_energy_j(),
                run_power_w=self.workload.run_power_w(),
                tick_s=dt_s,
                backup_margin=self.config.margin,
                run_reserve_ticks=2.0,
            )
        return self._plan

    @property
    def finished(self) -> bool:
        """True when the workload has completed."""
        return self.workload.finished

    # -- state machine -------------------------------------------------------

    def tick(self, p_in_w: float, dt_s: float) -> TickReport:
        """Advance one tick."""
        if self.workload.finished:
            self.storage.step(p_in_w, 0.0, dt_s)
            return TickReport("done")
        plan = self.thresholds(dt_s)

        if self._state == "off":
            self.storage.step(p_in_w, 0.0, dt_s)
            if self.storage.energy_j >= plan.start_threshold_j:
                return self._resume()
            return TickReport("off")

        if (
            self.config.trigger == "voltage"
            and self.storage.energy_j <= plan.backup_threshold_j
        ):
            return self._checkpoint_and_sleep(p_in_w, dt_s)

        exec_budget = max(0.0, dt_s - self._stall_s)
        self._stall_s = max(0.0, self._stall_s - dt_s)
        advance = self.workload.advance(exec_budget)
        self.ledger.execute(advance.instructions)
        self._instr_since_cp += advance.instructions

        extra_energy = 0.0
        if (
            self.config.trigger == "periodic"
            and self._instr_since_cp >= self.config.period_instructions
        ):
            extra_energy = self._inline_checkpoint()

        load_w = (advance.energy_j + extra_energy) / dt_s
        step = self.storage.step(p_in_w, load_w, dt_s)
        self.consumed_j += step.delivered_j
        if step.deficit:
            self.ledger.rollback()
            self.workload.clear_volatile()
            self._state = "off"
            return TickReport("run", advance.instructions)
        return TickReport("run", advance.instructions)

    def off_plan(self, dt_s: float) -> Optional[OffRunPlan]:
        """Dormant-charging plan: sleep toward the start threshold.

        Both trigger variants sleep the same way; the wake runs
        through the same :meth:`_resume` the per-tick path uses.
        ``None`` while powered on.
        """
        if self._state != "off":
            return None
        return OffRunPlan(
            state="off",
            target_j=lambda: self.thresholds(dt_s).start_threshold_j,
            on_charged=None,
            on_cross=self._resume,
        )

    def fast_forward(self, p_in_w, start, stop, dt_s):
        """Bulk-advance through off/done ticks (fast-path engine).

        Same contract as
        :meth:`repro.core.nvp.NVPPlatform.fast_forward`: delegates to
        the shared :func:`~repro.system.fastpath.fast_forward_offruns`
        loop driving :meth:`off_plan`.  Returns ``(state, ticks)``
        runs or ``None`` to fall back.
        """
        return fastpath.fast_forward_offruns(self, p_in_w, start, stop, dt_s)

    def exact_batch(self, p_in_w, start, stop, dt_s):
        """Batch powered-on ``"run"`` ticks (exact-kernel engine).

        Same contract as
        :meth:`repro.core.nvp.NVPPlatform.exact_batch`.  The voltage
        trigger stops before the backup-threshold crossing; the
        periodic trigger stops before the tick whose instructions trip
        the checkpoint period (the instructions-since-checkpoint
        counter is carried through the batch).  Deficits and the
        finishing tick always stay on the scalar path.
        """
        mode = exactkernel.batchable_workload(self.workload)
        if (
            self._state != "on"
            or self.workload.finished
            or not mode
            or getattr(self.storage, "soa_params", None) is None
        ):
            return None
        plan = self.thresholds(dt_s)
        if self.config.trigger == "voltage":
            stop_energy = plan.backup_threshold_j
            period_limit = None
        else:
            stop_energy = None
            period_limit = self.config.period_instructions
        kernel = exactkernel.get_kernel()
        if mode == "recurrence":
            ticks, counter = kernel.storage_run(
                self, p_in_w, start, stop, dt_s,
                stop_energy_j=stop_energy,
                period_limit=period_limit,
                period_count=self._instr_since_cp,
            )
        else:
            # Functional (NV16) workloads: ticks really execute through
            # the block engine; the periodic trigger stops on a
            # conservative worst-case instruction bound, and the
            # finishing tick is consumed in-batch.
            ticks, counter = kernel.isa_storage_run(
                self, p_in_w, start, stop, dt_s,
                stop_energy_j=stop_energy,
                period_limit=period_limit,
                period_count=self._instr_since_cp,
            )
        if not ticks:
            return None
        self._instr_since_cp = counter
        return [("run", ticks)]

    # -- transitions -----------------------------------------------------------

    def _inline_checkpoint(self) -> float:
        """Periodic checkpoint taken while running; returns its energy."""
        energy = self.checkpoint_energy_j()
        self._snapshot = self.workload.snapshot()
        self._has_checkpoint = True
        self.checkpoints += 1
        self.checkpoint_energy_total_j += energy
        self.ledger.commit()
        self._instr_since_cp = 0
        self._stall_s += self.checkpoint_time_s()
        return energy

    def _checkpoint_and_sleep(self, p_in_w: float, dt_s: float) -> TickReport:
        """Voltage-triggered checkpoint, then power down."""
        energy = self.checkpoint_energy_j()
        drawn = self.storage.draw(energy)
        self.consumed_j += drawn
        if drawn < energy:
            self.failed_checkpoints += 1
            self.ledger.rollback()
        else:
            self._snapshot = self.workload.snapshot()
            self._has_checkpoint = True
            self.checkpoints += 1
            self.checkpoint_energy_total_j += energy
            self.ledger.commit()
        self.workload.clear_volatile()
        self._state = "off"
        self._stall_s = 0.0
        self._instr_since_cp = 0
        self.storage.step(p_in_w, 0.0, dt_s)
        return TickReport("backup")

    def _resume(self) -> TickReport:
        """Wake up: software restore from the last checkpoint."""
        energy = self.restore_energy_j() if self._has_checkpoint else 0.0
        if energy > 0.0:
            drawn = self.storage.draw(energy)
            self.consumed_j += drawn
            if drawn < energy:
                self.failed_resumes += 1
                return TickReport("off")
            self.restore_energy_total_j += energy
        if self._has_checkpoint:
            self.workload.restore(self._snapshot)
            self._stall_s += self.restore_time_s()
        else:
            self.workload.restart_unit()
            self._stall_s += self.config.boot_time_s
        self.resumes += 1
        self._state = "on"
        return TickReport("restore")

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for the simulation result."""
        return {
            "forward_progress": self.ledger.persistent,
            "total_executed": self.ledger.total_executed,
            "lost_instructions": self.ledger.lost,
            "units_completed": self.workload.units_completed,
            "backups": self.checkpoints,
            "restores": self.resumes,
            "failed_backups": self.failed_checkpoints,
            "failed_restores": self.failed_resumes,
            "rollbacks": self.ledger.rollbacks,
            "consumed_j": self.consumed_j,
            "backup_energy_j": self.checkpoint_energy_total_j,
            "restore_energy_j": self.restore_energy_total_j,
            "volatile_at_end": self.ledger.volatile,
        }
