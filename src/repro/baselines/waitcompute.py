"""The wait-and-compute baseline.

A volatile low-power MCU sleeps while the harvester trickle-charges a
(large) storage capacitor; once the capacitor holds enough energy for
an entire work unit — e.g. one image frame — the MCU boots and runs
the unit to completion on stored energy.  Progress commits only at
unit boundaries: a brownout mid-unit loses the whole unit, and all the
energy that went into it.

This paradigm pays the capacitor's leakage and conversion losses on
every joule, and its wait times grow with unit size; those are the
systemic costs the NVP paradigm removes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.progress import ForwardProgressLedger
from repro.system import exactkernel, fastpath
from repro.system.fastpath import OffRunPlan
from repro.system.simulator import TickReport
from repro.workloads.base import Workload


class WaitComputePlatform:
    """Charge-then-run volatile MCU.

    Args:
        workload: the computation (unit-structured).
        storage: the (large) storage element.
        energy_margin: multiplier on the estimated unit energy that
            must be stored before booting.
        boot_time_s: MCU boot/init time after power-up (volatile MCUs
            re-initialise from ROM every time).
        boot_energy_j: energy consumed by boot.
        label: result label.
    """

    def __init__(
        self,
        workload: Workload,
        storage,
        energy_margin: float = 1.3,
        boot_time_s: float = 1e-3,
        boot_energy_j: float = 0.2e-6,
        label: str = "wait-compute",
    ) -> None:
        if energy_margin < 1.0:
            raise ValueError("energy margin must be >= 1.0")
        if boot_time_s < 0 or boot_energy_j < 0:
            raise ValueError("boot costs cannot be negative")
        self.workload = workload
        self.storage = storage
        self.energy_margin = energy_margin
        self.boot_time_s = boot_time_s
        self.boot_energy_j = boot_energy_j
        self.label = label
        self.ledger = ForwardProgressLedger()
        self._state = "off"
        self._stall_s = 0.0
        self._committed_units = 0
        self.boots = 0
        self.failed_boots = 0
        self.consumed_j = 0.0

    @property
    def finished(self) -> bool:
        """True when the workload has completed."""
        return self.workload.finished

    def unit_energy_target_j(self) -> float:
        """Stored energy required before booting."""
        unit_energy = (
            self.workload.unit_instructions
            * self.workload.mean_instruction_energy_j()
        )
        return self.energy_margin * unit_energy + self.boot_energy_j

    def tick(self, p_in_w: float, dt_s: float) -> TickReport:
        """Advance one tick."""
        if self.workload.finished:
            self.storage.step(p_in_w, 0.0, dt_s)
            return TickReport("done")

        if self._state == "off":
            self.storage.step(p_in_w, 0.0, dt_s)
            if self.storage.energy_j >= self.unit_energy_target_j():
                return self._boot()
            return TickReport("charge")

        # -- running a unit on stored energy ------------------------------
        exec_budget = max(0.0, dt_s - self._stall_s)
        self._stall_s = max(0.0, self._stall_s - dt_s)
        units_before = self.workload.units_completed
        advance = self.workload.advance(exec_budget)
        self.ledger.execute(advance.instructions)
        load_w = advance.energy_j / dt_s
        step = self.storage.step(p_in_w, load_w, dt_s)
        self.consumed_j += step.delivered_j
        if step.deficit:
            # Brownout mid-unit: the volatile MCU loses everything it
            # had not yet committed (i.e. the current unit).
            self.ledger.rollback()
            self.workload.clear_volatile()
            self.workload.restart_unit()
            self._state = "off"
            return TickReport("run", advance.instructions)
        if self.workload.units_completed > units_before:
            # Unit boundary: results are transmitted/persisted.
            self.ledger.commit()
            self._committed_units = self.workload.units_completed
            if (
                not self.workload.finished
                and self.storage.energy_j < self.unit_energy_target_j()
            ):
                # Not enough stored energy for another full unit:
                # power down gracefully and recharge.
                self._state = "off"
        return TickReport("run", advance.instructions)

    def _boot(self) -> TickReport:
        """Attempt to boot off stored energy once the target is met."""
        drawn = self.storage.draw(self.boot_energy_j)
        self.consumed_j += drawn
        if drawn < self.boot_energy_j:
            self.failed_boots += 1
            return TickReport("charge")
        self.boots += 1
        self._stall_s = self.boot_time_s
        self._state = "on"
        return TickReport("restore")

    def off_plan(self, dt_s: float) -> Optional[OffRunPlan]:
        """Dormant-charging plan: trickle toward the unit target.

        The target is re-evaluated per charge run (it moves as units
        complete); the boot attempt on the crossing tick runs through
        the same :meth:`_boot` the per-tick path uses.  ``None`` while
        powered on.
        """
        del dt_s
        if self._state != "off":
            return None
        return OffRunPlan(
            state="charge",
            target_j=self.unit_energy_target_j,
            on_charged=None,
            on_cross=self._boot,
        )

    def fast_forward(self, p_in_w, start, stop, dt_s):
        """Bulk-advance through charge/done ticks (fast-path engine).

        Same contract as
        :meth:`repro.core.nvp.NVPPlatform.fast_forward`: consumes runs
        of analytically predictable ticks — here ``"charge"`` ticks
        trickle-charging the supercap toward the unit energy target,
        and ``"done"`` ticks after completion — via the shared
        :func:`~repro.system.fastpath.fast_forward_offruns` loop
        driving :meth:`off_plan`.
        """
        return fastpath.fast_forward_offruns(self, p_in_w, start, stop, dt_s)

    def exact_batch(self, p_in_w, start, stop, dt_s):
        """Batch on-unit ``"run"`` ticks (exact-kernel engine).

        Same contract as
        :meth:`repro.core.nvp.NVPPlatform.exact_batch`.  Stops before
        any tick whose instructions cross a unit boundary — commits,
        the post-commit energy check and the possible power-down all
        execute on the scalar path — and before deficits and the
        finishing tick.
        """
        if (
            self._state != "on"
            or self.workload.finished
            # Only the closed-form recurrence can predict unit-boundary
            # crossings before executing the tick; functional ("isa")
            # workloads stay on the scalar path here because every unit
            # boundary needs the post-commit energy check to interleave
            # with execution tick by tick.
            or exactkernel.batchable_workload(self.workload) != "recurrence"
            or getattr(self.storage, "soa_params", None) is None
        ):
            return None
        ticks, _ = exactkernel.get_kernel().storage_run(
            self, p_in_w, start, stop, dt_s,
            stop_at_unit_boundary=True,
        )
        return [("run", ticks)] if ticks else None

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for the simulation result."""
        return {
            "forward_progress": self.ledger.persistent,
            "total_executed": self.ledger.total_executed,
            "lost_instructions": self.ledger.lost,
            "units_completed": self.workload.units_completed,
            "backups": 0,
            "restores": self.boots,
            "failed_backups": 0,
            "failed_restores": self.failed_boots,
            "rollbacks": self.ledger.rollbacks,
            "consumed_j": self.consumed_j,
            "backup_energy_j": 0.0,
            "restore_energy_j": self.boots * self.boot_energy_j,
            "volatile_at_end": self.ledger.volatile,
        }
