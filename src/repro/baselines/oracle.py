"""Oracle platform: uninterrupted execution (upper bound).

Executes the workload continuously as if powered by an ideal supply
at all times.  Used to normalise forward-progress results and to
compute the best-case frame rate of a kernel at a given clock.
"""

from __future__ import annotations

from typing import Dict

from repro.core.progress import ForwardProgressLedger
from repro.system import exactkernel
from repro.system.simulator import TickReport
from repro.workloads.base import Workload


class OraclePlatform:
    """Continuously powered reference platform."""

    def __init__(self, workload: Workload, label: str = "oracle") -> None:
        self.workload = workload
        self.label = label
        self.ledger = ForwardProgressLedger()
        self.consumed_j = 0.0

    @property
    def finished(self) -> bool:
        """True when the workload has completed."""
        return self.workload.finished

    def tick(self, p_in_w: float, dt_s: float) -> TickReport:
        """Execute for the full tick regardless of harvested power."""
        del p_in_w
        if self.workload.finished:
            return TickReport("done")
        advance = self.workload.advance(dt_s)
        self.ledger.execute(advance.instructions)
        self.ledger.commit()
        self.consumed_j += advance.energy_j
        return TickReport("run", advance.instructions)

    def fast_forward(self, p_in_w, start, stop, dt_s):
        """Bulk-advance: a finished oracle's ticks are pure no-ops."""
        del p_in_w, dt_s
        if self.workload.finished and stop > start:
            return [("done", stop - start)]
        return None

    def exact_batch(self, p_in_w, start, stop, dt_s):
        """Batch active ticks: the vectorized exact-kernel path.

        The oracle has no storage element, so between workload
        completions every tick is pure accumulator math — the batched
        kernel integrates consumed energy with a cumulative sum and
        bulk-commits the ledger, bit-identical to per-tick execution
        (see :mod:`repro.system.exactkernel`).  Stops before the
        finishing tick; returns ``[("run", ticks)]`` or ``None``.
        """
        del p_in_w
        mode = exactkernel.batchable_workload(self.workload)
        if self.workload.finished or not mode:
            return None
        kernel = exactkernel.get_kernel()
        if mode == "recurrence":
            ticks = kernel.oracle_run(self, start, stop, dt_s)
        else:
            # Functional (NV16) workloads: each tick really executes
            # through the block engine; the finishing tick is consumed
            # in-batch (the simulator checks finished after the batch).
            ticks = kernel.isa_oracle_run(self, start, stop, dt_s)
        return [("run", ticks)] if ticks else None

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for the simulation result."""
        return {
            "forward_progress": self.ledger.persistent,
            "total_executed": self.ledger.total_executed,
            "lost_instructions": 0,
            "units_completed": self.workload.units_completed,
            "backups": 0,
            "restores": 0,
            "failed_backups": 0,
            "failed_restores": 0,
            "rollbacks": 0,
            "consumed_j": self.consumed_j,
            "backup_energy_j": 0.0,
            "restore_energy_j": 0.0,
            "volatile_at_end": self.ledger.volatile,
        }
