"""Fleet population summaries: percentiles over per-device results.

A fleet answers population questions a single run cannot: what
fraction of deployed devices survived the outage pattern, how skewed
is forward progress across trace offsets, how heavy is the backup
tail.  This module folds a fleet :class:`~repro.exp.runner.SweepOutcome`
into ``fleet.summary`` — percentile blocks per metric plus completion
and survival fractions — and writes the same benchmark-results JSON
shape the sweep engine uses, so fleet runs land in the existing
results/ledger trajectory.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exp.runner import SweepOutcome
from repro.fleet.spec import FleetSpec
from repro.obs.manifest import RunManifest

#: Metrics summarised as percentile blocks: (name, result-dict key).
SUMMARY_METRICS: Tuple[Tuple[str, str], ...] = (
    ("forward_progress", "forward_progress"),
    ("on_time_fraction", "on_time_fraction"),
    ("backups", "backups"),
    ("restores", "restores"),
    ("rollbacks", "rollbacks"),
)

#: Percentiles reported per metric.
PERCENTILES = (5.0, 50.0, 95.0)


def _percentile_block(values: np.ndarray) -> Dict[str, float]:
    block = {
        f"p{int(q) if q == int(q) else q}": float(np.percentile(values, q))
        for q in PERCENTILES
    }
    block["mean"] = float(values.mean())
    block["min"] = float(values.min())
    block["max"] = float(values.max())
    return block


def fleet_summary(outcome: SweepOutcome) -> Dict:
    """Population summary of a fleet outcome (``fleet.summary``).

    Keys: ``n_devices``, ``completed_fraction`` (workload finished
    within the trace), ``survival_fraction`` (any forward progress at
    all — the device did useful work despite the outage pattern), and
    one percentile block per metric in :data:`SUMMARY_METRICS`.
    Devices without a result (failed points) are excluded from the
    percentiles but counted in ``n_devices``.
    """
    results = [r.result for r in outcome.records if r.result is not None]
    summary: Dict = {
        "n_devices": len(outcome.records),
        "evaluated": len(results),
    }
    if not results:
        summary["completed_fraction"] = 0.0
        summary["survival_fraction"] = 0.0
        summary["metrics"] = {}
        return summary
    completed = sum(1 for r in results if r.get("completed"))
    progress = np.array(
        [float(r.get("forward_progress") or 0) for r in results]
    )
    summary["completed_fraction"] = completed / len(results)
    summary["survival_fraction"] = float((progress > 0).mean())
    summary["metrics"] = {
        name: _percentile_block(
            np.array([float(r.get(key) or 0.0) for r in results])
        )
        for name, key in SUMMARY_METRICS
    }
    return summary


def summary_table(summary: Dict) -> Tuple[List[str], List[List]]:
    """``(headers, rows)`` rendering of :func:`fleet_summary`."""
    headers = ["metric"] + [f"p{int(q)}" for q in PERCENTILES] + [
        "mean", "min", "max",
    ]
    rows: List[List] = []
    for name, block in summary.get("metrics", {}).items():
        rows.append(
            [name]
            + [block[f"p{int(q)}"] for q in PERCENTILES]
            + [block["mean"], block["min"], block["max"]]
        )
    return headers, rows


def render_fleet_summary(summary: Dict, title: Optional[str] = None) -> str:
    """Human-readable fleet summary (for the CLI)."""
    from repro.analysis.report import format_table

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"devices: {summary['n_devices']}  "
        f"completed: {summary['completed_fraction']:.1%}  "
        f"survival: {summary['survival_fraction']:.1%}"
    )
    headers, rows = summary_table(summary)
    if rows:
        lines.append(format_table(headers, rows))
    return "\n".join(lines)


def fleet_payload(
    spec: FleetSpec,
    outcome: SweepOutcome,
    command: str = "fleet",
    telemetry: Optional[Dict] = None,
) -> Dict:
    """The benchmark-results JSON payload for one fleet run.

    ``telemetry`` is a :meth:`repro.fleet.telemetry.FleetTelemetry.summary`
    dict; when given, it is embedded in the payload and stamped into
    the run manifest, so the snapshot file is discoverable from both.
    """
    summary = fleet_summary(outcome)
    headers, rows = summary_table(summary)
    manifest = RunManifest.collect(
        command=f"{command}:{spec.name}",
        config={
            "mode": spec.mode,
            "base": dict(spec.base),
            "axes": {axis: list(v) for axis, v in spec.axes.items()},
            "replicas": spec.replicas,
            "stagger_s": spec.stagger_s,
        },
        n_devices=summary["n_devices"],
    )
    manifest.duration_s = outcome.wall_s
    if telemetry is not None:
        manifest.stamp_telemetry(telemetry)
    return {
        "experiment": spec.name,
        "description": spec.description,
        "tables": [
            {"title": "fleet summary", "columns": headers, "rows": rows}
        ],
        "fleet": {
            "summary": summary,
            "telemetry": telemetry,
            "devices": [
                {
                    "index": record.index,
                    "key": record.key,
                    "status": record.status,
                    "label": record.label,
                    "trace_offset_s": record.config.get("trace_offset_s", 0.0),
                    "result": record.result,
                }
                for record in outcome.records
            ],
        },
        "sweep": {
            "points": len(outcome.records),
            "executed": outcome.executed,
            "cached": outcome.cached,
            "failed": outcome.failed,
            "interrupted": outcome.interrupted,
            "wall_s": outcome.wall_s,
            "resources": outcome.resource_usage(),
        },
        "manifest": manifest.to_dict(),
    }


def write_fleet_results(
    spec: FleetSpec,
    outcome: SweepOutcome,
    results_dir: str,
    command: str = "fleet",
    telemetry: Optional[Dict] = None,
) -> str:
    """Write ``<results_dir>/<spec.name>.json``; returns the path."""
    payload = fleet_payload(
        spec, outcome, command=command, telemetry=telemetry
    )
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{spec.name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path
