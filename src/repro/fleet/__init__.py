"""Fleet subsystem: batched lockstep simulation of device populations.

The fleet engine advances N heterogeneous devices — each with its own
platform preset, capacitor sizing, RNG seed, and trace offset —
through simulated time together.  Dormant devices (off/charge/done)
live in a struct-of-arrays layout and bulk-advance through one
vectorized charge step per tick; active devices tick exactly.  Every
device's :class:`~repro.system.result.SimulationResult` is bit-for-bit
identical to running the single-device engine on its sub-trace.

See ``docs/fleet.md`` for the layout and equivalence guarantees.
"""

from repro.fleet.kernel import (
    FleetKernel,
    PowerSegments,
    build_power_segments,
    replay_device,
    run_fleet,
)
from repro.fleet.report import (
    fleet_payload,
    fleet_summary,
    render_fleet_summary,
    write_fleet_results,
)
from repro.fleet.soa import FleetArrays, storage_soa_params
from repro.fleet.spec import (
    DEVICE_OFFSET_KEY,
    FleetSpec,
    device_config_hash,
    resolve_device_config,
)
from repro.fleet.telemetry import (
    FleetTelemetry,
    correlation_report,
    render_correlation,
)

__all__ = [
    "DEVICE_OFFSET_KEY",
    "FleetArrays",
    "FleetKernel",
    "FleetSpec",
    "FleetTelemetry",
    "PowerSegments",
    "build_power_segments",
    "correlation_report",
    "device_config_hash",
    "fleet_payload",
    "fleet_summary",
    "render_correlation",
    "render_fleet_summary",
    "replay_device",
    "resolve_device_config",
    "run_fleet",
    "storage_soa_params",
    "write_fleet_results",
]
