"""Struct-of-arrays state for the batched fleet kernel.

One :class:`FleetArrays` holds the storage state of *every* device in
the fleet as parallel float64 numpy arrays, master-indexed by device
row.  The heart of the subsystem is :meth:`FleetArrays.charge_tick`:
one vectorized zero-load charge tick that evaluates, elementwise, the
exact per-tick float chain of
:meth:`repro.storage.capacitor.Capacitor.charge_many` — so a dormant
device advanced through the arrays ends up with bit-for-bit the same
stored energy and cumulative ledger as the scalar loop.

Why this is exact and not merely close:

* numpy float64 elementwise ops are the same IEEE-754 operations the
  scalar interpreter performs, and the chain is written op for op in
  :meth:`charge_many`'s order (``(2.0 * e) / C`` before the sqrt, the
  headroom clip before the leak, ``((v * v) / R) * dt``);
* scalar branches become masks applied in branch order: the
  blocked/zero-input override comes *after* the overflow adjustment,
  exactly as the scalar ``if``/``else`` structure skips the overflow
  math for blocked ticks;
* :meth:`charge_many`'s flat-efficiency hoist (``eta = eta_peak`` when
  the curve is flat) equals ``np.maximum(eta_floor, eta_peak *
  (1 - offset²))`` because correctly-rounded multiplication is
  monotone, so the parabola never exceeds its peak;
* an :class:`~repro.storage.ideal.IdealStorage` runs through the same
  chain with the identity parameters its ``soa_params`` supplies
  (``C = 1``, flat ``eta = 1``, infinite leak resistance): every extra
  op is an exact float identity (``x * 1.0``, ``x + 0.0``).

Rows whose device is *not* currently dormant stay allocated but
``alive``-masked out: their target is ``inf`` (no spurious crossings),
their power gather is redirected to index 0 (no out-of-bounds), and
their state is reloaded from the device's storage object when they
next go dormant — so garbage evolution on dead rows is never read.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Parameter keys every ``soa_params()`` implementation must supply.
PARAM_KEYS = (
    "capacitance_f",
    "capacity_j",
    "leak_ohm",
    "min_current_a",
    "eta_peak",
    "eta_floor",
    "v_opt_v",
    "v_span_v",
)


def storage_soa_params(storage) -> Optional[dict]:
    """The storage element's SoA parameters, or ``None`` if unsupported.

    A storage class opts into batched advancement by exposing
    ``soa_params`` / ``soa_state`` / ``soa_restore`` (see
    :class:`repro.storage.capacitor.Capacitor`); anything else falls
    back to exact per-tick execution in the kernel.
    """
    if storage is None:
        return None
    getter = getattr(storage, "soa_params", None)
    if getter is None or not hasattr(storage, "soa_restore"):
        return None
    params = getter()
    missing = [key for key in PARAM_KEYS if key not in params]
    if missing:
        raise ValueError(f"soa_params missing keys: {missing}")
    return params


class FleetArrays:
    """Master struct-of-arrays state for ``n`` device rows.

    Attributes:
        dt_s: shared tick duration.
        energy: stored energy per row, joules.
        target: wake threshold per row (``inf`` disarms a row).
        base: row's offset into the concatenated fleet power array.
        pending: dormant ticks consumed since the row's last flush.
        alive: mask of rows currently advanced by :meth:`charge_tick`.
    """

    def __init__(self, n: int, dt_s: float) -> None:
        if n <= 0:
            raise ValueError("fleet needs at least one device")
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        self.n = n
        self.dt_s = dt_s
        # Benign defaults (C=1, flat eta=1, no leak, no min current,
        # infinite capacity/target) keep dead and non-SoA rows NaN-free
        # through the vector chain.
        self.energy = np.zeros(n)
        self.capacitance = np.ones(n)
        self.capacity = np.full(n, np.inf)
        self.leak_ohm = np.full(n, np.inf)
        self.min_current = np.zeros(n)
        self.eta_peak = np.ones(n)
        self.eta_floor = np.ones(n)
        self.v_opt = np.zeros(n)
        self.v_span = np.ones(n)
        self.total_charged = np.zeros(n)
        self.total_leaked = np.zeros(n)
        self.total_wasted = np.zeros(n)
        self.target = np.full(n, np.inf)
        self.base = np.zeros(n, dtype=np.int64)
        self.pending = np.zeros(n, dtype=np.int64)
        self.alive = np.zeros(n, dtype=bool)

    # -- per-row maintenance ----------------------------------------------

    def set_params(self, row: int, params: dict, base: int) -> None:
        """Install a device's storage parameters and trace base."""
        self.capacitance[row] = params["capacitance_f"]
        self.capacity[row] = params["capacity_j"]
        self.leak_ohm[row] = params["leak_ohm"]
        self.min_current[row] = params["min_current_a"]
        self.eta_peak[row] = params["eta_peak"]
        self.eta_floor[row] = params["eta_floor"]
        self.v_opt[row] = params["v_opt_v"]
        self.v_span[row] = params["v_span_v"]
        self.base[row] = base

    def load_row(self, row: int, storage, target_j: float) -> None:
        """Sync a row from its storage object and arm its target."""
        energy, charged, leaked, wasted = storage.soa_state()
        self.energy[row] = energy
        self.total_charged[row] = charged
        self.total_leaked[row] = leaked
        self.total_wasted[row] = wasted
        self.target[row] = target_j
        self.pending[row] = 0
        self.alive[row] = True

    def store_row(self, row: int, storage) -> None:
        """Write a row's evolved state back into its storage object."""
        storage.soa_restore(
            float(self.energy[row]),
            float(self.total_charged[row]),
            float(self.total_leaked[row]),
            float(self.total_wasted[row]),
        )

    def retire_row(self, row: int) -> None:
        """Take a row out of the vectorized path (device woke/ended)."""
        self.alive[row] = False
        self.target[row] = np.inf

    def gather_power(self, p_all: np.ndarray, tick: int) -> np.ndarray:
        """Per-row input power for ``tick`` (dead rows read index 0)."""
        return p_all[np.where(self.alive, self.base + tick, 0)]

    def alive_energy(self) -> np.ndarray:
        """Stored energy of the rows currently on the vectorized path.

        A read-only telemetry reduction: dormant rows hold the live
        storage state here (the storage objects are only re-synced on
        flush), so population energy statistics must read this view,
        not the per-device objects.  Dead rows evolve garbage and are
        masked out.
        """
        return self.energy[self.alive]

    # -- the vectorized charge step ----------------------------------------

    def charge_tick(self, p: np.ndarray) -> Optional[np.ndarray]:
        """One zero-load charge tick across every row.

        Evaluates :meth:`Capacitor.charge_many`'s per-tick float chain
        elementwise (see the module docstring for the bit-exactness
        argument) and returns the rows whose stored energy crossed
        their target on this tick, or ``None`` when no row crossed.
        Dead rows evolve garbage that is never read and, with
        ``target = inf``, never cross.
        """
        dt = self.dt_s
        e = self.energy
        v = np.sqrt(2.0 * e / self.capacitance)
        input_energy = p * dt
        blocked = (
            (self.min_current > 0.0) & (v > 0.0)
            & (p < self.min_current * v)
        )
        offset = (v - self.v_opt) / self.v_span
        eta = np.maximum(
            self.eta_floor, self.eta_peak * (1.0 - offset * offset)
        )
        charged = input_energy * eta
        wasted = input_energy - charged
        headroom = self.capacity - e
        over = charged > headroom
        wasted = np.where(over, wasted + (charged - headroom), wasted)
        charged = np.where(over, headroom, charged)
        # The blocked/zero-input override comes last, mirroring the
        # scalar branch that skips the whole charge block.
        zero = blocked | (input_energy == 0.0)
        charged = np.where(zero, 0.0, charged)
        wasted = np.where(zero, input_energy, wasted)
        e = e + charged
        v = np.sqrt(2.0 * e / self.capacitance)
        leaked = v * v / self.leak_ohm * dt
        leaked = np.where(leaked > e, e, leaked)
        e -= leaked
        self.energy = e
        self.total_charged += charged
        self.total_leaked += leaked
        self.total_wasted += wasted
        self.pending += 1
        crossed = e >= self.target
        if crossed.any():
            return np.flatnonzero(crossed)
        return None
