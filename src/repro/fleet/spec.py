"""Fleet specification: a population of heterogeneous devices.

A :class:`FleetSpec` describes N devices the fleet kernel advances in
lockstep.  It reuses the experiment engine's config vocabulary — every
device config is a :func:`repro.exp.spec.resolve_config` config — and
adds exactly one fleet-only key, ``trace_offset_s``: the device's
start offset (seconds) into its trace, so a fleet can stagger many
devices along one long harvesting recording.

Two deliberate hashing decisions keep fleet points cache-compatible
with ordinary sweeps:

* ``trace_offset_s`` is **not** added to
  :data:`repro.exp.spec.CONFIG_DEFAULTS` — that would change the
  canonical form (and therefore the content hash) of every existing
  cached sweep point;
* a device at offset ``0.0`` hashes identically to the plain sweep
  config (:func:`device_config_hash` strips the zero offset).  This is
  sound because fleet results are bit-for-bit identical to the
  single-device engine (property-tested in
  ``tests/test_fastpath_equivalence.py``), so the cache entries are
  interchangeable.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.exp.spec import _auto_label, config_hash, resolve_config

#: The one config key that exists only for fleet devices.
DEVICE_OFFSET_KEY = "trace_offset_s"

#: Supported expansion modes (same semantics as ExperimentSpec).
MODES = ("grid", "zip")


def resolve_device_config(config: Mapping) -> Dict:
    """Resolve a device config: sweep defaults plus ``trace_offset_s``.

    Returns a fully-resolved config dict whose non-fleet keys went
    through :func:`repro.exp.spec.resolve_config` (defaults applied,
    unknown keys rejected) and whose ``trace_offset_s`` is a validated
    float.  The offset is checked against the configured duration; the
    exact end-of-trace bound is enforced later by
    :meth:`repro.harvest.traces.PowerTrace.offset_ticks`.
    """
    raw = dict(config)
    offset = raw.pop(DEVICE_OFFSET_KEY, 0.0)
    resolved = resolve_config(raw)
    offset = float(offset)
    if offset < 0:
        raise ValueError("trace_offset_s cannot be negative")
    if offset >= resolved["duration_s"]:
        raise ValueError(
            f"trace_offset_s ({offset}s) is at/past the trace duration "
            f"({resolved['duration_s']}s)"
        )
    resolved[DEVICE_OFFSET_KEY] = offset
    return resolved


def device_config_hash(resolved: Mapping) -> str:
    """Content hash of a resolved device config.

    A zero offset is stripped before hashing so offset-0 fleet devices
    share cache entries with ordinary sweep points (their results are
    bit-identical, so recall is exact either way).
    """
    hashable = dict(resolved)
    if hashable.get(DEVICE_OFFSET_KEY, 0.0) == 0.0:
        hashable.pop(DEVICE_OFFSET_KEY, None)
    return config_hash(hashable)


@dataclass(frozen=True)
class FleetSpec:
    """A declarative fleet: axes × replicas over the sweep vocabulary.

    Attributes:
        name: fleet name (ledger/experiment label).
        axes: dotted-key axes expanded like an
            :class:`~repro.exp.spec.ExperimentSpec` (``grid`` product
            or ``zip`` lockstep).  ``trace_offset_s`` is a valid axis.
        base: settings shared by every device.
        mode: ``"grid"`` or ``"zip"``.
        replicas: statistical copies of every expanded point; replica
            ``r`` gets ``platform_seed + r`` and (optionally) a trace
            offset staggered by ``r * stagger_s``.
        stagger_s: per-replica trace-offset increment, seconds.
        telemetry_every_s: default telemetry sampling cadence for this
            fleet (simulated seconds).  ``None`` leaves the cadence to
            the CLI/telemetry defaults; the ``--telemetry-every`` flag
            overrides it.
        description: free-form note carried into results files.
    """

    name: str
    axes: Mapping[str, Sequence] = field(default_factory=dict)
    base: Mapping = field(default_factory=dict)
    mode: str = "grid"
    replicas: int = 1
    stagger_s: float = 0.0
    telemetry_every_s: Optional[float] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("fleet spec needs a name")
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; known: {MODES}")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.stagger_s < 0:
            raise ValueError("stagger_s cannot be negative")
        if self.telemetry_every_s is not None and self.telemetry_every_s <= 0:
            raise ValueError("telemetry_every_s must be positive")
        for axis, values in self.axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(f"axis {axis!r} must be a non-empty list")
        if self.mode == "zip" and self.axes:
            lengths = {len(values) for values in self.axes.values()}
            if len(lengths) > 1:
                raise ValueError("zip mode requires equal-length axes")

    # -- expansion ---------------------------------------------------------

    def points(self) -> List[Dict]:
        """Axis combinations (before replication), last axis fastest."""
        if not self.axes:
            return [{}]
        names = list(self.axes)
        if self.mode == "zip":
            return [
                dict(zip(names, combo))
                for combo in zip(*(self.axes[name] for name in names))
            ]
        return [
            dict(zip(names, combo))
            for combo in itertools.product(
                *(self.axes[name] for name in names)
            )
        ]

    @property
    def n_devices(self) -> int:
        """Total device count: expanded points × replicas."""
        return len(self.points()) * self.replicas

    def devices(self) -> List[Dict]:
        """Every device's fully-resolved config, in fleet order.

        Fleet order is point order (last axis fastest) with replicas
        innermost.  Replica ``r`` bumps ``platform_seed`` by ``r`` —
        deterministic per-device RNG streams — and, when ``stagger_s``
        is set, shifts the trace offset by ``r * stagger_s``.
        """
        configs: List[Dict] = []
        for point in self.points():
            raw = dict(self.base)
            raw.update(point)
            if "label" not in raw and point:
                raw["label"] = _auto_label(point)
            for replica in range(self.replicas):
                device = dict(raw)
                if self.replicas > 1:
                    device["platform_seed"] = (
                        int(device.get("platform_seed") or 0) + replica
                    )
                    if self.stagger_s:
                        device[DEVICE_OFFSET_KEY] = (
                            float(device.get(DEVICE_OFFSET_KEY, 0.0))
                            + replica * self.stagger_s
                        )
                    base_label = device.get("label")
                    device["label"] = (
                        f"{base_label}#r{replica}"
                        if base_label else f"r{replica}"
                    )
                configs.append(resolve_device_config(device))
        if not configs:
            raise ValueError("fleet spec expands to zero devices")
        return configs

    # -- loading -----------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping) -> "FleetSpec":
        """Build a spec from parsed JSON, rejecting unknown keys."""
        if not isinstance(data, Mapping):
            raise ValueError("fleet spec must be a JSON object")
        known = {
            "name", "axes", "base", "mode", "replicas", "stagger_s",
            "telemetry_every_s", "description",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown fleet spec key(s): {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(
            name=data.get("name", ""),
            axes=dict(data.get("axes") or {}),
            base=dict(data.get("base") or {}),
            mode=data.get("mode", "grid"),
            replicas=int(data.get("replicas", 1)),
            stagger_s=float(data.get("stagger_s", 0.0)),
            telemetry_every_s=(
                None if data.get("telemetry_every_s") is None
                else float(data["telemetry_every_s"])
            ),
            description=data.get("description", ""),
        )

    @classmethod
    def from_file(cls, path: str) -> "FleetSpec":
        """Load a fleet spec from a JSON file."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle))
