"""Population telemetry sampled inside the fleet lockstep kernel.

:class:`FleetTelemetry` is the fleet's observatory: bound to a
:class:`~repro.fleet.kernel.FleetKernel` at run start, it wakes at a
fixed tick cadence, takes one vectorized reduction pass over the
population — devices per state, stored energy over the SoA rows,
forward-progress/backup/restore counters, fleet-wide outage fraction —
and folds each scalar series into bounded-memory sketches
(:mod:`repro.obs.fleetstats`), so a 10k-device fleet never
materializes per-device time series.

The contract with the kernel:

* **Zero overhead when disabled.**  ``telemetry=None`` costs the main
  loop exactly one ``is not None`` check per lockstep tick.
* **Read-only.**  Sampling reads kernel/platform state and never
  mutates it, so per-device ``SimulationResults`` are bit-identical
  with telemetry on or off (property-tested in
  ``tests/test_fastpath_equivalence.py``).
* **Deterministic snapshots.**  No wall clock, no RNG: snapshots of
  identical runs are byte-identical JSONL lines, usable as golden
  files.

Snapshots stream through the transport-agnostic layer in
:mod:`repro.obs.export` (JSONL time series + Prometheus textfile) and,
when the kernel has a bus, are also emitted as ``fleet.sample`` events
— which is what the ``repro fleet watch`` dashboard subscribes to.

One sampling caveat, by design: devices running ahead of the lockstep
through the batched exact kernel have already committed their
batched ticks to platform counters, so mid-run counter totals can
lead the lockstep clock by up to one batch.  The final snapshot is
exact — it is taken after every device finalized.

:func:`correlation_report` answers the ROADMAP's cross-device
outage-correlation follow-on *without simulating anything*: outages
are a property of the shared trace structure
(:func:`~repro.fleet.kernel.build_power_segments`), so the windowed
co-outage Jaccard matrix and the storm timeline fall straight out of
the concatenated power array and the per-device offsets.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.fleet.kernel import (
    MODE_ACTIVE,
    MODE_FINAL,
    MODE_PASSIVE,
    build_power_segments,
)
from repro.harvest.outage import DEFAULT_THRESHOLD_W
from repro.obs import events as ev
from repro.obs.export import SnapshotWriter
from repro.obs.fleetstats import (
    FixedBinHistogram,
    QuantileDigest,
    co_outage_matrix,
    find_storms,
    windowed_outages,
)

#: Snapshot schema version stamped into every JSONL line.
SNAPSHOT_SCHEMA = 1

#: Default number of samples across the longest device trace when no
#: explicit cadence is given.
DEFAULT_SAMPLES = 50

#: A sample is "stormy" when at least this fraction of in-trace
#: devices sees sub-threshold power.
DEFAULT_STORM_FRACTION = 0.5

#: Energy histogram edges: log-spaced femtojoules→joules covers every
#: storage preset without per-fleet tuning.
_ENERGY_EDGES = (1e-15, 1.0, 120)

#: Population percentiles reported per snapshot (matches fleet.report).
_SNAPSHOT_PCTS = (5.0, 50.0, 95.0)


class FleetTelemetry:
    """Streaming population statistics for one fleet run.

    Args:
        every_s: sampling cadence in simulated seconds.  ``None``
            derives one from the longest device trace
            (:data:`DEFAULT_SAMPLES` samples end to end).  The cadence
            is rounded to a whole number of ticks, never below one.
        out: optional JSONL path; every snapshot appends one line, and
            a sibling ``<out>.prom`` Prometheus textfile is atomically
            replaced with the latest snapshot.
        threshold_w: outage threshold for the fleet outage fraction.
        storm_fraction: outage fraction at which a sample is flagged
            as a storm.
    """

    def __init__(
        self,
        every_s: Optional[float] = None,
        out: Optional[str] = None,
        threshold_w: float = DEFAULT_THRESHOLD_W,
        storm_fraction: float = DEFAULT_STORM_FRACTION,
    ) -> None:
        if every_s is not None and every_s <= 0:
            raise ValueError("telemetry cadence must be positive")
        self.every_s = every_s
        self.out = out
        self.threshold_w = float(threshold_w)
        self.storm_fraction = float(storm_fraction)
        self.snapshots = 0
        self.storm_samples = 0
        self.last: Optional[Dict] = None
        self.energy_hist = FixedBinHistogram.log_bins(*_ENERGY_EDGES)
        self.outage_digest = QuantileDigest()
        self.progress_digest = QuantileDigest()
        self._writer: Optional[SnapshotWriter] = None
        self._kernel = None
        self._stride = 1
        self._prev_run_s = 0.0
        self._prev_t_s = 0.0

    # -- kernel-facing hooks ------------------------------------------

    def bind(self, kernel) -> int:
        """Attach to a kernel at run start; returns the first sample tick."""
        self._kernel = kernel
        dt = kernel.dt
        longest = int(kernel.segments.n_ticks.max())
        every = self.every_s
        if every is None:
            every = max(longest, DEFAULT_SAMPLES) * dt / DEFAULT_SAMPLES
        self._stride = max(1, int(round(every / dt)))
        self.every_s = self._stride * dt
        if self.out and self._writer is None:
            self._writer = SnapshotWriter(
                self.out, prom_path=self.out + ".prom"
            )
        return self._stride - 1

    def sample(self, i: int) -> int:
        """Take one population sample after tick ``i``; next sample tick."""
        self._record(self._snapshot(i + 1))
        return i + self._stride

    def finish(self, ticks: int) -> None:
        """Final exact snapshot after every device finalized."""
        snap = self._snapshot(ticks)
        snap["final"] = True
        self._record(snap)
        if self._writer is not None:
            self._writer.close()

    # -- the reduction pass -------------------------------------------

    def _snapshot(self, ticks: int) -> Dict:
        kernel = self._kernel
        dt = kernel.dt
        t_s = ticks * dt
        states: Dict[str, int] = {}
        forward_progress = 0
        backups = 0
        restores = 0
        run_s_total = 0.0
        active_energy: List[float] = []
        for dev in kernel.devices:
            mode = dev.mode
            if mode is MODE_FINAL:
                state = "final"
                result = dev.result
                forward_progress += result.forward_progress
                backups += result.backups
                restores += result.restores
                run_s_total += result.state_time_s.get("run", 0.0)
            else:
                if mode is MODE_PASSIVE:
                    state = dev.dormant_state or "off"
                else:
                    state = dev.run_state or "boot"
                    if dev.storage is not None:
                        active_energy.append(dev.storage.energy_j)
                stats = dev.platform.stats()
                forward_progress += int(stats.get("forward_progress", 0))
                backups += int(stats.get("backups", 0))
                restores += int(stats.get("restores", 0))
                run_s_total += dev.state_time.get("run", 0.0)
                if dev.run_state == "run":
                    run_s_total += dev.run_ticks * dt
            states[state] = states.get(state, 0) + 1

        # Stored energy: dormant rows live in the SoA arrays (the
        # storage objects are stale until flushed), active rows on
        # their storage objects.  Final devices are excluded — they
        # left the population.
        energies = kernel.arrays.alive_energy()
        if active_energy:
            energies = np.concatenate(
                [energies, np.asarray(active_energy, dtype=np.float64)]
            )
        energy: Dict[str, float] = {"count": int(energies.size)}
        if energies.size:
            energy["sum"] = float(energies.sum())
            energy["mean"] = float(energies.mean())
            energy["min"] = float(energies.min())
            energy["max"] = float(energies.max())
            pcts = np.percentile(energies, _SNAPSHOT_PCTS)
            for pct, value in zip(_SNAPSHOT_PCTS, pcts):
                energy[f"p{round(pct):02d}"] = float(value)
            self.energy_hist.observe_many(energies)

        # Fleet outage fraction at the last executed tick, over
        # devices still inside their trace.
        segments = kernel.segments
        tick = ticks - 1
        outage_fraction = 0.0
        if tick >= 0:
            in_trace = tick < segments.n_ticks
            if in_trace.any():
                pos = np.where(in_trace, segments.bases + tick, 0)
                below = kernel.P[pos] < self.threshold_w
                outage_fraction = float(below[in_trace].mean())
        storm = outage_fraction >= self.storm_fraction

        n_devices = len(kernel.devices)
        window_s = max(t_s - self._prev_t_s, dt)
        rate_ips = max(run_s_total - self._prev_run_s, 0.0) / window_s
        self._prev_run_s = run_s_total
        self._prev_t_s = t_s
        return {
            "schema": SNAPSHOT_SCHEMA,
            "tick": ticks,
            "t_s": t_s,
            "dt_s": dt,
            "devices": {
                "total": n_devices,
                "live": kernel.n_live,
                "passive": kernel.n_passive,
                "final": n_devices - kernel.n_live,
            },
            "states": dict(sorted(states.items())),
            "energy_j": energy,
            "progress": {
                "forward_progress": forward_progress,
                "run_s_total": run_s_total,
                "run_rate": rate_ips,
            },
            "counters": {
                "backups": backups,
                "restores": restores,
                "ticks_batched": kernel.ticks_batched,
            },
            "outage": {
                "fraction": outage_fraction,
                "threshold_w": self.threshold_w,
                "storm": storm,
            },
        }

    def _record(self, snap: Dict) -> None:
        self.snapshots += 1
        self.last = snap
        if snap["outage"]["storm"]:
            self.storm_samples += 1
        self.outage_digest.observe(snap["outage"]["fraction"])
        self.progress_digest.observe(snap["progress"]["run_rate"])
        if self._writer is not None:
            self._writer.append(snap)
        bus = self._kernel.bus
        if bus is not None:
            bus.emit(ev.FLEET_SAMPLE, t_s=snap["t_s"], snapshot=snap)

    # -- reporting -----------------------------------------------------

    def summary(self) -> Dict:
        """Bounded-size summary for the ledger / manifest / report.

        Safe to call even when the fleet never executed (all cache
        hits): everything reads as zero/empty.
        """
        out: Dict = {
            "snapshots": self.snapshots,
            "every_s": self.every_s,
            "out": self.out,
            "storm_samples": self.storm_samples,
            "energy_j": self.energy_hist.summary(),
            "outage_fraction": self.outage_digest.summary(),
            "run_rate": self.progress_digest.summary(),
        }
        if self.last is not None:
            out["final"] = {
                "t_s": self.last["t_s"],
                "forward_progress":
                    self.last["progress"]["forward_progress"],
                "run_s_total": self.last["progress"]["run_s_total"],
                "backups": self.last["counters"]["backups"],
                "restores": self.last["counters"]["restores"],
                "states": self.last["states"],
            }
        return out


# -- outage correlation ----------------------------------------------------


def correlation_report(
    configs: List[Dict],
    window_s: Optional[float] = None,
    threshold_w: float = DEFAULT_THRESHOLD_W,
    storm_fraction: float = DEFAULT_STORM_FRACTION,
) -> Dict:
    """Cross-device co-outage analysis from the shared trace structure.

    No simulation runs: outage timing is fully determined by the
    concatenated rectified power array and each device's offset into
    it, so the analysis is exact for any fleet the kernel would run.

    Returns a JSON-safe report: the windowed ``co_outage`` Jaccard
    matrix (symmetric, unit diagonal — see
    :func:`repro.obs.fleetstats.co_outage_matrix`), the per-window
    fleet ``outage_fraction`` timeline, and the detected ``storms``.
    The matrix is dense D×D — quadratic in fleet size, intended for
    drill-down on up-to-a-few-thousand-device fleets, not 10k-device
    telemetry (which uses the streaming fraction instead).

    Args:
        configs: resolved device configs (fleet order).
        window_s: correlation window; defaults to 1% of the longest
            device trace (≥ one tick).
        threshold_w: outage power threshold.
        storm_fraction: minimum in-outage device fraction for a window
            to count as part of a storm.
    """
    segments = build_power_segments(configs)
    dt = segments.dt_s
    longest_s = float(segments.n_ticks.max()) * dt
    if window_s is None:
        window_s = max(longest_s / 100.0, dt)
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    window_ticks = max(1, int(round(window_s / dt)))
    mask = segments.P < threshold_w
    windows = windowed_outages(
        mask, segments.bases, segments.n_ticks, window_ticks
    )
    matrix = co_outage_matrix(windows)
    fractions = (
        windows.mean(axis=0) if windows.size else np.zeros(0)
    )
    storms = find_storms(
        fractions, window_ticks * dt, threshold=storm_fraction
    )
    n = matrix.shape[0]
    off_diag = matrix[~np.eye(n, dtype=bool)] if n > 1 else np.zeros(0)
    return {
        "schema": SNAPSHOT_SCHEMA,
        "n_devices": n,
        "dt_s": dt,
        "window_s": window_ticks * dt,
        "window_ticks": window_ticks,
        "n_windows": int(windows.shape[1]),
        "threshold_w": float(threshold_w),
        "storm_fraction": float(storm_fraction),
        "outage_windows_per_device": windows.sum(axis=1).tolist(),
        "outage_fraction": [float(f) for f in fractions],
        "co_outage": [[float(v) for v in row] for row in matrix],
        "mean_co_outage": (
            float(off_diag.mean()) if off_diag.size else 1.0
        ),
        "storms": storms,
        "storm_seconds": float(
            sum(storm["duration_s"] for storm in storms)
        ),
    }


def render_correlation(report: Dict, width: int = 60) -> str:
    """Human-readable correlation report (the CLI's default output)."""
    lines = [
        f"fleet.correlate: {report['n_devices']} device(s), "
        f"{report['n_windows']} window(s) x {report['window_s']:.4g}s, "
        f"threshold {report['threshold_w']:.3g} W",
        f"mean pairwise co-outage: {report['mean_co_outage']:.3f}",
    ]
    fractions = report["outage_fraction"]
    if fractions:
        peak = max(fractions)
        lines.append(
            f"fleet outage fraction: mean {sum(fractions) / len(fractions):.3f}"
            f", peak {peak:.3f}"
        )
        # Sparkline-ish storm timeline in pure ASCII.
        marks = "".join(
            "#" if f >= report["storm_fraction"]
            else ("+" if f > 0 else ".")
            for f in _decimate(fractions, width)
        )
        lines.append(f"timeline [{marks}]")
    storms = report["storms"]
    if storms:
        lines.append(
            f"storms: {len(storms)} covering "
            f"{report['storm_seconds']:.4g}s"
        )
        for storm in storms[:10]:
            lines.append(
                f"  {storm['start_s']:.4g}s..{storm['end_s']:.4g}s "
                f"peak {storm['peak_fraction']:.2f}"
            )
        if len(storms) > 10:
            lines.append(f"  ... {len(storms) - 10} more")
    else:
        lines.append("storms: none")
    return "\n".join(lines)


def _decimate(values: List[float], width: int) -> List[float]:
    """At most ``width`` bucket-max values (peaks survive decimation)."""
    if len(values) <= width:
        return list(values)
    out: List[float] = []
    step = len(values) / width
    for b in range(width):
        lo = int(math.floor(b * step))
        hi = max(int(math.floor((b + 1) * step)), lo + 1)
        out.append(max(values[lo:hi]))
    return out
