"""The fleet kernel: N heterogeneous devices advanced in lockstep.

One :class:`FleetKernel` walks a whole fleet through simulated time
tick by tick.  Dormant devices (off/charge/done) live in the
struct-of-arrays state (:class:`repro.fleet.soa.FleetArrays`) and
bulk-advance through one vectorized charge step per tick; devices that
are powered on tick exactly through their own platform state machine,
just like the single-device engine.  Wake attempts on
threshold-crossing ticks run through the platform's
:class:`~repro.system.fastpath.OffRunPlan` hooks — the very hooks the
single-device fast path drives — so every transition executes the
same Python code in both engines.

The per-device :class:`~repro.system.result.SimulationResult` is
therefore **bit-for-bit identical** to running
:class:`~repro.system.simulator.SystemSimulator` on the device's own
sub-trace (property-tested in ``tests/test_fastpath_equivalence.py``):

* the vectorized charge step reproduces ``charge_many`` — and hence
  repeated ``storage.step(p, 0.0, dt)`` — exactly (see
  :mod:`repro.fleet.soa`);
* run-length state-time accounting uses the same
  merge-and-flush-on-transition accumulator as the engine, with
  dormant runs merged as integer tick counts before the single
  ``count * dt`` product;
* harvested energy is the same cumulative-sum prefix the engine's
  vectorized pre-pass reads;
* powered-on devices route their predictable ``"run"`` ticks through
  the platform's ``exact_batch`` capability (the batched exact kernel,
  :mod:`repro.system.exactkernel`) when available — the same bulk
  advance the single engine performs, bit-for-bit identical to scalar
  ticking — running ahead of the lockstep and rejoining at the first
  event tick;
* results are materialised through the shared
  :func:`repro.system.simulator.assemble_result`.

Devices whose storage does not implement the SoA contract (or whose
platform has no ``off_plan``) simply stay on the exact per-tick path —
correctness never depends on the vectorization being available.
"""

from __future__ import annotations

import math
import os
import time
from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.exp.runner import (
    STATUS_CACHED,
    STATUS_OK,
    RunRecord,
    SweepOutcome,
    build_platform,
    build_trace,
    build_workload,
)
from repro.fleet.soa import FleetArrays, storage_soa_params
from repro.fleet.spec import (
    DEVICE_OFFSET_KEY,
    device_config_hash,
    resolve_device_config,
)
from repro.obs import events as ev
from repro.obs.resources import sample_resources, usage_between
from repro.system.presets import standard_rectifier
from repro.system.simulator import SystemSimulator, assemble_result

#: Device lifecycle modes inside the kernel.
MODE_ACTIVE = "active"
MODE_PASSIVE = "passive"
MODE_FINAL = "final"

#: Config keys that determine a device's (pre-offset) trace and its
#: rectified power array; devices agreeing on all of them share one
#: concatenated power segment.
_TRACE_KEYS = (
    "source", "duration_s", "seed", "mean_uw", "profile_index",
    "profile_count", "rectifier",
)


class PowerSegments(NamedTuple):
    """The fleet's shared rectified-power structure.

    Attributes:
        P: concatenated rectified power, one segment per distinct
            trace group, float64.
        dt_s: the fleet-wide tick duration.
        bases: per-device start index into ``P`` (group start plus the
            device's trace offset).
        n_ticks: per-device tick count (trace length minus offset).
    """

    P: np.ndarray
    dt_s: float
    bases: np.ndarray
    n_ticks: np.ndarray


def build_power_segments(configs: List[Dict]) -> PowerSegments:
    """Build the concatenated power array + per-device index structure.

    Devices agreeing on the trace-determining keys (:data:`_TRACE_KEYS`)
    share one rectified segment; each device indexes it from its own
    offset, so per-tick values equal the single engine's pre-pass over
    the device's sub-trace (rectification is elementwise, so
    rectify-then-slice == slice-then-rectify).  This is both the
    kernel's power substrate and the input the outage-correlation
    analyzer reads — correlation needs no simulation, only this
    structure.
    """
    if not configs:
        raise ValueError("fleet needs at least one device")
    groups: Dict[Tuple, Tuple[int, object]] = {}
    parts: List[np.ndarray] = []
    next_start = 0
    dt: Optional[float] = None
    for config in configs:
        key = tuple(config[name] for name in _TRACE_KEYS)
        if key not in groups:
            trace = build_trace(config)
            if dt is None:
                dt = trace.dt_s
            elif trace.dt_s != dt:
                raise ValueError(
                    "fleet devices must share one tick duration"
                )
            if config["rectifier"]:
                p_dc = standard_rectifier().output_power_array(
                    trace.samples_w
                )
            else:
                p_dc = trace.samples_w
            groups[key] = (next_start, trace)
            parts.append(np.ascontiguousarray(p_dc, dtype=np.float64))
            next_start += len(trace)
    bases = np.empty(len(configs), dtype=np.int64)
    n_ticks = np.empty(len(configs), dtype=np.int64)
    for row, config in enumerate(configs):
        start, trace = groups[tuple(config[name] for name in _TRACE_KEYS)]
        offset = trace.offset_ticks(config[DEVICE_OFFSET_KEY])
        bases[row] = start + offset
        n_ticks[row] = len(trace) - offset
    return PowerSegments(
        P=parts[0] if len(parts) == 1 else np.concatenate(parts),
        dt_s=float(dt),
        bases=bases,
        n_ticks=n_ticks,
    )


class _FleetDevice:
    """Book-keeping for one device row."""

    __slots__ = (
        "index", "config", "platform", "storage", "off_plan_fn", "soa",
        "exact_batch_fn", "skip_until", "batch_armed",
        "row", "base", "n_ticks", "stop_when_finished",
        "state_time", "run_state", "run_ticks",
        "completion_time", "finished_seen", "ticks_run",
        "mode", "dormant_state", "plan", "result",
    )

    def __init__(self, index: int, config: Dict) -> None:
        self.index = index
        self.config = config
        self.state_time: Dict[str, float] = {}
        self.run_state: Optional[str] = None
        self.run_ticks = 0
        self.completion_time: Optional[float] = None
        self.finished_seen = False
        self.ticks_run = 0
        self.mode = MODE_ACTIVE
        self.dormant_state: Optional[str] = None
        self.plan = None
        self.result = None
        self.skip_until = 0
        self.batch_armed = True

    @property
    def label(self) -> str:
        return self.config.get("label") or self.platform.label


class FleetKernel:
    """Advance a fleet of resolved device configs in lockstep.

    Args:
        configs: fully-resolved device configs
            (:func:`repro.fleet.spec.resolve_device_config` output), one
            per device, in fleet order.
        bus: optional event bus for ``fleet.begin`` / ``fleet.device`` /
            ``fleet.end`` lifecycle events.  Devices themselves run
            without a bus — per-device observability comes from
            :func:`replay_device`, which is exact because fleet results
            are bit-identical to the single engine's.
        telemetry: optional :class:`repro.fleet.telemetry.FleetTelemetry`
            sampled at its own cadence inside the main loop.  ``None``
            (the default) costs one ``is not None`` check per lockstep
            tick and nothing else — the zero-overhead-when-disabled
            discipline — and telemetry only *reads* kernel state, so
            per-device results are bit-identical either way.
    """

    def __init__(self, configs: List[Dict], bus=None, telemetry=None) -> None:
        if not configs:
            raise ValueError("fleet needs at least one device")
        self.bus = bus
        self.telemetry = telemetry
        self.devices: List[_FleetDevice] = []
        self._active: List[_FleetDevice] = []
        self._pending_active: List[_FleetDevice] = []
        self._ends_by_tick: Dict[int, List[_FleetDevice]] = {}
        self.n_passive = 0
        self.ticks_advanced = 0
        self.ticks_batched = 0

        segments = build_power_segments(configs)
        self.segments = segments
        self.dt = segments.dt_s
        self.P = segments.P
        # Materialised lazily on the first exact-batch attempt: the
        # batched kernel indexes power per tick, and Python-float list
        # access beats numpy scalar extraction in its fused loop.
        self._p_list: Optional[List[float]] = None

        # -- device rows ----------------------------------------------
        self.arrays = FleetArrays(len(configs), self.dt)
        for row, config in enumerate(configs):
            dev = _FleetDevice(row, config)
            dev.row = row
            dev.base = int(segments.bases[row])
            dev.n_ticks = int(segments.n_ticks[row])
            dev.stop_when_finished = bool(config["stop_when_finished"])
            workload = build_workload(config)
            dev.platform = build_platform(config, workload)
            dev.storage = getattr(dev.platform, "storage", None)
            dev.off_plan_fn = getattr(dev.platform, "off_plan", None)
            dev.exact_batch_fn = getattr(dev.platform, "exact_batch", None)
            dev.soa = storage_soa_params(dev.storage)
            if dev.soa is not None:
                self.arrays.set_params(row, dev.soa, dev.base)
            else:
                self.arrays.base[row] = dev.base
            self.devices.append(dev)
            self._ends_by_tick.setdefault(dev.n_ticks, []).append(dev)
        self.n_live = len(self.devices)
        for dev in self.devices:
            self._route(dev)
        self._active.extend(self._pending_active)
        self._pending_active.clear()

    # -- state-time accounting ----------------------------------------

    def _account(self, dev: _FleetDevice, state: str, count: int) -> None:
        """Merge ``count`` ticks of ``state`` into the device's runs.

        Same accumulator the single engine keeps: consecutive
        same-state runs merge as integer tick counts; a transition
        flushes the previous run with one ``ticks * dt`` product.
        """
        if state == dev.run_state:
            dev.run_ticks += count
        else:
            if dev.run_ticks:
                dev.state_time[dev.run_state] = (
                    dev.state_time.get(dev.run_state, 0.0)
                    + dev.run_ticks * self.dt
                )
            dev.run_state = state
            dev.run_ticks = count

    # -- passive-row management ----------------------------------------

    def _route(self, dev: _FleetDevice) -> None:
        """Park the device on the vectorized path if it is dormant."""
        if dev.soa is not None:
            if dev.platform.finished:
                # Finished but still integrating the trace: a pure
                # "done" charge run with an unreachable target.
                dev.mode = MODE_PASSIVE
                dev.dormant_state = "done"
                dev.plan = None
                self.arrays.load_row(dev.row, dev.storage, math.inf)
                self.n_passive += 1
                return
            if dev.off_plan_fn is not None:
                plan = dev.off_plan_fn(self.dt)
                if plan is not None:
                    dev.mode = MODE_PASSIVE
                    dev.dormant_state = plan.state
                    dev.plan = plan
                    self.arrays.load_row(
                        dev.row, dev.storage, plan.target_j()
                    )
                    self.n_passive += 1
                    return
        dev.mode = MODE_ACTIVE
        self._pending_active.append(dev)

    def _flush_row(self, dev: _FleetDevice) -> None:
        """Account pending dormant ticks and sync the storage object."""
        pend = int(self.arrays.pending[dev.row])
        if pend:
            if dev.plan is not None and dev.plan.on_charged is not None:
                dev.plan.on_charged(pend)
            self._account(dev, dev.dormant_state, pend)
            self.arrays.pending[dev.row] = 0
        self.arrays.store_row(dev.row, dev.storage)

    def _handle_crossings(self, rows: np.ndarray) -> None:
        """Run wake attempts for rows that crossed their target."""
        arrays = self.arrays
        for row in rows:
            dev = self.devices[row]
            self._flush_row(dev)
            report = dev.plan.on_cross()
            if report.state == dev.dormant_state:
                # Wake failed; the crossing tick stays dormant.  The
                # attempt may have drawn stored energy (failed
                # restore), so re-sync the row from the storage.
                arrays.energy[dev.row] = dev.storage.energy_j
                arrays.target[dev.row] = dev.plan.target_j()
                continue
            # The crossing tick belongs to the wake, not the dormant
            # run — same re-attribution the shared fast-forward loop
            # performs.
            dev.run_ticks -= 1
            self._account(dev, report.state, 1)
            arrays.retire_row(dev.row)
            dev.mode = MODE_ACTIVE
            dev.batch_armed = True
            dev.plan = None
            dev.dormant_state = None
            self.n_passive -= 1
            # Joins the exact path from the *next* tick: the crossing
            # tick was consumed by the vectorized step.
            self._pending_active.append(dev)

    # -- exact path ----------------------------------------------------

    def _tick_active(self, i: int) -> None:
        dt = self.dt
        power = self.P
        still: List[_FleetDevice] = []
        for dev in self._active:
            if dev.mode is not MODE_ACTIVE:
                continue
            if i < dev.skip_until:
                # A previous exact-batch run already executed this
                # tick; the device rejoins the lockstep at skip_until.
                still.append(dev)
                continue
            if dev.batch_armed and dev.exact_batch_fn is not None:
                p_list = self._p_list
                if p_list is None:
                    p_list = self._p_list = power.tolist()
                runs = dev.exact_batch_fn(
                    p_list, dev.base + i, dev.base + dev.n_ticks, dt
                )
                if runs:
                    batched = 0
                    for state, n in runs:
                        self._account(dev, state, n)
                        batched += n
                    dev.skip_until = i + batched
                    self.ticks_batched += batched
                    if not dev.finished_seen and dev.platform.finished:
                        # An "isa"-mode batch consumes the finishing
                        # tick; record completion one-past it, exactly
                        # as the scalar branch does.  Passive routing
                        # waits for the rejoin tick at skip_until.
                        dev.finished_seen = True
                        dev.completion_time = (i + batched) * dt
                        if dev.stop_when_finished:
                            self._finalize(dev, i + batched)
                            continue
                    still.append(dev)
                    continue
                # Probe missed: the next tick is an event tick — run
                # it exactly, and re-arm on the next state transition
                # (same disarm-after-miss the single engine uses).
                dev.batch_armed = False
            prev_state = dev.run_state
            report = dev.platform.tick(float(power[dev.base + i]), dt)
            self._account(dev, report.state, 1)
            if report.state != prev_state:
                dev.batch_armed = True
            finished = dev.platform.finished
            if not dev.finished_seen and finished:
                dev.finished_seen = True
                dev.completion_time = (i + 1) * dt
                if dev.stop_when_finished:
                    self._finalize(dev, i + 1)
                    continue
            if finished:
                if dev.soa is not None:
                    self._route(dev)
                    continue
                if dev.storage is None:
                    # No storage to keep integrating (the oracle): the
                    # remaining ticks are pure "done" no-ops, account
                    # them in bulk and finish the device now.
                    remaining = dev.n_ticks - (i + 1)
                    if remaining:
                        self._account(dev, "done", remaining)
                    self._finalize(dev, dev.n_ticks)
                    continue
            elif dev.soa is not None and dev.off_plan_fn is not None:
                plan = dev.off_plan_fn(dt)
                if plan is not None:
                    dev.mode = MODE_PASSIVE
                    dev.dormant_state = plan.state
                    dev.plan = plan
                    self.arrays.load_row(dev.row, dev.storage, plan.target_j())
                    self.n_passive += 1
                    continue
            still.append(dev)
        self._active = still

    # -- completion ----------------------------------------------------

    def _finalize(self, dev: _FleetDevice, ticks_run: int) -> None:
        if dev.mode == MODE_PASSIVE:
            self._flush_row(dev)
            self.arrays.retire_row(dev.row)
            self.n_passive -= 1
        dt = self.dt
        if dev.run_ticks:
            dev.state_time[dev.run_state] = (
                dev.state_time.get(dev.run_state, 0.0)
                + dev.run_ticks * dt
            )
            dev.run_ticks = 0
        if ticks_run:
            # Same prefix sum the engine's vectorized pre-pass reads:
            # cumsum over the device's sub-trace, times dt.
            cum = np.cumsum(self.P[dev.base:dev.base + dev.n_ticks])
            harvested = float(cum[ticks_run - 1] * dt)
        else:
            harvested = 0.0
        dev.result = assemble_result(
            dev.platform, dev.state_time, ticks_run, dt,
            dev.completion_time, harvested,
        )
        dev.ticks_run = ticks_run
        dev.mode = MODE_FINAL
        self.n_live -= 1
        if self.bus is not None:
            self.bus.emit(
                ev.FLEET_DEVICE,
                index=dev.index,
                label=dev.label,
                ticks=ticks_run,
                completed=dev.platform.finished,
                forward_progress=dev.result.forward_progress,
            )

    # -- main loop -----------------------------------------------------

    def run(self) -> List:
        """Advance every device to completion; per-device results."""
        arrays = self.arrays
        power = self.P
        if self.bus is not None:
            self.bus.emit(
                ev.FLEET_BEGIN, devices=len(self.devices), dt_s=self.dt
            )
        telemetry = self.telemetry
        sample_at = telemetry.bind(self) if telemetry is not None else 0
        i = 0
        while self.n_live:
            enders = self._ends_by_tick.get(i)
            if enders:
                for dev in enders:
                    if dev.mode is not MODE_FINAL:
                        self._finalize(dev, dev.n_ticks)
                if not self.n_live:
                    break
            if self.n_passive:
                crossed = arrays.charge_tick(arrays.gather_power(power, i))
                if crossed is not None:
                    self._handle_crossings(crossed)
            if self._active:
                self._tick_active(i)
            if self._pending_active:
                self._active.extend(self._pending_active)
                self._pending_active.clear()
            # With telemetry disabled this is the loop's only extra
            # work: a single None check (the zero-overhead contract).
            if telemetry is not None and i >= sample_at:
                sample_at = telemetry.sample(i)
            i += 1
        self.ticks_advanced = i
        if telemetry is not None:
            telemetry.finish(i)
        if self.bus is not None:
            self.bus.emit(
                ev.FLEET_END, devices=len(self.devices), ticks=i
            )
        return [dev.result for dev in self.devices]


def replay_device(config: Dict, **sim_kwargs):
    """Re-run one fleet device through the single-device engine.

    Returns ``(result, simulator)``.  Because fleet results are
    bit-identical to the single engine, this is the fleet's
    drill-down path: full observability (event bus, metrics, exact
    ticking) for any one device without re-running the fleet.
    """
    resolved = resolve_device_config(config)
    trace = build_trace(resolved)
    offset = resolved[DEVICE_OFFSET_KEY]
    if offset:
        trace = trace.tail(offset)
    workload = build_workload(resolved)
    platform = build_platform(resolved, workload)
    simulator = SystemSimulator(
        trace,
        platform,
        rectifier=standard_rectifier() if resolved["rectifier"] else None,
        stop_when_finished=resolved["stop_when_finished"],
        **sim_kwargs,
    )
    return simulator.run(), simulator


def run_fleet(
    configs: List[Dict], cache=None, bus=None, telemetry=None
) -> SweepOutcome:
    """Run a fleet with cache preflight; returns sweep-shaped records.

    Every device is content-hashed (:func:`device_config_hash`) and
    checked against the result cache exactly like a sweep point — a
    cached device is skipped, everything else goes through one
    :class:`FleetKernel` pass and is written back to the cache, so
    fleet runs are resumable and interoperable with ``repro sweep``
    results (an offset-0 device shares the sweep's cache entry).

    ``telemetry`` (a :class:`repro.fleet.telemetry.FleetTelemetry`) is
    handed to the kernel and samples only the *executed* devices —
    cache hits never re-simulate, so they never re-appear in the
    population time series.

    Wall/CPU attribution: the kernel advances all pending devices
    together, so per-record costs are the even share of the batch.
    """
    records: List[RunRecord] = []
    pending: List[RunRecord] = []
    for index, config in enumerate(configs):
        record = RunRecord(
            index=index, config=config, key=device_config_hash(config)
        )
        entry = cache.get(record.key) if cache is not None else None
        if entry is not None and "result" in entry:
            record.status = STATUS_CACHED
            record.result = entry["result"]
            record.wall_s = float(entry.get("wall_s") or 0.0)
        records.append(record)
        if record.status != STATUS_CACHED:
            pending.append(record)
    started = time.perf_counter()
    if pending:
        usage_before = sample_resources()
        kernel = FleetKernel(
            [record.config for record in pending], bus=bus,
            telemetry=telemetry,
        )
        results = kernel.run()
        usage = usage_between(usage_before, sample_resources())
        wall_share = (time.perf_counter() - started) / len(pending)
        cpu_share = usage["cpu_s"] / len(pending)
        pid = os.getpid()
        for record, result in zip(pending, results):
            record.status = STATUS_OK
            record.result = result.to_dict()
            record.wall_s = wall_share
            record.cpu_s = cpu_share
            record.peak_rss_kb = usage["peak_rss_kb"]
            record.pid = pid
            if cache is not None:
                cache.put(record.key, {
                    "config": record.config,
                    "result": record.result,
                    "wall_s": record.wall_s,
                })
    return SweepOutcome(
        records=records,
        executed=len(pending),
        cached=len(records) - len(pending),
        failed=0,
        interrupted=0,
        wall_s=time.perf_counter() - started,
    )
