"""Calibrated component presets and platform builders.

These encode the representative parts the evaluation assumes:

* **NVP capacitor** — a small ceramic capacitor (hundreds of nF),
  sized only to guarantee the backup operation and stabilise the rail:
  negligible leakage, good conversion efficiency across its range.
* **Supercap** — the large storage element a wait-and-compute design
  needs (tens of µF and up).  Modelled on GZ-class thin supercaps:
  ~1 MΩ effective leakage, a ~20 µA minimum charging current, and a
  conversion-efficiency curve that collapses away from the optimal
  voltage.
* **Checkpoint capacitor** — the mid-size reservoir Hibernus-class
  systems use (a few µF).

Builders assemble (workload, storage, platform) triples so examples
and benchmarks stay short.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.checkpoint import CheckpointConfig, CheckpointPlatform
from repro.baselines.oracle import OraclePlatform
from repro.baselines.waitcompute import WaitComputePlatform
from repro.core.config import NVPConfig
from repro.core.nvp import NVPPlatform
from repro.harvest.rectifier import Rectifier
from repro.storage.capacitor import Capacitor, ChargeEfficiency
from repro.workloads.base import Workload

#: Default sizes (farads).
NVP_CAPACITANCE_F = 150e-9
SUPERCAP_CAPACITANCE_F = 47e-6
CHECKPOINT_CAPACITANCE_F = 4.7e-6


def nvp_capacitor(capacitance_f: float = NVP_CAPACITANCE_F) -> Capacitor:
    """Small ceramic backup capacitor for an NVP."""
    return Capacitor(
        capacitance_f,
        v_max_v=3.3,
        leak_resistance_ohm=20e6,
        efficiency=ChargeEfficiency(
            eta_peak=0.90, eta_floor=0.75, v_opt_v=2.0, v_span_v=3.0
        ),
    )


def supercap(capacitance_f: float = SUPERCAP_CAPACITANCE_F) -> Capacitor:
    """GZ-class supercapacitor for wait-and-compute storage."""
    return Capacitor(
        capacitance_f,
        v_max_v=3.3,
        leak_resistance_ohm=1e6,
        efficiency=ChargeEfficiency(
            eta_peak=0.85, eta_floor=0.30, v_opt_v=2.2, v_span_v=2.5
        ),
        min_charge_current_a=20e-6,
    )


def checkpoint_capacitor(capacitance_f: float = CHECKPOINT_CAPACITANCE_F) -> Capacitor:
    """Mid-size reservoir for software-checkpointing MCUs."""
    return Capacitor(
        capacitance_f,
        v_max_v=3.3,
        leak_resistance_ohm=5e6,
        efficiency=ChargeEfficiency(
            eta_peak=0.88, eta_floor=0.50, v_opt_v=2.1, v_span_v=2.8
        ),
    )


def standard_rectifier() -> Rectifier:
    """The default AC-DC front end for the wristwatch harvester."""
    return Rectifier(eta_max=0.85, knee_power_w=8e-6, cutin_power_w=1e-6)


# -- platform builders ----------------------------------------------------


def build_nvp(
    workload: Workload,
    config: Optional[NVPConfig] = None,
    capacitance_f: float = NVP_CAPACITANCE_F,
    seed: int = 0,
) -> NVPPlatform:
    """An NVP on its standard small capacitor."""
    return NVPPlatform(workload, nvp_capacitor(capacitance_f), config, seed=seed)


def build_wait_compute(
    workload: Workload,
    capacitance_f: float = SUPERCAP_CAPACITANCE_F,
    energy_margin: float = 1.3,
) -> WaitComputePlatform:
    """A wait-and-compute MCU on its supercap."""
    return WaitComputePlatform(
        workload, supercap(capacitance_f), energy_margin=energy_margin
    )


def build_checkpoint(
    workload: Workload,
    config: Optional[CheckpointConfig] = None,
    capacitance_f: float = CHECKPOINT_CAPACITANCE_F,
) -> CheckpointPlatform:
    """A software-checkpointing MCU on its mid-size capacitor."""
    return CheckpointPlatform(workload, checkpoint_capacitor(capacitance_f), config)


def build_oracle(workload: Workload) -> OraclePlatform:
    """The continuously powered upper-bound platform."""
    return OraclePlatform(workload)
