"""Per-tick telemetry recording for simulations.

A :class:`Telemetry` object captures the time series behind the
summary numbers — platform state, stored energy, instructions per
tick — optionally decimated.  This is what you plot to reproduce the
"timing-based behaviour" strips NVP papers show.

Telemetry is an ordinary subscriber of the observability event bus:
:class:`~repro.system.simulator.SystemSimulator` publishes one
``sim.tick`` event per tick and the recorder listens
(:meth:`Telemetry.subscribe_to`).  Passing ``telemetry=`` to the
simulator still works and wires the subscription up internally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

#: Compact state encoding for the recorded series.  ``charge`` (a
#: volatile baseline trickle-charging its reservoir) is distinct from
#: ``off`` (dead) so duty-cycle strips can tell the two apart.
STATE_CODES: Dict[str, int] = {
    "off": 0,
    "restore": 1,
    "run": 2,
    "backup": 3,
    "done": 4,
    "charge": 5,
}


@dataclass
class Telemetry:
    """Records one sample every ``decimation`` ticks.

    Attributes:
        decimation: keep every N-th tick (1 = everything).
    """

    decimation: int = 1
    times_s: List[float] = field(default_factory=list)
    states: List[int] = field(default_factory=list)
    energies_j: List[float] = field(default_factory=list)
    instructions: List[int] = field(default_factory=list)
    _tick: int = 0

    def __post_init__(self) -> None:
        if self.decimation < 1:
            raise ValueError("decimation must be >= 1")

    def record(self, time_s: float, report, platform) -> None:
        """Capture one tick directly (legacy entry point)."""
        storage = getattr(platform, "storage", None)
        self._sample(
            time_s,
            report.state,
            float(storage.energy_j) if storage is not None else 0.0,
            report.instructions,
        )

    def subscribe_to(self, bus) -> "Telemetry":
        """Listen for ``sim.tick`` events on a bus; returns self."""
        from repro.obs import events as ev

        bus.subscribe(self.on_event, names=(ev.TICK,))
        return self

    def on_event(self, event) -> None:
        """Bus subscriber: capture one ``sim.tick`` event."""
        data = event.data
        self._sample(
            event.t_s,
            data.get("state", "?"),
            data.get("energy_j", 0.0),
            data.get("instructions", 0),
        )

    def _sample(
        self, time_s: float, state: str, energy_j: float, instructions: int
    ) -> None:
        self._tick += 1
        if (self._tick - 1) % self.decimation != 0:
            return
        self.times_s.append(time_s)
        self.states.append(STATE_CODES.get(state, -1))
        self.energies_j.append(energy_j)
        self.instructions.append(instructions)

    # -- analysis helpers ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.times_s)

    def state_series(self) -> np.ndarray:
        """Recorded state codes as an array."""
        return np.asarray(self.states, dtype=int)

    def energy_series(self) -> np.ndarray:
        """Recorded stored energy as an array (joules)."""
        return np.asarray(self.energies_j, dtype=float)

    def duty_cycle(self) -> float:
        """Fraction of recorded ticks spent executing."""
        if not self.states:
            return 0.0
        states = self.state_series()
        return float(np.mean(states == STATE_CODES["run"]))

    def transitions(self) -> int:
        """Number of state changes in the recorded series."""
        states = self.state_series()
        if len(states) < 2:
            return 0
        return int(np.sum(states[1:] != states[:-1]))

    def window(self, start: int, count: int) -> "Telemetry":
        """A sliced copy covering ``count`` samples from ``start``.

        Useful for zooming a strip into one region of interest.

        Raises:
            ValueError: for an empty or out-of-range window.
        """
        if count < 1:
            raise ValueError("window must contain at least one sample")
        if not 0 <= start < len(self.times_s):
            raise ValueError("window start outside the recording")
        stop = min(len(self.times_s), start + count)
        sliced = Telemetry(decimation=self.decimation)
        sliced.times_s = self.times_s[start:stop]
        sliced.states = self.states[start:stop]
        sliced.energies_j = self.energies_j[start:stop]
        sliced.instructions = self.instructions[start:stop]
        return sliced

    def first_index(self, state: str) -> int:
        """Index of the first sample in a named state (-1 if absent)."""
        code = STATE_CODES.get(state, -2)
        for index, value in enumerate(self.states):
            if value == code:
                return index
        return -1

    def render_strip(self, width: int = 72) -> str:
        """ASCII timing strip of the recorded behaviour.

        Renders the state sequence (``.`` off, ``~`` charging, ``R``
        restore, ``#`` run, ``B`` backup, ``=`` done) and a
        stored-energy sparkline, both resampled to ``width`` columns —
        the textual equivalent of the timing-behaviour strips NVP
        papers plot.
        """
        if width < 2:
            raise ValueError("width must be at least 2")
        if not self.states:
            return "(no telemetry recorded)"
        glyphs = {0: ".", 1: "R", 2: "#", 3: "B", 4: "=", 5: "~", -1: "?"}
        states = self.state_series()
        energy = self.energy_series()
        columns = np.array_split(np.arange(len(states)), min(width, len(states)))
        state_line = []
        energy_line = []
        e_max = float(energy.max()) if energy.max() > 0 else 1.0
        bars = " _.-=^*#"
        for chunk in columns:
            segment = states[chunk]
            # Majority vote, but in fine-grained strips (small windows)
            # elevate single-tick backup/restore events that a majority
            # would erase.  Coarse strips stay majority-only so dense
            # backup activity doesn't paint the whole line.
            fine = len(segment) <= 100
            if fine and (segment == 3).any():
                code = 3
            elif fine and (segment == 1).any():
                code = 1
            else:
                code = int(np.bincount(segment + 1).argmax()) - 1
            state_line.append(glyphs.get(code, "?"))
            level = float(energy[chunk].mean()) / e_max
            if level <= 0.02:
                bar_index = 0
            else:
                bar_index = max(1, min(len(bars) - 1, int(level * (len(bars) - 1))))
            energy_line.append(bars[bar_index])
        duration = self.times_s[-1] - self.times_s[0] if len(self.times_s) > 1 else 0.0
        return (
            f"state : {''.join(state_line)}\n"
            f"energy: {''.join(energy_line)}\n"
            f"        0s{' ' * (len(state_line) - 6)}{duration:.3g}s\n"
            "        (. off, ~ charge, R restore, # run, B backup, = done)"
        )
