"""Energy-threshold planning.

An NVP's power-management policy is a pair of energy thresholds on the
storage element:

* **backup threshold** — when stored energy falls to this level the
  controller triggers a backup; it must cover the worst-case backup
  energy times a safety margin (future power income is unpredictable
  and a failed backup loses all volatile work).
* **start threshold** — stored energy required before waking up; it
  must cover the restore cost, the backup reserve, and enough run
  energy to make the wake-up worthwhile (hysteresis against
  restore/backup thrashing).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ThresholdPlan:
    """Planned energy thresholds.

    Attributes:
        backup_threshold_j: trigger level for backup.
        start_threshold_j: wake-up level.
        backup_cost_j: the worst-case backup energy the plan reserves.
        restore_cost_j: the restore energy the plan reserves.
    """

    backup_threshold_j: float
    start_threshold_j: float
    backup_cost_j: float
    restore_cost_j: float

    def __post_init__(self) -> None:
        if self.backup_threshold_j < 0 or self.start_threshold_j < 0:
            raise ValueError("thresholds cannot be negative")
        if self.start_threshold_j < self.backup_threshold_j:
            raise ValueError("start threshold must be >= backup threshold")


def plan_thresholds(
    backup_cost_j: float,
    restore_cost_j: float,
    run_power_w: float,
    tick_s: float,
    backup_margin: float = 1.5,
    run_reserve_ticks: float = 2.0,
) -> ThresholdPlan:
    """Compute the standard threshold plan.

    Args:
        backup_cost_j: worst-case backup energy.
        restore_cost_j: restore energy.
        run_power_w: average execution power.
        tick_s: simulator tick.
        backup_margin: safety multiplier on the backup reserve.
        run_reserve_ticks: run-energy hysteresis, in ticks.

    Returns:
        A :class:`ThresholdPlan`.
    """
    if backup_cost_j < 0 or restore_cost_j < 0:
        raise ValueError("costs cannot be negative")
    if run_power_w < 0:
        raise ValueError("run power cannot be negative")
    if tick_s <= 0:
        raise ValueError("tick must be positive")
    if backup_margin < 1.0:
        raise ValueError("backup margin must be >= 1.0")
    if run_reserve_ticks < 0:
        raise ValueError("run reserve cannot be negative")
    run_tick_energy = run_power_w * tick_s
    backup_threshold = backup_margin * (backup_cost_j + run_tick_energy)
    start_threshold = (
        backup_threshold + restore_cost_j + run_reserve_ticks * run_tick_energy
    )
    return ThresholdPlan(
        backup_threshold_j=backup_threshold,
        start_threshold_j=start_threshold,
        backup_cost_j=backup_cost_j,
        restore_cost_j=restore_cost_j,
    )
