"""System-level co-simulation.

Couples a harvested-power trace, the rectifier, the storage element
and a platform model (NVP or baseline) at a 0.1 ms tick — a direct
re-implementation of the published MATLAB/Python system-level
simulation methodology that drove the RTL/functional simulator.
"""

from repro.system.simulator import Platform, SystemSimulator, TickReport
from repro.system.result import SimulationResult
from repro.system.scheduler import (
    PeriodicTask,
    ScheduleReport,
    schedule_replay,
)
from repro.system.telemetry import Telemetry
from repro.system.thresholds import ThresholdPlan, plan_thresholds

__all__ = [
    "PeriodicTask",
    "Platform",
    "ScheduleReport",
    "SimulationResult",
    "SystemSimulator",
    "Telemetry",
    "ThresholdPlan",
    "TickReport",
    "plan_thresholds",
    "schedule_replay",
]
