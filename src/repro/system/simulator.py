"""The tick-level system simulator.

The simulator owns the time axis: it walks the power trace one 0.1 ms
tick at a time, converts harvested power through the (optional)
rectifier, hands each tick to the platform's state machine, and
aggregates the telemetry into a :class:`SimulationResult`.

Platforms (the NVP and every baseline) implement one method —
``tick(p_in_w, dt_s) -> TickReport`` — plus a small set of reporting
properties; all paradigm-specific behaviour (thresholds, backup,
checkpointing, wait-and-compute) lives inside the platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol, runtime_checkable

from repro.harvest.rectifier import Rectifier
from repro.harvest.traces import PowerTrace
from repro.system.result import SimulationResult


@dataclass(frozen=True)
class TickReport:
    """What a platform did during one tick.

    Attributes:
        state: platform state during the tick (``"off"``, ``"run"``,
            ``"backup"``, ``"restore"``, ``"charge"``, ``"done"``).
        instructions: instructions executed this tick.
    """

    state: str
    instructions: int = 0


@runtime_checkable
class Platform(Protocol):
    """The interface every simulated platform implements."""

    label: str

    def tick(self, p_in_w: float, dt_s: float) -> TickReport: ...

    @property
    def finished(self) -> bool: ...

    def stats(self) -> Dict[str, float]:
        """Counter snapshot merged into the result (see platform docs)."""
        ...


class SystemSimulator:
    """Walks a power trace through a platform.

    Args:
        trace: the harvested-power trace (pre-rectifier).
        platform: the platform under test.
        rectifier: optional AC-DC front end; ``None`` applies the trace
            directly (use when the trace is already a DC profile).
        stop_when_finished: end the simulation as soon as the workload
            completes.
        telemetry: optional :class:`~repro.system.telemetry.Telemetry`
            recorder capturing the per-tick time series.
    """

    def __init__(
        self,
        trace: PowerTrace,
        platform: Platform,
        rectifier: Optional[Rectifier] = None,
        stop_when_finished: bool = True,
        telemetry=None,
    ) -> None:
        self.trace = trace
        self.platform = platform
        self.rectifier = rectifier
        self.stop_when_finished = stop_when_finished
        self.telemetry = telemetry

    def run(self) -> SimulationResult:
        """Execute the full trace (or until completion) and aggregate."""
        dt = self.trace.dt_s
        state_time: Dict[str, float] = {}
        harvested = 0.0
        ticks_run = 0
        completion_time: Optional[float] = None

        for index, p_raw in enumerate(self.trace.samples_w):
            p_in = (
                self.rectifier.output_power(float(p_raw))
                if self.rectifier is not None
                else float(p_raw)
            )
            harvested += p_in * dt
            report = self.platform.tick(p_in, dt)
            state_time[report.state] = state_time.get(report.state, 0.0) + dt
            ticks_run = index + 1
            if self.telemetry is not None:
                self.telemetry.record(index * dt, report, self.platform)
            if self.platform.finished and completion_time is None:
                completion_time = ticks_run * dt
                if self.stop_when_finished:
                    break

        stats = self.platform.stats()
        result = SimulationResult(
            label=self.platform.label,
            duration_s=ticks_run * dt,
            completed=self.platform.finished,
            completion_time_s=completion_time,
            state_time_s=state_time,
            harvested_j=harvested,
        )
        for key in (
            "forward_progress",
            "total_executed",
            "lost_instructions",
            "units_completed",
            "backups",
            "restores",
            "failed_backups",
            "failed_restores",
            "rollbacks",
        ):
            if key in stats:
                setattr(result, key, int(stats.pop(key)))
        for key in ("consumed_j", "backup_energy_j", "restore_energy_j"):
            if key in stats:
                setattr(result, key, float(stats.pop(key)))
        result.extras = {k: float(v) for k, v in stats.items()}
        return result
