"""The tick-level system simulator.

The simulator owns the time axis: it walks the power trace one 0.1 ms
tick at a time, converts harvested power through the (optional)
rectifier, hands each tick to the platform's state machine, and
aggregates the telemetry into a :class:`SimulationResult`.

Platforms (the NVP and every baseline) implement one method —
``tick(p_in_w, dt_s) -> TickReport`` — plus a small set of reporting
properties; all paradigm-specific behaviour (thresholds, backup,
checkpointing, wait-and-compute) lives inside the platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol, runtime_checkable

from repro.harvest.outage import DEFAULT_THRESHOLD_W, OutageTracker
from repro.harvest.rectifier import Rectifier
from repro.harvest.traces import PowerTrace
from repro.obs import events as ev
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.system.result import SimulationResult


@dataclass(frozen=True)
class TickReport:
    """What a platform did during one tick.

    Attributes:
        state: platform state during the tick (``"off"``, ``"run"``,
            ``"backup"``, ``"restore"``, ``"charge"``, ``"done"``).
        instructions: instructions executed this tick.
    """

    state: str
    instructions: int = 0


@runtime_checkable
class Platform(Protocol):
    """The interface every simulated platform implements."""

    label: str

    def tick(self, p_in_w: float, dt_s: float) -> TickReport: ...

    @property
    def finished(self) -> bool: ...

    def stats(self) -> Dict[str, float]:
        """Counter snapshot merged into the result (see platform docs)."""
        ...


class SystemSimulator:
    """Walks a power trace through a platform.

    Args:
        trace: the harvested-power trace (pre-rectifier).
        platform: the platform under test.
        rectifier: optional AC-DC front end; ``None`` applies the trace
            directly (use when the trace is already a DC profile).
        stop_when_finished: end the simulation as soon as the workload
            completes.
        telemetry: optional :class:`~repro.system.telemetry.Telemetry`
            recorder capturing the per-tick time series (subscribed to
            the event bus; one is created when none was given).
        bus: optional :class:`~repro.obs.events.EventBus`.  The
            simulator stamps the bus clock each tick and publishes
            lifecycle, state-transition, outage, and per-tick events;
            the platform (if it exposes a ``bus`` attribute) publishes
            its own backup/restore/policy events on the same bus.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            run aggregates (state seconds, energy, platform counters)
            are published into it after the run, labeled by platform.
        outage_threshold_w: operating threshold for live outage events
            (only used when a bus is attached).
    """

    def __init__(
        self,
        trace: PowerTrace,
        platform: Platform,
        rectifier: Optional[Rectifier] = None,
        stop_when_finished: bool = True,
        telemetry=None,
        bus: Optional[EventBus] = None,
        metrics: Optional[MetricsRegistry] = None,
        outage_threshold_w: float = DEFAULT_THRESHOLD_W,
    ) -> None:
        self.trace = trace
        self.platform = platform
        self.rectifier = rectifier
        self.stop_when_finished = stop_when_finished
        if telemetry is not None and bus is None:
            bus = EventBus()
        self.bus = bus
        self.metrics = metrics
        self.outage_threshold_w = outage_threshold_w
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.subscribe_to(bus)
        if bus is not None and getattr(platform, "bus", None) is None:
            # Platforms that know the bus protocol pick it up here, so
            # presets and call sites need no extra plumbing.
            try:
                platform.bus = bus  # type: ignore[attr-defined]
            except AttributeError:  # pragma: no cover - frozen platforms
                pass

    def run(self) -> SimulationResult:
        """Execute the full trace (or until completion) and aggregate."""
        dt = self.trace.dt_s
        state_time: Dict[str, float] = {}
        harvested = 0.0
        ticks_run = 0
        completion_time: Optional[float] = None

        bus = self.bus
        platform = self.platform
        outages: Optional[OutageTracker] = None
        storage = getattr(platform, "storage", None)
        last_state: Optional[str] = None
        if bus is not None:
            outages = OutageTracker(self.outage_threshold_w, bus)
            bus.emit(
                ev.SIM_BEGIN,
                0.0,
                label=platform.label,
                ticks=len(self.trace.samples_w),
                dt_s=dt,
            )
        want_ticks = bus is not None and bus.wants(ev.TICK)

        for index, p_raw in enumerate(self.trace.samples_w):
            p_in = (
                self.rectifier.output_power(float(p_raw))
                if self.rectifier is not None
                else float(p_raw)
            )
            harvested += p_in * dt
            if bus is not None:
                t_now = index * dt
                bus.now_s = t_now
                outages.update(p_in, t_now)
            report = platform.tick(p_in, dt)
            state_time[report.state] = state_time.get(report.state, 0.0) + dt
            ticks_run = index + 1
            if bus is not None:
                if report.state != last_state:
                    bus.emit(
                        ev.STATE_TRANSITION, state=report.state, prev=last_state
                    )
                    last_state = report.state
                if want_ticks:
                    bus.emit(
                        ev.TICK,
                        state=report.state,
                        instructions=report.instructions,
                        energy_j=(
                            float(storage.energy_j)
                            if storage is not None
                            else 0.0
                        ),
                    )
            if platform.finished and completion_time is None:
                completion_time = ticks_run * dt
                if self.stop_when_finished:
                    break

        if bus is not None:
            end_t = ticks_run * dt
            bus.now_s = end_t
            outages.finish(end_t)
            bus.emit(
                ev.SIM_END,
                end_t,
                completed=platform.finished,
                ticks=ticks_run,
            )

        stats = self.platform.stats()
        result = SimulationResult(
            label=self.platform.label,
            duration_s=ticks_run * dt,
            completed=self.platform.finished,
            completion_time_s=completion_time,
            state_time_s=state_time,
            harvested_j=harvested,
        )
        for key in (
            "forward_progress",
            "total_executed",
            "lost_instructions",
            "units_completed",
            "backups",
            "restores",
            "failed_backups",
            "failed_restores",
            "rollbacks",
        ):
            if key in stats:
                setattr(result, key, int(stats.pop(key)))
        for key in ("consumed_j", "backup_energy_j", "restore_energy_j"):
            if key in stats:
                setattr(result, key, float(stats.pop(key)))
        result.extras = {k: float(v) for k, v in stats.items()}
        if self.metrics is not None:
            self._publish_metrics(result)
        return result

    def _publish_metrics(self, result: SimulationResult) -> None:
        """Push run aggregates into the attached metrics registry."""
        registry = self.metrics
        label = result.label
        state_time = registry.counter(
            "sim_state_seconds", "seconds per platform state",
            labels=("platform", "state"),
        )
        for state, seconds in result.state_time_s.items():
            state_time.labels(platform=label, state=state).inc(seconds)
        energy = registry.counter(
            "sim_energy_joules", "energy by flow",
            labels=("platform", "flow"),
        )
        for flow, joules in (
            ("harvested", result.harvested_j),
            ("consumed", result.consumed_j),
            ("backup", result.backup_energy_j),
            ("restore", result.restore_energy_j),
        ):
            energy.labels(platform=label, flow=flow).inc(joules)
        ops = registry.counter(
            "sim_operations", "platform operation counts",
            labels=("platform", "op"),
        )
        for op in (
            "backups", "restores", "failed_backups", "failed_restores",
            "rollbacks",
        ):
            ops.labels(platform=label, op=op).inc(getattr(result, op))
        progress = registry.counter(
            "sim_instructions", "instruction accounting",
            labels=("platform", "kind"),
        )
        for kind, value in (
            ("forward_progress", result.forward_progress),
            ("total_executed", result.total_executed),
            ("lost", result.lost_instructions),
        ):
            progress.labels(platform=label, kind=kind).inc(value)
        storage = getattr(self.platform, "storage", None)
        if storage is not None and hasattr(storage, "bind_gauges"):
            storage.bind_gauges(registry, platform=label)
