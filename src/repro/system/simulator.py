"""The tick-level system simulator.

The simulator owns the time axis: it walks the power trace one 0.1 ms
tick at a time, converts harvested power through the (optional)
rectifier, hands each tick to the platform's state machine, and
aggregates the telemetry into a :class:`SimulationResult`.

Platforms (the NVP and every baseline) implement one method —
``tick(p_in_w, dt_s) -> TickReport`` — plus a small set of reporting
properties; all paradigm-specific behaviour (thresholds, backup,
checkpointing, wait-and-compute) lives inside the platform.

Two engine optimisations keep long traces cheap (see
``docs/performance.md``):

* a **vectorized pre-pass** rectifies the whole trace and integrates
  harvested energy once with numpy, instead of per-tick Python float
  math;
* a **steady-state fast-forward**: platforms that implement the
  optional ``fast_forward(p_in_w, start, stop, dt_s)`` capability
  advance through runs of analytically predictable ticks ("off"
  charging toward the start threshold, "charge", "done") in bulk.  The
  simulator uses it unless a subscriber explicitly asked for the
  per-tick ``sim.tick`` event — every other event (outages,
  transitions, backup/restore lifecycle, coarse samples) is
  synthesized from the run lengths by
  :class:`~repro.obs.synth.FastPathEventSynthesizer`, bitwise
  identical to the exact engine's stream.  Both paths produce
  bit-identical :class:`SimulationResult`\\ s;
* a **batched exact kernel**: platforms that implement the optional
  ``exact_batch(p_in_w, start, stop, dt_s)`` capability
  (:mod:`repro.system.exactkernel`) advance through runs of
  predictable *active* ``"run"`` ticks in bulk, bit-for-bit identical
  to per-tick execution, stopping before every event tick (threshold
  crossings, deficits, unit boundaries, completions) so events and
  transitions always run the scalar state machine.  Selection is
  subscription-sensitive exactly like fast-forward, with its own
  ``use_exact_batch`` knob and ``sim_ticks{path="exact_batch"}``
  accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol, runtime_checkable

import numpy as np

from repro.harvest.outage import DEFAULT_THRESHOLD_W, OutageTracker
from repro.harvest.rectifier import Rectifier
from repro.harvest.traces import PowerTrace
from repro.obs import events as ev
from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.synth import FastPathEventSynthesizer
from repro.system.result import SimulationResult


@dataclass(frozen=True)
class TickReport:
    """What a platform did during one tick.

    Attributes:
        state: platform state during the tick (``"off"``, ``"run"``,
            ``"backup"``, ``"restore"``, ``"charge"``, ``"done"``).
        instructions: instructions executed this tick.
    """

    state: str
    instructions: int = 0


@runtime_checkable
class Platform(Protocol):
    """The interface every simulated platform implements.

    Platforms may additionally implement the optional fast-path
    capability ``fast_forward(p_in_w, start, stop, dt_s)`` returning a
    list of ``(state, ticks)`` runs (or ``None``); see
    :meth:`repro.core.nvp.NVPPlatform.fast_forward` for the contract.
    The analogous active-path capability
    ``exact_batch(p_in_w, start, stop, dt_s)`` bulk-executes
    predictable powered-on ticks bit-exactly; see
    :meth:`repro.core.nvp.NVPPlatform.exact_batch` and
    :mod:`repro.system.exactkernel`.
    """

    label: str

    def tick(self, p_in_w: float, dt_s: float) -> TickReport: ...

    @property
    def finished(self) -> bool: ...

    def stats(self) -> Dict[str, float]:
        """Counter snapshot merged into the result (see platform docs)."""
        ...


#: Platform counters stored as integer result fields.
_INT_STAT_KEYS = (
    "forward_progress",
    "total_executed",
    "lost_instructions",
    "units_completed",
    "backups",
    "restores",
    "failed_backups",
    "failed_restores",
    "rollbacks",
)

#: Platform counters stored as float result fields.
_FLOAT_STAT_KEYS = ("consumed_j", "backup_energy_j", "restore_energy_j")


def assemble_result(
    platform: Platform,
    state_time: Dict[str, float],
    ticks_run: int,
    dt_s: float,
    completion_time_s: Optional[float],
    harvested_j: float,
) -> SimulationResult:
    """Fold a finished platform's counters into a result.

    Shared by :meth:`SystemSimulator.run` and the fleet kernel
    (:mod:`repro.fleet.kernel`) so every engine materialises
    :class:`SimulationResult` fields identically: known counters land
    as typed fields, everything else the platform reports goes to
    ``extras``.
    """
    stats = platform.stats()
    result = SimulationResult(
        label=platform.label,
        duration_s=ticks_run * dt_s,
        completed=platform.finished,
        completion_time_s=completion_time_s,
        state_time_s=state_time,
        harvested_j=harvested_j,
    )
    for key in _INT_STAT_KEYS:
        if key in stats:
            setattr(result, key, int(stats.pop(key)))
    for key in _FLOAT_STAT_KEYS:
        if key in stats:
            setattr(result, key, float(stats.pop(key)))
    result.extras = {k: float(v) for k, v in stats.items()}
    return result


class SystemSimulator:
    """Walks a power trace through a platform.

    Args:
        trace: the harvested-power trace (pre-rectifier).
        platform: the platform under test.
        rectifier: optional AC-DC front end; ``None`` applies the trace
            directly (use when the trace is already a DC profile).
        stop_when_finished: end the simulation as soon as the workload
            completes.
        telemetry: optional :class:`~repro.system.telemetry.Telemetry`
            recorder capturing the per-tick time series (subscribed to
            the event bus; one is created when none was given).
        bus: optional :class:`~repro.obs.events.EventBus`.  The
            simulator stamps the bus clock each tick and publishes
            lifecycle, state-transition, outage, and per-tick events;
            the platform (if it exposes a ``bus`` attribute) publishes
            its own backup/restore/policy events on the same bus.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            run aggregates (state seconds, energy, platform counters)
            are published into it after the run, labeled by platform.
        outage_threshold_w: operating threshold for live outage events
            (only used when a bus is attached).
        sample_stride: emit a coarse ``sim.sample`` event every this
            many ticks (0, the default, disables sampling).  Unlike
            ``sim.tick`` the coarse sample is synthesized on the fast
            path, so it is the observable heartbeat to use in sweeps.
        use_fast_forward: fast-path policy.  ``None`` (default) uses
            the platform's ``fast_forward`` capability unless a
            subscriber asked for the per-tick ``sim.tick`` event —
            every other subscription is served bit-identically from
            run-length synthesis; ``False`` forces exact per-tick
            execution (benchmark/debug knob); ``True`` behaves like
            ``None`` (a ``sim.tick`` subscriber still forces the
            exact path, since per-tick samples cannot be
            synthesized).
        use_exact_batch: batched active-path policy, same tri-state
            semantics as ``use_fast_forward`` applied to the
            platform's ``exact_batch`` capability
            (:mod:`repro.system.exactkernel`).  The two knobs are
            independent: either engine optimisation can be disabled
            while the other stays on, and results are bit-identical
            in every combination.
    """

    def __init__(
        self,
        trace: PowerTrace,
        platform: Platform,
        rectifier: Optional[Rectifier] = None,
        stop_when_finished: bool = True,
        telemetry=None,
        bus: Optional[EventBus] = None,
        metrics: Optional[MetricsRegistry] = None,
        outage_threshold_w: float = DEFAULT_THRESHOLD_W,
        sample_stride: int = 0,
        use_fast_forward: Optional[bool] = None,
        use_exact_batch: Optional[bool] = None,
    ) -> None:
        if sample_stride < 0:
            raise ValueError("sample_stride cannot be negative")
        self.trace = trace
        self.platform = platform
        self.rectifier = rectifier
        self.stop_when_finished = stop_when_finished
        if telemetry is not None and bus is None:
            bus = EventBus()
        self.bus = bus
        self.metrics = metrics
        self.outage_threshold_w = outage_threshold_w
        self.sample_stride = sample_stride
        self.telemetry = telemetry
        self.use_fast_forward = use_fast_forward
        self.use_exact_batch = use_exact_batch
        #: Tick counts by engine path, filled in by :meth:`run`.
        self.ticks_fast_forwarded = 0
        self.ticks_batched = 0
        self.ticks_exact = 0
        if telemetry is not None:
            telemetry.subscribe_to(bus)
        if bus is not None and getattr(platform, "bus", None) is None:
            # Platforms that know the bus protocol pick it up here, so
            # presets and call sites need no extra plumbing.
            try:
                platform.bus = bus  # type: ignore[attr-defined]
            except AttributeError:  # pragma: no cover - frozen platforms
                pass

    def run(self) -> SimulationResult:
        """Execute the full trace (or until completion) and aggregate."""
        dt = self.trace.dt_s
        samples = self.trace.samples_w

        # -- vectorized pre-pass ---------------------------------------
        # Rectify the whole trace and integrate harvested energy once;
        # both engine paths then share the identical per-tick values.
        if self.rectifier is not None:
            p_dc = self.rectifier.output_power_array(samples)
        else:
            p_dc = samples
        cum_energy_j = np.cumsum(p_dc) * dt
        # Plain Python floats index ~3x faster than ndarray scalars on
        # the per-tick path, and every platform does scalar math.
        p_in_w = p_dc.tolist()
        n_ticks = len(p_in_w)

        bus = self.bus
        platform = self.platform
        outages: Optional[OutageTracker] = None
        synth: Optional[FastPathEventSynthesizer] = None
        storage = getattr(platform, "storage", None)
        want_ticks = bus is not None and bus.wants(ev.TICK)
        want_samples = bus is not None and self.sample_stride > 0
        # Only an explicit ``sim.tick`` subscription forces the exact
        # engine — every other event is synthesized bit-identically
        # from the fast path's run lengths.  A platform that is already
        # finished at entry completes on its first tick; the exact path
        # keeps that accounting.
        fast = (
            self.use_fast_forward is not False
            and not want_ticks
            and getattr(platform, "fast_forward", None) is not None
            and not platform.finished
        )
        # The batched active-tick engine is selected independently but
        # under the same subscription sensitivity: only a ``sim.tick``
        # subscriber forces scalar execution.
        batch = (
            self.use_exact_batch is not False
            and not want_ticks
            and getattr(platform, "exact_batch", None) is not None
            and not platform.finished
        )
        if bus is not None:
            if fast or batch:
                # The synthesizer owns ALL outage emission (fast
                # segments and interleaved exact ticks alike) so one
                # state machine sees every tick.
                synth = FastPathEventSynthesizer(
                    bus,
                    p_dc,
                    self.outage_threshold_w,
                    dt,
                    sample_stride=self.sample_stride,
                )
            else:
                outages = OutageTracker(self.outage_threshold_w, bus)
            bus.emit(
                ev.SIM_BEGIN,
                0.0,
                label=platform.label,
                ticks=n_ticks,
                dt_s=dt,
            )

        # state_time is accumulated per state *run* (count * dt flushed
        # at each transition) rather than dict-churned every tick; the
        # fast-forward path merges its runs into the same accumulator,
        # so both paths compute identical sums.
        state_time: Dict[str, float] = {}
        run_state: Optional[str] = None
        run_ticks = 0
        completion_time: Optional[float] = None
        finished = False
        ticks_fast = 0
        ticks_batch = 0
        ticks_exact = 0
        index = 0
        # Disarm the fast-forward and exact-batch probes after a miss
        # so a platform stuck in an unbatchable state does not pay a
        # failed call per tick; any state transition re-arms them.
        try_fast = fast
        try_batch = batch

        while index < n_ticks:
            if try_fast:
                if synth is not None:
                    # Buffer platform emits (threshold recompute,
                    # restore/wake) so they can be merged with the
                    # synthesized stream in exact-engine order.
                    bus.begin_staging()
                    try:
                        runs = platform.fast_forward(p_in_w, index, n_ticks, dt)
                    finally:
                        staged = bus.end_staging()
                else:
                    runs = platform.fast_forward(p_in_w, index, n_ticks, dt)
                    staged = None
                if runs:
                    if synth is not None:
                        synth.integrate(index, runs, staged, run_state)
                    for state, count in runs:
                        if state == run_state:
                            run_ticks += count
                        else:
                            if run_ticks:
                                state_time[run_state] = (
                                    state_time.get(run_state, 0.0)
                                    + run_ticks * dt
                                )
                            run_state = state
                            run_ticks = count
                        index += count
                        ticks_fast += count
                    continue
                if synth is not None and staged:
                    synth.flush_staged(index, staged)
                try_fast = False
            if try_batch:
                if synth is not None:
                    # Buffer platform emits (a lazy threshold
                    # recompute at batch start) for in-order merging,
                    # exactly as the fast-forward path does.
                    bus.begin_staging()
                    try:
                        runs = platform.exact_batch(
                            p_in_w, index, n_ticks, dt
                        )
                    finally:
                        staged = bus.end_staging()
                else:
                    runs = platform.exact_batch(p_in_w, index, n_ticks, dt)
                    staged = None
                if runs:
                    if synth is not None:
                        synth.integrate(index, runs, staged, run_state)
                    for state, count in runs:
                        if state == run_state:
                            run_ticks += count
                        else:
                            if run_ticks:
                                state_time[run_state] = (
                                    state_time.get(run_state, 0.0)
                                    + run_ticks * dt
                                )
                            run_state = state
                            run_ticks = count
                        index += count
                        ticks_batch += count
                    if not finished and platform.finished:
                        # An "isa"-mode batch consumes the finishing
                        # tick (unlike the recurrence kernel, which
                        # stops before it), so completion accounting
                        # runs here with the same index-past-the-tick
                        # timestamp the scalar path records.
                        finished = True
                        completion_time = index * dt
                        if self.stop_when_finished:
                            break
                    continue
                if synth is not None and staged:
                    synth.flush_staged(index, staged)
                try_batch = False
            p_in = p_in_w[index]
            if bus is not None:
                t_now = index * dt
                bus.now_s = t_now
                if synth is not None:
                    synth.flush_outages(index)
                else:
                    outages.update(p_in, t_now)
            report = platform.tick(p_in, dt)
            state = report.state
            index += 1
            ticks_exact += 1
            if state != run_state:
                if run_ticks:
                    state_time[run_state] = (
                        state_time.get(run_state, 0.0) + run_ticks * dt
                    )
                if bus is not None:
                    bus.emit(ev.STATE_TRANSITION, state=state, prev=run_state)
                run_state = state
                run_ticks = 1
                try_fast = fast
                try_batch = batch
            else:
                run_ticks += 1
            if want_samples and (index - 1) % self.sample_stride == 0:
                bus.emit(ev.SAMPLE, state=state, tick=index - 1)
            if want_ticks:
                bus.emit(
                    ev.TICK,
                    state=state,
                    instructions=report.instructions,
                    energy_j=(
                        float(storage.energy_j) if storage is not None else 0.0
                    ),
                )
            if not finished and platform.finished:
                finished = True
                completion_time = index * dt
                if self.stop_when_finished:
                    break
        if run_ticks:
            state_time[run_state] = (
                state_time.get(run_state, 0.0) + run_ticks * dt
            )
        ticks_run = index
        harvested = float(cum_energy_j[ticks_run - 1]) if ticks_run else 0.0
        self.ticks_fast_forwarded = ticks_fast
        self.ticks_batched = ticks_batch
        self.ticks_exact = ticks_exact

        if bus is not None:
            end_t = ticks_run * dt
            bus.now_s = end_t
            if synth is not None:
                synth.finish(ticks_run, end_t)
            else:
                outages.finish(end_t)
            bus.emit(
                ev.SIM_END,
                end_t,
                completed=platform.finished,
                ticks=ticks_run,
            )

        result = assemble_result(
            self.platform, state_time, ticks_run, dt, completion_time,
            harvested,
        )
        if self.metrics is not None:
            self._publish_metrics(result)
        return result

    def _publish_metrics(self, result: SimulationResult) -> None:
        """Push run aggregates into the attached metrics registry."""
        registry = self.metrics
        label = result.label
        state_time = registry.counter(
            "sim_state_seconds", "seconds per platform state",
            labels=("platform", "state"),
        )
        for state, seconds in result.state_time_s.items():
            state_time.labels(platform=label, state=state).inc(seconds)
        energy = registry.counter(
            "sim_energy_joules", "energy by flow",
            labels=("platform", "flow"),
        )
        for flow, joules in (
            ("harvested", result.harvested_j),
            ("consumed", result.consumed_j),
            ("backup", result.backup_energy_j),
            ("restore", result.restore_energy_j),
        ):
            energy.labels(platform=label, flow=flow).inc(joules)
        ops = registry.counter(
            "sim_operations", "platform operation counts",
            labels=("platform", "op"),
        )
        for op in (
            "backups", "restores", "failed_backups", "failed_restores",
            "rollbacks",
        ):
            ops.labels(platform=label, op=op).inc(getattr(result, op))
        progress = registry.counter(
            "sim_instructions", "instruction accounting",
            labels=("platform", "kind"),
        )
        for kind, value in (
            ("forward_progress", result.forward_progress),
            ("total_executed", result.total_executed),
            ("lost", result.lost_instructions),
        ):
            progress.labels(platform=label, kind=kind).inc(value)
        ticks = registry.counter(
            "sim_ticks", "simulated ticks by engine path",
            labels=("platform", "path"),
        )
        ticks.labels(platform=label, path="fast_forward").inc(
            self.ticks_fast_forwarded
        )
        ticks.labels(platform=label, path="exact_batch").inc(
            self.ticks_batched
        )
        ticks.labels(platform=label, path="exact").inc(self.ticks_exact)
        storage = getattr(self.platform, "storage", None)
        if storage is not None and hasattr(storage, "bind_gauges"):
            storage.bind_gauges(registry, platform=label)
