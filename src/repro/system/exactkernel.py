"""Batched execution of the active ON-run tick path, bit-for-bit exact.

Fast-forward (:mod:`repro.system.fastpath`) eliminated dormant-tick
cost; the scalar per-tick interpreter over *active* execution was the
remaining floor (the ``oracle_guard`` preset in BENCH_core sat at
1.0x).  Between irregular events — backup-threshold crossings, power
deficits, workload unit boundaries and completions, periodic
checkpoints — a powered-on platform running an
:class:`~repro.workloads.base.AbstractWorkload` is a straight-line
recurrence, so whole runs of ticks can be advanced in one call.

This module is that engine.  Platforms expose it as the opt-in
``exact_batch(p_in_w, start, stop, dt_s)`` capability (the active-path
sibling of ``fast_forward``): consume a run of predictable ``"run"``
ticks in bulk, **stopping before the first event tick**, and return
``(state, ticks)`` runs — or ``None`` when the current state cannot be
batched, upon which the simulator falls back to exact ticking.  The
event tick itself always executes on the scalar path, so every state
transition, backup, collapse and commit runs the same Python code in
both engines.

Bitwise discipline (the same contract ``charge_many`` /
:mod:`repro.fleet.soa` follow — every IEEE-754 operation in the same
order):

* **instruction counts** come from the workload's time-credit
  recurrence (``budget = dt + credit; count = int(budget / tpi);
  credit' = min(budget - count * tpi, tpi)``).  The recurrence is
  inherently sequential (it provably does not cycle), so it runs in a
  fused loop with every attribute hoisted to a local — no per-tick
  method dispatch, report objects, or dataclass allocation;
* **energy integration** for accumulator-only platforms (the oracle
  has no storage element) is vectorized: the per-tick energies are
  integrated with :func:`numpy.cumsum`, which for a 1-D float64 array
  performs the identical left-to-right additions the scalar
  ``consumed_j += count * epi`` loop performs, with the prior
  accumulator value as the leading element.  Event boundaries (the
  workload's finishing tick) are located on the monotone cumulative
  instruction series;
* **storage-backed platforms** (NVP, checkpoint, wait-and-compute)
  have state-dependent per-tick dynamics — conversion efficiency and
  leakage are functions of the evolving capacitor voltage — so their
  stored-energy series cannot be time-vectorized without changing the
  float evaluation order.  Their batched path is a fused scalar loop
  replicating ``Capacitor.step``'s exact op chain (charge with
  voltage-dependent efficiency, headroom clip, leak, load draw), with
  the storage parameterized through the same ``soa_params()`` identity
  contract the fleet kernel uses, so :class:`~repro.storage.ideal.IdealStorage`
  runs through identity operations (``x * 1.0``, ``x - 0.0``) that
  cannot change a bit.

Event ticks are detected on *candidate* values: the loop computes the
tick's deltas into locals, and on a deficit (or a pre-tick threshold
crossing, unit boundary, periodic-checkpoint trip, or finishing tick)
discards them and stops — the scalar path then re-executes the tick
from the identical platform state.

The kernel sits behind the narrow :class:`ExactKernel` interface so an
accelerated backend (generated C via cffi, following the
compiled-simulator-vs-reference-model pattern) can slot in without
touching any platform; :data:`active_kernel` selects the
implementation process-wide.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "ExactKernel",
    "PythonExactKernel",
    "active_kernel",
    "get_kernel",
    "batchable_workload",
]

#: Conservative relative margin used by the ISA pre-checks.  Covers the
#: accumulated float rounding of per-instruction time/energy sums for
#: runs up to ~10^7 instructions per tick (error ~n * 2^-52 << 1e-8).
_ISA_MARGIN = 1.0e-8


def batchable_workload(workload) -> Optional[str]:
    """The workload's batchable-advance mode, or ``None``.

    Workloads advertise batchability through the
    ``supports_exact_batch`` capability (see
    :class:`~repro.workloads.base.Workload`):

    * ``"recurrence"`` — ``advance`` is the closed-form
      :class:`~repro.workloads.base.AbstractWorkload` time-credit
      recurrence; the kernel replays it via
      :meth:`ExactKernel.oracle_run` / :meth:`ExactKernel.storage_run`.
    * ``"isa"`` — ``advance`` executes real NV16 instructions
      (:class:`~repro.workloads.base.FunctionalWorkload`); the kernel
      drives the workload's own ``advance`` tick by tick via
      :meth:`ExactKernel.isa_oracle_run` /
      :meth:`ExactKernel.isa_storage_run`.
    * ``None`` — scalar ticking only.

    Subclasses that override neither ``advance`` nor ``finished`` keep
    their base class's mode (the PR 8 exact-type check silently dropped
    such subclasses to the scalar path).  The return value is truthy
    iff batchable, so existing boolean gates keep working; platforms
    dispatch on the mode string.
    """
    return getattr(workload, "supports_exact_batch", None)


class ExactKernel:
    """Interface of a batched active-tick backend.

    Implementations MUST be bit-for-bit identical to the scalar
    per-tick path: same IEEE-754 operations, same order, including the
    ``(count * epi) / dt * dt`` demand round-trip and the candidate
    discard semantics documented in the module docstring.  Both entry
    points mutate the platform in place and return the number of ticks
    consumed (0 when the first tick is already an event tick).
    """

    #: Human-readable backend name (surfaces in docs/benchmarks).
    name = "abstract"

    def oracle_run(self, platform, start: int, stop: int, dt_s: float) -> int:
        """Batch continuously-powered ticks (no storage element).

        Per scalar tick: ``advance(dt_s)``, ``ledger.execute`` +
        ``ledger.commit``, ``consumed_j += advance.energy_j``.  Stops
        before the workload's finishing tick.
        """
        raise NotImplementedError

    def storage_run(
        self,
        platform,
        p_in_w,
        start: int,
        stop: int,
        dt_s: float,
        stop_energy_j: Optional[float] = None,
        period_limit: Optional[int] = None,
        period_count: int = 0,
        stop_at_unit_boundary: bool = False,
    ) -> Tuple[int, int]:
        """Batch powered-on ticks of a storage-backed platform.

        Per scalar tick: stall-decayed exec budget, workload advance,
        ``ledger.execute``, storage step at the advance's load power,
        ``consumed_j += delivered``.  Stops before the first tick
        where any of these holds:

        * stored energy at tick start ``<= stop_energy_j`` (the NVP /
          Hibernus voltage trigger; ``None`` disables);
        * ``period_count`` + the tick's instruction count reaches
          ``period_limit`` (the Mementos periodic checkpoint;
          ``None`` disables);
        * the tick's instructions cross a workload unit boundary
          (wait-and-compute commits; ``stop_at_unit_boundary``);
        * the workload would finish;
        * the storage reports a deficit (power collapse).

        ``period_count`` tracks the platform's instructions-since-
        checkpoint counter through the batch; the updated value is
        returned alongside the consumed tick count.
        """
        raise NotImplementedError

    def isa_oracle_run(self, platform, start: int, stop: int, dt_s: float) -> int:
        """Batch continuously-powered ticks of a functional workload.

        The per-tick recurrence is the workload's own ``advance``
        (which drives the NV16 block engine), so the tick is executed
        for real; the batching win is eliminating the simulator's
        per-tick overhead (bus staging, report objects, state-machine
        dispatch) and bulk-applying the integer ledger commits.
        Unlike :meth:`oracle_run`, the finishing tick *is* consumed
        in-batch (the caller observes ``platform.finished`` after the
        batch); the batch simply stops after it.
        """
        raise NotImplementedError

    def isa_storage_run(
        self,
        platform,
        p_in_w,
        start: int,
        stop: int,
        dt_s: float,
        stop_energy_j: Optional[float] = None,
        period_limit: Optional[int] = None,
        period_count: int = 0,
    ) -> Tuple[int, int]:
        """Batch powered-on storage-backed ticks of a functional workload.

        Same stop conditions as :meth:`storage_run`, but the per-tick
        instruction count and energy come from really executing the
        workload's ``advance`` (block engine), so event ticks cannot be
        predicted from a closed form.  Instead each tick passes two
        *conservative* pre-checks before ``advance`` is called:

        * ``period_count`` plus a worst-case instruction bound
          (``int(budget / min_instruction_time * (1 + eps)) + 2``)
          stays below ``period_limit``;
        * post-charge/leak stored energy (computable exactly before the
          advance — it does not depend on the load) covers a worst-case
          demand bound (``(budget + max_instruction_time) * max_power``
          plus margins, where ``max_power`` is the worst
          energy-per-second over the instruction classes).

        A failed pre-check stops the batch and the tick re-executes on
        the scalar path from identical state — conservative stops only
        cost a fallback tick, never exactness.  The finishing tick is
        consumed in-batch, then the batch stops.  There is no
        ``stop_at_unit_boundary`` variant: unit-boundary semantics
        cannot be pre-checked conservatively, so wait-and-compute keeps
        functional workloads on the scalar path.
        """
        raise NotImplementedError


class PythonExactKernel(ExactKernel):
    """The default backend: fused Python loops + numpy integration."""

    name = "python-fused"

    def oracle_run(self, platform, start: int, stop: int, dt_s: float) -> int:
        workload = platform.workload
        tpi = workload._time_per_instr
        epi = workload._energy_per_instr
        credit = workload._time_credit_s
        retired = workload._retired
        total_units = workload.total_units
        limit = (
            total_units * workload.instructions_per_unit
            if total_units is not None
            else None
        )
        retired_before = retired
        dt = dt_s
        counts = []
        append = counts.append
        for _ in range(stop - start):
            # AbstractWorkload.advance(dt): the time-credit recurrence.
            budget = dt + credit
            count = int(budget / tpi)
            if limit is not None and retired + count >= limit:
                # Finishing tick: the scalar path executes it so
                # completion accounting stays on the simulator.
                break
            time_used = count * tpi
            rem = budget - time_used
            credit = rem if rem < tpi else tpi
            retired += count
            append(count)
        ticks = len(counts)
        if not ticks:
            return 0
        # consumed_j += count * epi, tick by tick: np.cumsum over a 1-D
        # float64 array adds left to right, so seeding element 0 with
        # the prior accumulator reproduces every partial sum bit for
        # bit (property-tested in tests/test_exactkernel.py).
        series = np.empty(ticks + 1, dtype=np.float64)
        series[0] = platform.consumed_j
        np.multiply(
            np.asarray(counts, dtype=np.float64), epi, out=series[1:]
        )
        platform.consumed_j = float(np.cumsum(series)[-1])
        workload._retired = retired
        workload._time_credit_s = credit
        # Each tick executes then commits: persistent absorbs any
        # volatile remainder plus every batched instruction (integer
        # math — order-free, applied in bulk).
        ledger = platform.ledger
        ledger.persistent += ledger.volatile + (retired - retired_before)
        ledger.volatile = 0
        ledger.commits += ticks
        return ticks

    def storage_run(
        self,
        platform,
        p_in_w,
        start: int,
        stop: int,
        dt_s: float,
        stop_energy_j: Optional[float] = None,
        period_limit: Optional[int] = None,
        period_count: int = 0,
        stop_at_unit_boundary: bool = False,
    ) -> Tuple[int, int]:
        workload = platform.workload
        storage = platform.storage
        params = storage.soa_params()
        capacitance = params["capacitance_f"]
        capacity = params["capacity_j"]
        leak_ohm = params["leak_ohm"]
        min_current = params["min_current_a"]
        eta_peak = params["eta_peak"]
        eta_floor = params["eta_floor"]
        v_opt = params["v_opt_v"]
        v_span = params["v_span_v"]
        # A flat curve is voltage-independent: max(eta, eta_peak *
        # (1 - x**2)) == eta exactly (same hoist charge_many makes).
        flat_eta = eta_peak if eta_floor == eta_peak else None
        energy, total_charged, total_leaked, total_wasted = storage.soa_state()
        total_delivered = storage.total_delivered_j

        tpi = workload._time_per_instr
        epi = workload._energy_per_instr
        credit = workload._time_credit_s
        retired = workload._retired
        total_units = workload.total_units
        ipu = workload.instructions_per_unit
        limit = total_units * ipu if total_units is not None else None
        stall = platform._stall_s
        consumed = platform.consumed_j
        ledger = platform.ledger
        volatile = ledger.volatile
        threshold = -math.inf if stop_energy_j is None else stop_energy_j

        dt = dt_s
        sqrt = math.sqrt
        index = start
        ticks = 0
        while index < stop:
            # Pre-tick trigger check, exactly where the platform state
            # machine tests it (before the workload advances).
            if energy <= threshold:
                break
            # -- workload candidate (AbstractWorkload.advance) --------
            exec_budget = dt - stall
            if exec_budget < 0.0:
                exec_budget = 0.0
            new_stall = stall - dt
            if new_stall < 0.0:
                new_stall = 0.0
            budget = exec_budget + credit
            count = int(budget / tpi)
            if limit is not None and retired + count >= limit:
                break  # finishing tick stays scalar
            if (
                period_limit is not None
                and period_count + count >= period_limit
            ):
                break  # periodic-checkpoint tick stays scalar
            if (
                stop_at_unit_boundary
                and count
                and (retired + count) // ipu > retired // ipu
            ):
                break  # unit-commit tick stays scalar
            time_used = count * tpi
            rem = budget - time_used
            new_credit = rem if rem < tpi else tpi
            load_w = (count * epi) / dt

            # -- storage candidate (Capacitor.step's exact op chain) --
            p_in = p_in_w[index]
            wasted = 0.0
            voltage = sqrt(2.0 * energy / capacitance)
            input_energy = p_in * dt
            if (
                min_current > 0.0
                and voltage > 0.0
                and p_in < min_current * voltage
            ) or input_energy == 0.0:
                charged = 0.0
                wasted += input_energy
                new_energy = energy
            else:
                if flat_eta is not None:
                    eta = flat_eta
                else:
                    offset = (voltage - v_opt) / v_span
                    eta = eta_peak * (1.0 - offset * offset)
                    if eta < eta_floor:
                        eta = eta_floor
                charged = input_energy * eta
                wasted += input_energy - charged
                headroom = capacity - energy
                if charged > headroom:
                    wasted += charged - headroom
                    charged = headroom
                new_energy = energy + charged
            voltage = sqrt(2.0 * new_energy / capacitance)
            leaked = voltage * voltage / leak_ohm * dt
            if leaked > new_energy:
                leaked = new_energy
            new_energy -= leaked
            demand = load_w * dt
            delivered = demand if demand < new_energy else new_energy
            if delivered < demand - 1e-18:
                # Deficit (power collapse): discard the candidate and
                # stop — the scalar path re-executes this tick from
                # the identical state and runs the collapse handling.
                break
            new_energy -= delivered

            # -- commit the tick --------------------------------------
            energy = new_energy
            stall = new_stall
            credit = new_credit
            retired += count
            volatile += count
            period_count += count
            consumed += delivered
            total_charged += charged
            total_leaked += leaked
            total_wasted += wasted
            total_delivered += delivered
            index += 1
            ticks += 1
        if ticks:
            storage.soa_restore(
                energy, total_charged, total_leaked, total_wasted
            )
            storage.total_delivered_j = total_delivered
            workload._retired = retired
            workload._time_credit_s = credit
            platform._stall_s = stall
            platform.consumed_j = consumed
            ledger.volatile = volatile
        return ticks, period_count

    def isa_oracle_run(self, platform, start: int, stop: int, dt_s: float) -> int:
        workload = platform.workload
        ledger = platform.ledger
        consumed = platform.consumed_j
        advance = workload.advance
        total = 0
        ticks = 0
        try:
            while ticks < stop - start:
                # Really execute the tick: advance drives the block
                # engine; counts/energy are the workload's own.
                adv = advance(dt_s)
                total += adv.instructions
                consumed += adv.energy_j
                ticks += 1
                if workload.finished:
                    break
        finally:
            # Also reached when advance raises (stuck unit / execution
            # fault): committed ticks are written back so the platform
            # matches the scalar path's state at the raising tick.
            if ticks:
                platform.consumed_j = consumed
                ledger.persistent += ledger.volatile + total
                ledger.volatile = 0
                ledger.commits += ticks
        return ticks

    def isa_storage_run(
        self,
        platform,
        p_in_w,
        start: int,
        stop: int,
        dt_s: float,
        stop_energy_j: Optional[float] = None,
        period_limit: Optional[int] = None,
        period_count: int = 0,
    ) -> Tuple[int, int]:
        workload = platform.workload
        storage = platform.storage
        params = storage.soa_params()
        capacitance = params["capacitance_f"]
        capacity = params["capacity_j"]
        leak_ohm = params["leak_ohm"]
        min_current = params["min_current_a"]
        eta_peak = params["eta_peak"]
        eta_floor = params["eta_floor"]
        v_opt = params["v_opt_v"]
        v_span = params["v_span_v"]
        flat_eta = eta_peak if eta_floor == eta_peak else None
        energy, total_charged, total_leaked, total_wasted = storage.soa_state()
        total_delivered = storage.total_delivered_j

        min_time, max_time, max_power = workload.advance_bounds()
        advance = workload.advance
        stall = platform._stall_s
        consumed = platform.consumed_j
        ledger = platform.ledger
        total_instr = 0
        threshold = -math.inf if stop_energy_j is None else stop_energy_j

        dt = dt_s
        margin = 1.0 + _ISA_MARGIN
        sqrt = math.sqrt
        index = start
        ticks = 0
        try:
            while index < stop:
                # Pre-tick trigger check, where the state machine tests it.
                if energy <= threshold:
                    break
                exec_budget = dt - stall
                if exec_budget < 0.0:
                    exec_budget = 0.0
                new_stall = stall - dt
                if new_stall < 0.0:
                    new_stall = 0.0
                # Worst-case instruction count this tick could retire.
                worst_budget = exec_budget + workload._time_credit_s
                worst_count = int(worst_budget / min_time * margin) + 2
                if (
                    period_limit is not None
                    and period_count + worst_count >= period_limit
                ):
                    break  # might trip the periodic checkpoint: go scalar
                # -- storage candidate (Capacitor.step's exact op chain;
                #    charge and leak do not depend on the load, so they
                #    can be computed before the workload advances) -----
                p_in = p_in_w[index]
                wasted = 0.0
                voltage = sqrt(2.0 * energy / capacitance)
                input_energy = p_in * dt
                if (
                    min_current > 0.0
                    and voltage > 0.0
                    and p_in < min_current * voltage
                ) or input_energy == 0.0:
                    charged = 0.0
                    wasted += input_energy
                    new_energy = energy
                else:
                    if flat_eta is not None:
                        eta = flat_eta
                    else:
                        offset = (voltage - v_opt) / v_span
                        eta = eta_peak * (1.0 - offset * offset)
                        if eta < eta_floor:
                            eta = eta_floor
                    charged = input_energy * eta
                    wasted += input_energy - charged
                    headroom = capacity - energy
                    if charged > headroom:
                        wasted += charged - headroom
                        charged = headroom
                    new_energy = energy + charged
                voltage = sqrt(2.0 * new_energy / capacitance)
                leaked = voltage * voltage / leak_ohm * dt
                if leaked > new_energy:
                    leaked = new_energy
                new_energy -= leaked
                # Conservative deficit pre-check: worst-case demand
                # (time-budget times the worst energy-per-second, the
                # last instruction overshooting by at most max_time,
                # plus float-rounding margins) must be coverable, else
                # the tick might collapse — leave it to the scalar path.
                worst_demand = (
                    (worst_budget + max_time) * max_power * margin + 1e-15
                )
                if new_energy < worst_demand:
                    break
                # -- commit the tick: really execute the instructions --
                adv = advance(exec_budget)
                demand = (adv.energy_j / dt) * dt
                delivered = demand  # guaranteed < new_energy above
                new_energy -= delivered
                energy = new_energy
                stall = new_stall
                total_instr += adv.instructions
                period_count += adv.instructions
                consumed += delivered
                total_charged += charged
                total_leaked += leaked
                total_wasted += wasted
                total_delivered += delivered
                index += 1
                ticks += 1
                if workload.finished:
                    break  # finishing tick consumed in-batch
        finally:
            # Also reached when advance raises mid-batch: prior ticks'
            # storage/ledger effects are written back so the platform
            # matches the scalar path's state at the raising tick.
            if ticks:
                storage.soa_restore(
                    energy, total_charged, total_leaked, total_wasted
                )
                storage.total_delivered_j = total_delivered
                platform._stall_s = stall
                platform.consumed_j = consumed
                ledger.volatile += total_instr
        return ticks, period_count


#: The process-wide backend; a compiled implementation replaces this.
active_kernel: ExactKernel = PythonExactKernel()


def get_kernel() -> ExactKernel:
    """The currently selected batched-execution backend."""
    return active_kernel
