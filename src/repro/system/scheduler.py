"""Task-level timeliness analysis on intermittent platforms.

Forward progress measures *how much* work a harvested platform does;
IoT applications also care *when* — a sensing task released every
second is worthless if its result arrives minutes late.  This module
replays a simulation's per-tick instruction capacity (recorded by
:class:`~repro.system.telemetry.Telemetry`) against a periodic task
set under FIFO or EDF scheduling and reports response times and
deadline misses.  Burstiness matters here: two platforms with equal
total forward progress can differ wildly in deadline behaviour, which
is exactly the responsiveness argument the DATE'17 tutorial makes for
NVPs over wait-and-compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class PeriodicTask:
    """A periodic job stream.

    Attributes:
        name: identifier.
        period_s: release period.
        instructions: work per job.
        deadline_s: relative deadline (defaults to the period).
    """

    name: str
    period_s: float
    instructions: int
    deadline_s: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period must be positive")
        if self.instructions <= 0:
            raise ValueError("instructions must be positive")
        if self.deadline_s < 0:
            raise ValueError("deadline cannot be negative")

    @property
    def effective_deadline_s(self) -> float:
        """Relative deadline (the period when not set explicitly)."""
        return self.deadline_s if self.deadline_s > 0 else self.period_s


@dataclass
class JobRecord:
    """One job instance's lifecycle."""

    task: str
    release_s: float
    deadline_s: float
    need: int
    done: int = 0
    completion_s: float = -1.0

    @property
    def completed(self) -> bool:
        return self.done >= self.need

    @property
    def response_s(self) -> float:
        """Response time (inf if never completed)."""
        if not self.completed:
            return float("inf")
        return self.completion_s - self.release_s

    @property
    def missed(self) -> bool:
        """True if the job finished late or never finished."""
        return not self.completed or self.completion_s > self.deadline_s


@dataclass
class ScheduleReport:
    """Outcome of a schedulability replay.

    Attributes:
        jobs: every released job, in release order.
        policy: the scheduling policy used.
    """

    jobs: List[JobRecord] = field(default_factory=list)
    policy: str = "edf"

    @property
    def released(self) -> int:
        return len(self.jobs)

    @property
    def completed(self) -> int:
        return sum(1 for job in self.jobs if job.completed)

    @property
    def misses(self) -> int:
        return sum(1 for job in self.jobs if job.missed)

    @property
    def miss_rate(self) -> float:
        """Fraction of released jobs that missed their deadline."""
        if not self.jobs:
            return 0.0
        return self.misses / len(self.jobs)

    def response_times(self) -> np.ndarray:
        """Response times of completed jobs, seconds."""
        return np.array(
            [job.response_s for job in self.jobs if job.completed], dtype=float
        )

    def p95_response_s(self) -> float:
        """95th-percentile response time (inf if nothing completed)."""
        times = self.response_times()
        if len(times) == 0:
            return float("inf")
        return float(np.percentile(times, 95))


def schedule_replay(
    capacity_per_tick: Sequence[int],
    dt_s: float,
    tasks: Sequence[PeriodicTask],
    policy: str = "edf",
) -> ScheduleReport:
    """Replay per-tick instruction capacity against a periodic task set.

    Args:
        capacity_per_tick: instructions the platform executed per tick
            (e.g. ``Telemetry.instructions``).
        dt_s: tick duration.
        tasks: the periodic task set.
        policy: ``"edf"`` (earliest deadline first) or ``"fifo"``
            (release order).

    Returns:
        A :class:`ScheduleReport` covering every job released within
        the capacity series.
    """
    if dt_s <= 0:
        raise ValueError("dt must be positive")
    if policy not in ("edf", "fifo"):
        raise ValueError(f"unknown policy {policy!r}")
    if not tasks:
        raise ValueError("need at least one task")

    n_ticks = len(capacity_per_tick)
    horizon_s = n_ticks * dt_s
    jobs: List[JobRecord] = []
    for task in tasks:
        k = 0
        while True:
            release = k * task.period_s  # index-based: no FP accumulation
            if release >= horizon_s - 1e-12:
                break
            jobs.append(
                JobRecord(
                    task=task.name,
                    release_s=release,
                    deadline_s=release + task.effective_deadline_s,
                    need=task.instructions,
                )
            )
            k += 1
    jobs.sort(key=lambda job: job.release_s)

    pending: List[JobRecord] = []
    next_release = 0
    for tick in range(n_ticks):
        now = tick * dt_s
        while next_release < len(jobs) and jobs[next_release].release_s <= now:
            pending.append(jobs[next_release])
            next_release += 1
        budget = int(capacity_per_tick[tick])
        while budget > 0 and pending:
            if policy == "edf":
                current = min(pending, key=lambda job: job.deadline_s)
            else:
                current = pending[0]
            take = min(budget, current.need - current.done)
            current.done += take
            budget -= take
            if current.completed:
                current.completion_s = now + dt_s
                pending.remove(current)
    return ScheduleReport(jobs=jobs, policy=policy)
