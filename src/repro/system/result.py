"""Simulation result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class SimulationResult:
    """Aggregated outcome of one system-level simulation.

    Attributes:
        label: the platform label.
        duration_s: simulated wall-clock time.
        forward_progress: instructions persistently committed.
        total_executed: all instructions executed (incl. lost work).
        lost_instructions: instructions rolled back on power failures.
        units_completed: completed work units (frames).
        completed: True if the workload finished within the trace.
        completion_time_s: time at which the workload finished.
        backups / restores: successful operation counts.
        failed_backups / failed_restores: operations that ran out of
            energy midway.
        rollbacks: power failures that discarded volatile work.
        state_time_s: seconds spent per platform state
            (``"off"``, ``"run"``, ...).
        harvested_j: energy offered by the (rectified) trace.
        consumed_j: energy delivered to the platform load.
        backup_energy_j / restore_energy_j: energy spent on state
            preservation.
        extras: free-form platform-specific metrics.
    """

    label: str
    duration_s: float
    forward_progress: int = 0
    total_executed: int = 0
    lost_instructions: int = 0
    units_completed: int = 0
    completed: bool = False
    completion_time_s: Optional[float] = None
    backups: int = 0
    restores: int = 0
    failed_backups: int = 0
    failed_restores: int = 0
    rollbacks: int = 0
    state_time_s: Dict[str, float] = field(default_factory=dict)
    harvested_j: float = 0.0
    consumed_j: float = 0.0
    backup_energy_j: float = 0.0
    restore_energy_j: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def on_time_fraction(self) -> float:
        """Fraction of time the core was executing."""
        if self.duration_s <= 0:
            return 0.0
        return self.state_time_s.get("run", 0.0) / self.duration_s

    @property
    def progress_per_second(self) -> float:
        """Forward progress rate (instructions per second)."""
        if self.duration_s <= 0:
            return 0.0
        return self.forward_progress / self.duration_s

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationResult":
        """Re-hydrate a result from its :meth:`to_dict` form.

        Derived keys (``on_time_fraction``, ``progress_per_second``)
        and anything else unknown are ignored, so payloads written by
        older/newer versions still load.
        """
        from dataclasses import fields

        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view of the result (for tooling/CI)."""
        return {
            "label": self.label,
            "duration_s": self.duration_s,
            "forward_progress": self.forward_progress,
            "total_executed": self.total_executed,
            "lost_instructions": self.lost_instructions,
            "units_completed": self.units_completed,
            "completed": self.completed,
            "completion_time_s": self.completion_time_s,
            "backups": self.backups,
            "restores": self.restores,
            "failed_backups": self.failed_backups,
            "failed_restores": self.failed_restores,
            "rollbacks": self.rollbacks,
            "state_time_s": dict(self.state_time_s),
            "harvested_j": self.harvested_j,
            "consumed_j": self.consumed_j,
            "backup_energy_j": self.backup_energy_j,
            "restore_energy_j": self.restore_energy_j,
            "on_time_fraction": self.on_time_fraction,
            "progress_per_second": self.progress_per_second,
            "extras": dict(self.extras),
        }

    def summary(self) -> str:
        """One-line human-readable summary."""
        done = (
            f"done@{self.completion_time_s:.3f}s"
            if self.completed and self.completion_time_s is not None
            else "unfinished"
        )
        return (
            f"{self.label}: FP={self.forward_progress} "
            f"({self.progress_per_second:.0f}/s), units={self.units_completed}, "
            f"backups={self.backups}, restores={self.restores}, "
            f"rollbacks={self.rollbacks}, on={self.on_time_fraction:.1%}, {done}"
        )
