"""Peripheral-state modelling: the part NVFF backup does not cover.

A nonvolatile processor preserves *its own* state across outages, but
the analog/mixed-signal peripherals around it — ADCs, sensor
front-ends, radios — lose their configuration registers and bias
points whenever the rail collapses.  Re-initialising them on every
wake-up costs instructions, settle time and energy, and at wristwatch
emergency rates this recurring tax can rival the backup/restore cost
itself.  The DATE'17 tutorial lists this as one of the open
challenges for NVP systems; this module lets experiments quantify it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class Peripheral:
    """One peripheral's power-cycle behaviour.

    Attributes:
        name: identifier.
        reinit_instructions: software reconfiguration cost paid by the
            core on every wake-up.
        reinit_settle_s: analog settling time before the peripheral is
            usable (bias, PLL, AGC...), during which the core stalls.
        reinit_energy_j: analog energy of the re-initialisation beyond
            the instructions (charging bias networks etc.).
        active_power_w: additional rail load while the system runs.
    """

    name: str
    reinit_instructions: int = 0
    reinit_settle_s: float = 0.0
    reinit_energy_j: float = 0.0
    active_power_w: float = 0.0

    def __post_init__(self) -> None:
        if self.reinit_instructions < 0:
            raise ValueError("reinit instructions cannot be negative")
        if self.reinit_settle_s < 0 or self.reinit_energy_j < 0:
            raise ValueError("reinit costs cannot be negative")
        if self.active_power_w < 0:
            raise ValueError("active power cannot be negative")


#: Representative catalog (order-of-magnitude figures for ULP parts).
ADC_10BIT = Peripheral(
    name="adc-10bit",
    reinit_instructions=150,
    reinit_settle_s=50e-6,
    reinit_energy_j=5e-9,
    active_power_w=4e-6,
)

IMAGE_SENSOR = Peripheral(
    name="image-sensor",
    reinit_instructions=2_000,
    reinit_settle_s=1e-3,
    reinit_energy_j=200e-9,
    active_power_w=40e-6,
)

RADIO_TRX = Peripheral(
    name="radio-trx",
    reinit_instructions=4_000,
    reinit_settle_s=2e-3,
    reinit_energy_j=500e-9,
    active_power_w=0.0,  # duty-cycled separately; idle current negligible
)


class PeripheralSet:
    """The peripherals attached to a platform.

    Args:
        peripherals: the attached devices (may be empty).
    """

    def __init__(self, peripherals: Sequence[Peripheral] = ()) -> None:
        self.peripherals = tuple(peripherals)
        self.reinits = 0

    @property
    def active_power_w(self) -> float:
        """Total extra rail load while the system runs."""
        return sum(p.active_power_w for p in self.peripherals)

    def reinit_cost(
        self, instr_energy_j: float, instr_time_s: float
    ) -> Tuple[float, float]:
        """Wake-up re-initialisation cost as ``(energy_j, time_s)``.

        Args:
            instr_energy_j: the core's mean energy per instruction.
            instr_time_s: the core's mean time per instruction.
        """
        if instr_energy_j < 0 or instr_time_s < 0:
            raise ValueError("instruction costs cannot be negative")
        energy = 0.0
        time_s = 0.0
        for p in self.peripherals:
            energy += p.reinit_instructions * instr_energy_j + p.reinit_energy_j
            time_s += p.reinit_instructions * instr_time_s + p.reinit_settle_s
        return energy, time_s

    def record_reinit(self) -> None:
        """Count one wake-up re-initialisation (telemetry)."""
        self.reinits += 1

    def __len__(self) -> int:
        return len(self.peripherals)

    def __repr__(self) -> str:
        names = ", ".join(p.name for p in self.peripherals)
        return f"PeripheralSet([{names}])"
