"""The shared charge-loop behind every platform's ``fast_forward``.

Every energy-buffered platform fast-forwards the same way: while
dormant it charges toward an energy target through the storage
element's ``charge_many`` primitive, attempts a wake on the
threshold-crossing tick, and reports the consumed ticks as
``(state, ticks)`` runs.  Before this module, that loop was
copy-pasted across :mod:`repro.core.nvp`,
:mod:`repro.baselines.checkpoint` and
:mod:`repro.baselines.waitcompute`; now each platform only describes
*its* dormant behaviour as an :class:`OffRunPlan` and delegates the
loop to :func:`fast_forward_offruns`.

The plan is also the contract the fleet kernel
(:mod:`repro.fleet.kernel`) drives: a dormant device advances through
the vectorized struct-of-arrays charge step, and on the crossing tick
the kernel calls the same ``on_cross`` hook this loop would, so both
paths stay bit-identical to exact ticking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple


@dataclass
class OffRunPlan:
    """How a dormant platform charges and wakes.

    Attributes:
        state: run-length state name while dormant (``"off"`` or
            ``"charge"``).
        target_j: stored-energy target that triggers a wake attempt;
            called once per charge run so plans whose target moves
            between wake attempts (wait-and-compute) stay exact.
        on_charged: optional bookkeeping for consumed dormant ticks
            (the NVP's retention-age clock); called after every charge
            run with the number of ticks consumed.
        on_cross: wake attempt on the threshold-crossing tick.  Must
            return the platform's :class:`~repro.system.simulator.TickReport`;
            a report whose state equals ``state`` means the wake failed
            and the crossing tick stays a dormant tick.
    """

    state: str
    target_j: Callable[[], float]
    on_charged: Optional[Callable[[int], None]]
    on_cross: Callable[[], object]


def fast_forward_offruns(
    platform, p_in_w, start: int, stop: int, dt_s: float
) -> Optional[List[Tuple[str, int]]]:
    """Bulk-advance ``platform`` through dormant/done ticks.

    Implements the ``fast_forward`` contract documented on
    :meth:`repro.core.nvp.NVPPlatform.fast_forward` for any platform
    that exposes ``off_plan(dt_s)``: delegates the arithmetic to the
    storage element's ``charge_many`` so every float operation matches
    the exact path bit-for-bit, and runs the wake attempt on the
    crossing tick through the platform's own transition hook.

    Args:
        platform: the platform being advanced; must expose
            ``storage``, ``workload`` and ``off_plan``.
        p_in_w: per-tick DC input power, indexable.
        start: index of the current tick.
        stop: one past the last tick that may be consumed.
        dt_s: tick duration.

    Returns:
        ``(state, ticks)`` runs covering every consumed tick, in
        order — or ``None`` when the platform state cannot be
        fast-forwarded (the simulator then falls back to exact
        ticking).
    """
    charge_many = getattr(platform.storage, "charge_many", None)
    if charge_many is None:
        return None
    if platform.workload.finished:
        consumed, _ = charge_many(p_in_w, start, stop, dt_s, None)
        return [("done", consumed)] if consumed else None
    plan = platform.off_plan(dt_s)
    if plan is None:
        return None
    bus = getattr(platform, "bus", None)
    if bus is not None:
        # Stamp the bus clock so emits from inside the bulk operation
        # (threshold recompute, wake events) carry the tick the exact
        # engine would have used.
        bus.set_clock(start, dt_s)
    runs: List[Tuple[str, int]] = []
    pending = 0
    index = start
    while index < stop:
        consumed, crossed = charge_many(
            p_in_w, index, stop, dt_s, plan.target_j()
        )
        index += consumed
        if plan.on_charged is not None:
            plan.on_charged(consumed)
        pending += consumed
        if not crossed:
            break
        if bus is not None:
            # The crossing tick is the last one consumed.
            bus.set_clock(index - 1, dt_s)
        report = plan.on_cross()
        if report.state == plan.state:
            # Wake failed; the crossing tick stays a dormant tick and
            # charging resumes.
            continue
        pending -= 1
        if pending:
            runs.append((plan.state, pending))
        runs.append((report.state, 1))
        return runs
    if pending:
        runs.append((plan.state, pending))
    return runs or None
