"""The NVP platform model: the tick-level state machine.

``NVPPlatform`` composes a workload (the NV16 core or an abstract
instruction mix), a storage element, and the backup controller into
the execution paradigm that defines a nonvolatile processor:

* execute whenever stored energy is above the *backup threshold*;
* when energy falls to the threshold, back up the architectural state
  to NVM (microseconds, double-buffered) and power down;
* when energy recovers past the *start threshold*, restore and resume
  exactly where execution stopped.

Work executed since the last successful backup is volatile and is
lost if power collapses faster than the backup can complete — the
margin built into the backup threshold controls how often that
happens.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.core.backup import BackupController
from repro.core.config import NVPConfig
from repro.core.progress import ForwardProgressLedger
from repro.obs import events as ev
from repro.obs.events import EventBus
from repro.system import exactkernel, fastpath
from repro.system.fastpath import OffRunPlan
from repro.system.simulator import TickReport
from repro.system.thresholds import ThresholdPlan, plan_thresholds
from repro.workloads.base import Workload

#: Optional execution governor: maps (stored energy, thresholds, dt)
#: to the fraction of the tick the core may execute (used by DPM).
Governor = Callable[[float, ThresholdPlan, float], float]


class NVPPlatform:
    """A nonvolatile processor attached to a storage element.

    Args:
        workload: the computation to run.
        storage: a :class:`~repro.storage.capacitor.Capacitor` or
            compatible store.
        config: NVP architecture configuration.
        seed: RNG seed for retention-failure sampling.
        governor: optional DPM governor limiting per-tick execution.
        peripherals: optional peripheral set; its devices are
            re-initialised (energy + stall) on every wake-up and add
            their active power to the run load — the peripheral-state
            tax NVFF backup cannot remove.
        bus: optional observability
            :class:`~repro.obs.events.EventBus`; the platform publishes
            backup/restore lifecycle, wake, power-collapse, margin, and
            threshold events.  The simulator attaches its bus here
            automatically when the platform was built without one.
    """

    def __init__(
        self,
        workload: Workload,
        storage,
        config: Optional[NVPConfig] = None,
        seed: Union[int, np.random.Generator, None] = 0,
        governor: Optional[Governor] = None,
        peripherals=None,
        adaptive_margin: bool = False,
        bus: Optional[EventBus] = None,
    ) -> None:
        self.workload = workload
        self.storage = storage
        self.peripherals = peripherals
        self.adaptive_margin = adaptive_margin
        self.bus = bus
        self.config = config if config is not None else NVPConfig()
        self.rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self.governor = governor
        self.label = self.config.label
        initial_snapshot = workload.snapshot()
        data_words = len(workload.snapshot_words(initial_snapshot))
        self.controller = BackupController(self.config, data_words=data_words)
        self.ledger = ForwardProgressLedger()
        self._last_snapshot = initial_snapshot
        self._state = "off"
        self._stall_s = 0.0
        # Off-time is tracked as a tick count and multiplied out so the
        # per-tick path and fast-forward agree bit-for-bit (a running
        # float sum of dt would drift from ``ticks * dt``).
        self._off_ticks = 0
        self._off_elapsed_s = 0.0
        self._plan: Optional[ThresholdPlan] = None
        # Counters not covered by ledger/controller.
        self.failed_backups = 0
        self.failed_restores = 0
        self.consumed_j = 0.0
        # Adaptive-margin state.
        self._margin = self.config.backup_margin
        self._clean_backups_in_a_row = 0
        self.margin_raises = 0

    # -- planning -----------------------------------------------------------

    def thresholds(self, dt_s: float) -> ThresholdPlan:
        """The (lazily computed) energy-threshold plan.

        Attached peripherals raise the plan: their re-initialisation
        energy is part of every wake-up, and their active power is
        part of the run load.
        """
        if self._plan is None:
            restore_cost = self.controller.restore_energy_j()
            run_power = self.workload.run_power_w()
            if self.peripherals is not None and len(self.peripherals) > 0:
                reinit_energy, _ = self.peripherals.reinit_cost(
                    self.workload.mean_instruction_energy_j(),
                    self.workload.mean_instruction_time_s(),
                )
                restore_cost += reinit_energy
                run_power += self.peripherals.active_power_w
            self._plan = plan_thresholds(
                backup_cost_j=self.controller.worst_case_backup_energy_j(),
                restore_cost_j=restore_cost,
                run_power_w=run_power,
                tick_s=dt_s,
                backup_margin=self._margin,
                run_reserve_ticks=self.config.run_reserve_ticks,
            )
            if self.bus is not None:
                self.bus.emit(
                    ev.THRESHOLD_RECOMPUTE,
                    backup_threshold_j=self._plan.backup_threshold_j,
                    start_threshold_j=self._plan.start_threshold_j,
                    margin=self._margin,
                )
        return self._plan

    # -- adaptive margin control -----------------------------------------

    #: Multiplicative raise after lost work; decay step after a long
    #: clean streak; hard bounds.
    _MARGIN_RAISE = 1.5
    _MARGIN_DECAY = 0.9
    _MARGIN_MAX = 16.0
    _CLEAN_STREAK = 50

    def _margin_feedback(self, lost_work: bool) -> None:
        """Closed-loop margin control (enabled via ``adaptive_margin``).

        The backup margin exists to absorb run-power estimation error
        (see the F13 ablation); instead of guessing it, raise it
        multiplicatively whenever volatile work is lost and decay it
        slowly after long clean streaks, never dropping below the
        configured value.
        """
        if not self.adaptive_margin:
            return
        if lost_work:
            new_margin = min(self._MARGIN_MAX, self._margin * self._MARGIN_RAISE)
            if new_margin != self._margin:
                if self.bus is not None:
                    self.bus.emit(
                        ev.MARGIN_RAISE, old=self._margin, new=new_margin
                    )
                self._margin = new_margin
                self.margin_raises += 1
                self._plan = None  # re-plan with the new reserve
            self._clean_backups_in_a_row = 0
            return
        self._clean_backups_in_a_row += 1
        if (
            self._clean_backups_in_a_row >= self._CLEAN_STREAK
            and self._margin > self.config.backup_margin
        ):
            new_margin = max(
                self.config.backup_margin, self._margin * self._MARGIN_DECAY
            )
            if self.bus is not None:
                self.bus.emit(ev.MARGIN_DECAY, old=self._margin, new=new_margin)
            self._margin = new_margin
            self._clean_backups_in_a_row = 0
            self._plan = None

    @property
    def finished(self) -> bool:
        """True when the workload has completed."""
        return self.workload.finished

    # -- the state machine -----------------------------------------------

    def tick(self, p_in_w: float, dt_s: float) -> TickReport:
        """Advance one tick; returns what the platform did."""
        if self.workload.finished:
            self.storage.step(p_in_w, 0.0, dt_s)
            return TickReport("done")
        plan = self.thresholds(dt_s)

        if self._state == "off":
            self.storage.step(p_in_w, 0.0, dt_s)
            self._off_ticks += 1
            self._off_elapsed_s = self._off_ticks * dt_s
            if self.storage.energy_j >= plan.start_threshold_j:
                return self._wake()
            return TickReport("off")

        # -- powered on -------------------------------------------------
        if self.storage.energy_j <= plan.backup_threshold_j:
            return self._power_down_with_backup(p_in_w, dt_s)

        fraction = 1.0
        if self.governor is not None:
            fraction = self.governor(self.storage.energy_j, plan, dt_s)
            fraction = min(1.0, max(0.0, fraction))
        usable = dt_s * fraction
        exec_budget = max(0.0, usable - self._stall_s)
        self._stall_s = max(0.0, self._stall_s - usable)

        advance = self.workload.advance(exec_budget)
        self.ledger.execute(advance.instructions)
        load_w = advance.energy_j / dt_s
        if self.peripherals is not None:
            load_w += self.peripherals.active_power_w
        step = self.storage.step(p_in_w, load_w, dt_s)
        self.consumed_j += step.delivered_j
        if step.deficit:
            # Power collapsed before a backup could run: volatile work
            # (since the last backup) is lost.
            if self.bus is not None:
                self.bus.emit(
                    ev.POWER_COLLAPSE, lost_instructions=self.ledger.volatile
                )
            self.ledger.rollback()
            self.workload.clear_volatile()
            self._margin_feedback(lost_work=True)
            self._go_off()
            return TickReport("run", advance.instructions)
        return TickReport("run", advance.instructions)

    # -- fast-forward ------------------------------------------------------

    def off_plan(self, dt_s: float) -> Optional[OffRunPlan]:
        """The dormant-charging plan while powered off.

        Charges toward the start threshold with no load, keeps the
        retention-age clock (``_off_ticks``) in sync with the consumed
        ticks, and wakes through the same :meth:`_wake` the per-tick
        path uses.  ``None`` while powered on.
        """
        if self._state != "off":
            return None

        def on_charged(ticks: int) -> None:
            self._off_ticks += ticks
            self._off_elapsed_s = self._off_ticks * dt_s

        return OffRunPlan(
            state="off",
            target_j=lambda: self.thresholds(dt_s).start_threshold_j,
            on_charged=on_charged,
            on_cross=self._wake,
        )

    def fast_forward(self, p_in_w, start, stop, dt_s):
        """Advance through analytically predictable ticks in bulk.

        Covers the two steady states the per-tick loop wastes most of
        its time in: ``"off"`` (charging toward the start threshold
        with no load) and ``"done"`` (workload finished, storage still
        integrating the trace).  Delegates to the shared
        :func:`~repro.system.fastpath.fast_forward_offruns` loop
        driving :meth:`off_plan`, so every float operation matches the
        exact path bit-for-bit.

        Args:
            p_in_w: per-tick DC input power, indexable (the simulator
                passes a plain list for speed).
            start: index of the current tick.
            stop: one past the last tick that may be consumed.
            dt_s: tick duration.

        Returns:
            A list of ``(state, ticks)`` runs covering every consumed
            tick, in order — or ``None`` when this platform state
            cannot be fast-forwarded (the simulator then falls back to
            exact ticking).
        """
        return fastpath.fast_forward_offruns(self, p_in_w, start, stop, dt_s)

    def exact_batch(self, p_in_w, start, stop, dt_s):
        """Advance through predictable powered-on ``"run"`` ticks in bulk.

        The active-path sibling of :meth:`fast_forward` (see
        :mod:`repro.system.exactkernel`): while powered on with an
        abstract workload, no governor and no peripherals, the run
        loop is a straight-line recurrence — the batched kernel
        executes it bit-for-bit and stops before the first event tick
        (backup-threshold crossing, power deficit, workload
        completion), which the scalar path then executes.

        Returns ``[("run", ticks)]`` covering the consumed ticks, or
        ``None`` when this state cannot be batched (the simulator
        falls back to exact ticking until the next state transition).
        """
        mode = exactkernel.batchable_workload(self.workload)
        if (
            self._state != "on"
            or self.workload.finished
            or self.governor is not None
            or (self.peripherals is not None and len(self.peripherals) > 0)
            or not mode
            or getattr(self.storage, "soa_params", None) is None
        ):
            return None
        if self.bus is not None:
            # Stamp the clock so a lazy threshold recompute is staged
            # with the tick the exact engine would have used.
            self.bus.set_clock(start, dt_s)
        plan = self.thresholds(dt_s)
        kernel = exactkernel.get_kernel()
        if mode == "recurrence":
            ticks, _ = kernel.storage_run(
                self, p_in_w, start, stop, dt_s,
                stop_energy_j=plan.backup_threshold_j,
            )
        else:
            # Functional (NV16) workloads: the kernel really executes
            # each tick through the block engine; the finishing tick is
            # consumed in-batch (the simulator checks finished after).
            ticks, _ = kernel.isa_storage_run(
                self, p_in_w, start, stop, dt_s,
                stop_energy_j=plan.backup_threshold_j,
            )
        return [("run", ticks)] if ticks else None

    # -- internal transitions ------------------------------------------------

    def _wake(self) -> TickReport:
        """Attempt to power up: restore (or cold-start) and go on."""
        bus = self.bus
        cold = not self.controller.has_image
        if self.controller.has_image:
            needed = self.controller.restore_energy_j()
            if bus is not None:
                bus.emit(ev.RESTORE_START, energy_j=needed)
            drawn = self.storage.draw(needed)
            self.consumed_j += drawn
            if drawn < needed:
                self.failed_restores += 1
                if bus is not None:
                    bus.emit(ev.RESTORE_FAIL, needed_j=needed, drawn_j=drawn)
                return TickReport("off")
            flips = self.controller.age(self._off_elapsed_s, self.rng)
            words, _energy, time_s = self.controller.read_image()
            if self.config.approx_registers is not None:
                # Only AC-marked registers accept relaxed values; the
                # rest are restored exactly (their cells are protected
                # by the controller's precise path in real designs).
                exact = self.workload.snapshot_words(self._last_snapshot)
                allowed = set(self.config.approx_registers)
                words = [
                    word if index in allowed else exact_word
                    for index, (word, exact_word) in enumerate(zip(words, exact))
                ]
            snapshot = self.workload.apply_snapshot_words(self._last_snapshot, words)
            self.workload.restore(snapshot)
            self._stall_s += time_s
            if bus is not None:
                bus.emit(
                    ev.RESTORE_COMMIT,
                    time_s=time_s,
                    flipped_bits=flips,
                    off_s=self._off_elapsed_s,
                )
            del flips  # already recorded in controller stats
        else:
            # Cold start: nothing to restore, begin the current unit anew.
            self.workload.restart_unit()
            self._stall_s += self.config.technology.wakeup_time_s
        if self.peripherals is not None and len(self.peripherals) > 0:
            # Peripherals lost their configuration during the outage.
            energy, time_s = self.peripherals.reinit_cost(
                self.workload.mean_instruction_energy_j(),
                self.workload.mean_instruction_time_s(),
            )
            drawn = self.storage.draw(energy)
            self.consumed_j += drawn
            self._stall_s += time_s
            self.peripherals.record_reinit()
        self._state = "on"
        self._off_ticks = 0
        self._off_elapsed_s = 0.0
        if bus is not None:
            bus.emit(ev.WAKE, cold=cold, stall_s=self._stall_s)
        return TickReport("restore")

    def _power_down_with_backup(self, p_in_w: float, dt_s: float) -> TickReport:
        """Back up state, then power down for the rest of the tick."""
        bus = self.bus
        snapshot = self.workload.snapshot()
        words = self.workload.snapshot_words(snapshot)
        plan = self.controller.plan_backup(words)
        if bus is not None:
            bus.emit(
                ev.BACKUP_START,
                energy_j=plan.energy_j,
                bits=plan.bits_written,
                time_s=plan.time_s,
            )
        drawn = self.storage.draw(plan.energy_j)
        self.consumed_j += drawn
        if drawn < plan.energy_j:
            # Backup ran out of energy mid-way; the double-buffered
            # previous image survives, but volatile work is lost.
            self.failed_backups += 1
            if bus is not None:
                bus.emit(
                    ev.BACKUP_FAIL,
                    needed_j=plan.energy_j,
                    drawn_j=drawn,
                    lost_instructions=self.ledger.volatile,
                )
            self.ledger.rollback()
            self._margin_feedback(lost_work=True)
        else:
            self.controller.commit_backup(words, plan)
            self.ledger.commit()
            self._last_snapshot = snapshot
            if bus is not None:
                bus.emit(
                    ev.BACKUP_COMMIT,
                    energy_j=plan.energy_j,
                    bits=plan.bits_written,
                    time_s=plan.time_s,
                )
            self._margin_feedback(lost_work=False)
        self.workload.clear_volatile()
        self._go_off()
        self.storage.step(p_in_w, 0.0, dt_s)
        return TickReport("backup")

    def _go_off(self) -> None:
        self._state = "off"
        self._off_ticks = 0
        self._off_elapsed_s = 0.0
        self._stall_s = 0.0

    # -- reporting ----------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for :class:`~repro.system.result.SimulationResult`."""
        return {
            "forward_progress": self.ledger.persistent,
            "total_executed": self.ledger.total_executed,
            "lost_instructions": self.ledger.lost,
            "units_completed": self.workload.units_completed,
            "backups": self.controller.backup_count,
            "restores": self.controller.restore_count,
            "failed_backups": self.failed_backups,
            "failed_restores": self.failed_restores,
            "rollbacks": self.ledger.rollbacks,
            "consumed_j": self.consumed_j,
            "backup_energy_j": self.controller.total_backup_energy_j,
            "restore_energy_j": self.controller.total_restore_energy_j,
            "bits_written": self.controller.total_bits_written,
            "flipped_bits": self.controller.total_flipped_bits,
            "ecc_corrected": self.controller.ecc_corrected,
            "ecc_detected": self.controller.ecc_detected,
            "volatile_at_end": self.ledger.volatile,
            "peripheral_reinits": (
                self.peripherals.reinits if self.peripherals is not None else 0
            ),
            "margin_raises": self.margin_raises,
            "final_margin": self._margin,
        }
