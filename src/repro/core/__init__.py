"""The nonvolatile-processor core: the paper's primary subject.

An NVP mirrors its architectural state (register file, PC, pipeline
flip-flops) into distributed nonvolatile elements so that execution
survives power outages with microsecond-scale backup and wake-up.
This package provides:

* :class:`~repro.core.config.NVPConfig` — the architecture knob set,
* backup strategies (full / compare-and-write / word-incremental) and
  the :class:`~repro.core.backup.BackupController`,
* the restore / wake-up model (:mod:`repro.core.restore`),
* the forward-progress ledger (:mod:`repro.core.progress`), and
* :class:`~repro.core.nvp.NVPPlatform`, the tick-level platform model
  driven by :class:`~repro.system.simulator.SystemSimulator`.
"""

from repro.core.config import NVPConfig
from repro.core.progress import ForwardProgressLedger
from repro.core.backup import (
    BackupController,
    BackupResult,
    BackupStrategy,
    CompareAndWriteBackup,
    FullBackup,
    IncrementalWordBackup,
    strategy_by_name,
)
from repro.core.restore import RestoreResult, WakeupModel
from repro.core.nvp import NVPPlatform

__all__ = [
    "BackupController",
    "BackupResult",
    "BackupStrategy",
    "CompareAndWriteBackup",
    "ForwardProgressLedger",
    "FullBackup",
    "IncrementalWordBackup",
    "NVPConfig",
    "NVPPlatform",
    "RestoreResult",
    "WakeupModel",
    "strategy_by_name",
]
