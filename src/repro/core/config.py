"""NVP architecture configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.nvm.retention import RetentionPolicy
from repro.nvm.technology import FERAM, NVMTechnology

#: Architectural state of the NV16 core that a hardware backup saves:
#: 8 × 16-bit registers + 16-bit PC + status, plus the pipeline
#: flip-flops of a simple 5-stage implementation (~200 bits).
DEFAULT_STATE_BITS = 8 * 16 + 16 + 8 + 200


@dataclass
class NVPConfig:
    """Knobs of the nonvolatile processor.

    Attributes:
        technology: NVM technology holding the mirrored state.
        clock_hz: core clock frequency.
        state_bits: architectural state bits saved per backup.
        backup_parallelism: bits written per NVM write-latency quantum
            (distributed nonvolatile flip-flops write massively in
            parallel).
        backup_strategy: ``"full"``, ``"compare_and_write"`` or
            ``"incremental"``.
        retention_policy: optional retention-shaping policy for
            approximate backup; ``None`` means precise backup at the
            technology's nominal retention.
        backup_margin: multiplier on the backup energy held in reserve
            before a backup is triggered (>1 guards against the power
            collapsing mid-backup).
        run_reserve_ticks: extra run-time energy (in simulator ticks)
            required above the backup reserve before waking up, to
            avoid thrashing between restore and backup.
        controller_overhead_j: fixed controller/sequencing energy per
            backup or restore operation.
        sram_backup_words: volatile working-set words the backup must
            also persist.  Platforms whose data memory is SRAM (rather
            than in-place NVM) save a working-set window on every
            backup — this is what makes backup energy a 20-30% share
            of harvested income on real prototypes.  The words are
            subject to the retention-shaping policy.
        ecc: protect the (relaxable) data image with a SECDED Hamming
            code — 22 stored bits per 16-bit word.  Costs 37.5% extra
            write energy on the data image but corrects any single
            relaxed cell per word on restore, the standard pairing
            with retention-relaxed backup.
        approx_registers: which data registers may be restored with
            relaxation-induced bit errors (the hardware "AC bit" per
            register).  ``None`` = all of them; ``()`` = none (register
            values are always restored exactly, while the rest of the
            relaxed image still saves its energy).  Real designs mark
            only data-carrying registers — corrupting a pointer or a
            loop counter breaks control flow rather than degrading
            output quality.
    """

    technology: NVMTechnology = FERAM
    clock_hz: float = 1e6
    state_bits: int = DEFAULT_STATE_BITS
    backup_parallelism: int = 64
    backup_strategy: str = "full"
    retention_policy: Optional[RetentionPolicy] = None
    backup_margin: float = 1.5
    run_reserve_ticks: float = 2.0
    controller_overhead_j: float = 20e-12
    sram_backup_words: int = 0
    ecc: bool = False
    approx_registers: Optional[tuple] = None
    label: str = field(default="nvp")

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")
        if self.state_bits <= 0:
            raise ValueError("state_bits must be positive")
        if self.backup_parallelism <= 0:
            raise ValueError("backup_parallelism must be positive")
        if self.backup_strategy not in ("full", "compare_and_write", "incremental"):
            raise ValueError(
                f"unknown backup strategy {self.backup_strategy!r}"
            )
        if self.backup_margin < 1.0:
            raise ValueError("backup margin must be >= 1.0")
        if self.run_reserve_ticks < 0:
            raise ValueError("run reserve cannot be negative")
        if self.controller_overhead_j < 0:
            raise ValueError("controller overhead cannot be negative")
        if self.sram_backup_words < 0:
            raise ValueError("sram_backup_words cannot be negative")
        if self.approx_registers is not None:
            for index in self.approx_registers:
                if not 0 <= index <= 7:
                    raise ValueError(
                        f"approx register index {index} outside 0..7"
                    )
        if self.technology.volatile:
            raise ValueError("an NVP cannot use a volatile state technology")
        if self.retention_policy is not None and not (
            self.technology.supports_retention_relaxation
        ):
            profile = self.retention_policy.retention_profile(16)
            if any(t < self.technology.retention_s for t in profile):
                raise ValueError(
                    f"{self.technology.name} does not support retention relaxation"
                )

    @property
    def state_words(self) -> int:
        """State size in 16-bit words (rounded up)."""
        return -(-self.state_bits // 16)
