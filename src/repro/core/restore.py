"""Restore / wake-up modelling.

Wake-up time — the delay from power-good to the first executed
instruction — is one of the headline figures NVP prototypes compete
on (3 µs for the ferroelectric NVP, ~1.5 µs for the ReRAM NVP with its
6× restore-time reduction, hundreds of µs for flash-based MCUs).
Under frequent outages the wake-up and backup times directly erode the
achievable duty cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.nvm.technology import NVMTechnology


@dataclass(frozen=True)
class RestoreResult:
    """Outcome of a restore operation.

    Attributes:
        data_words: the restored data-register words (possibly
            corrupted by retention relaxation).
        energy_j: energy spent restoring.
        time_s: wake-up plus read-back time.
        flipped_bits: data bits that relaxed during the outage (for
            reporting; already applied to ``data_words``).
    """

    data_words: list
    energy_j: float
    time_s: float
    flipped_bits: int


@dataclass(frozen=True)
class WakeupModel:
    """Analytic duty-cycle model of backup/restore overheads.

    Attributes:
        technology: the NVM technology holding the state.
        state_bits: architectural state size.
        parallelism: bits per write/read quantum.
    """

    technology: NVMTechnology
    state_bits: int
    parallelism: int = 64

    def wakeup_time_s(self) -> float:
        """Time from power-good to execution resuming."""
        return self.technology.restore_time_s(self.state_bits, self.parallelism)

    def backup_time_s(self) -> float:
        """Time to save the full state."""
        return self.technology.backup_time_s(self.state_bits, self.parallelism)

    def overhead_per_cycle_s(self) -> float:
        """Time lost to one backup + one restore (one outage cycle)."""
        return self.wakeup_time_s() + self.backup_time_s()

    def effective_duty_cycle(
        self, outage_rate_hz: float, supply_duty: float = 1.0
    ) -> float:
        """Fraction of powered time actually spent executing.

        Args:
            outage_rate_hz: power-emergency onset rate.
            supply_duty: fraction of time the supply is above threshold.

        Each outage costs one backup (before the outage) and one
        restore (after), so the executable fraction is
        ``supply_duty - rate * (t_backup + t_restore)``, floored at 0.
        """
        if outage_rate_hz < 0:
            raise ValueError("outage rate cannot be negative")
        if not 0 <= supply_duty <= 1:
            raise ValueError("supply duty must be in [0, 1]")
        lost = outage_rate_hz * self.overhead_per_cycle_s()
        return max(0.0, supply_duty - lost)


def wakeup_comparison(
    technologies: Sequence[NVMTechnology],
    state_bits: int,
    outage_rate_hz: float,
    supply_duty: float = 1.0,
    parallelism: int = 64,
) -> Dict[str, Dict[str, float]]:
    """Tabulate wake-up overheads and duty cycles per technology.

    Returns a mapping ``name -> {wakeup_us, backup_us, duty_cycle}``.
    """
    table: Dict[str, Dict[str, float]] = {}
    for tech in technologies:
        model = WakeupModel(tech, state_bits, parallelism)
        table[tech.name] = {
            "wakeup_us": model.wakeup_time_s() * 1e6,
            "backup_us": model.backup_time_s() * 1e6,
            "duty_cycle": model.effective_duty_cycle(outage_rate_hz, supply_duty),
        }
    return table
