"""Forward-progress accounting.

*Forward progress* — the number of instructions whose effects have
persistently committed — is the execution metric NVP papers compare
platforms by.  Instructions executed since the last successful backup
(or checkpoint) are *volatile*: they become persistent when a backup
succeeds, and are lost (rolled back) if power fails first.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ForwardProgressLedger:
    """Tracks persistent vs volatile instruction progress.

    Attributes:
        persistent: instructions committed persistently.
        volatile: instructions executed since the last commit point.
        lost: instructions rolled back across all power failures.
        commits: successful backup/checkpoint commits.
        rollbacks: power failures that discarded volatile work.
    """

    persistent: int = 0
    volatile: int = 0
    lost: int = 0
    commits: int = 0
    rollbacks: int = 0

    def execute(self, instructions: int) -> None:
        """Record newly executed (still volatile) instructions."""
        if instructions < 0:
            raise ValueError("instruction count cannot be negative")
        self.volatile += instructions

    def commit(self) -> int:
        """A backup/checkpoint succeeded; volatile work becomes persistent.

        Returns:
            The number of instructions committed by this call.
        """
        committed = self.volatile
        self.persistent += committed
        self.volatile = 0
        self.commits += 1
        return committed

    def rollback(self) -> int:
        """Power failed before a commit; volatile work is lost.

        Returns:
            The number of instructions lost by this call.
        """
        dropped = self.volatile
        self.lost += dropped
        self.volatile = 0
        self.rollbacks += 1
        return dropped

    @property
    def total_executed(self) -> int:
        """All instructions ever executed (persistent + volatile + lost)."""
        return self.persistent + self.volatile + self.lost

    @property
    def efficiency(self) -> float:
        """Fraction of executed instructions that persisted (0 if none)."""
        executed = self.total_executed
        if executed == 0:
            return 0.0
        return self.persistent / executed
