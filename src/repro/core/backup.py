"""Backup strategies and the hardware backup controller.

A hardware-managed NVP backup copies the core's architectural state
into nonvolatile storage in a few microseconds.  Three strategies from
the literature are modelled, differing in *how much* is written:

* **full** — every state bit, every backup (simplest controller);
* **compare_and_write** — each nonvolatile flip-flop compares its
  volatile value against the stored one and skips identical bits
  (bit-level write masking, as in self-write-terminated designs);
* **incremental** — word-granularity dirty tracking: only words that
  changed since the previous backup are written.

Control state (PC, pipeline flip-flops) is always stored at nominal
retention; only the data-register words are subject to the optional
retention-shaping (approximate backup) policy.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import NVPConfig
from repro.nvm import ecc as ecc_code
from repro.nvm.array import NVMArray
from repro.nvm.retention import UniformPolicy


@dataclass(frozen=True)
class BackupResult:
    """Cost and size of one backup operation.

    Attributes:
        bits_written: nonvolatile bits actually programmed.
        energy_j: total backup energy (writes + controller overhead).
        time_s: backup duration.
    """

    bits_written: int
    energy_j: float
    time_s: float


class BackupStrategy(abc.ABC):
    """Decides which bits must be written for a backup."""

    name: str = "base"

    @abc.abstractmethod
    def bits_to_write(
        self,
        words_now: List[int],
        words_prev: Optional[List[int]],
        word_bits: int = 16,
    ) -> Tuple[int, List[int]]:
        """Return ``(bits_written, dirty_word_indices)``.

        ``words_prev`` is the previously backed-up image (``None`` for
        the first backup, which always writes everything).
        """


class FullBackup(BackupStrategy):
    """Every bit is rewritten on every backup."""

    name = "full"

    def bits_to_write(self, words_now, words_prev, word_bits=16):
        del words_prev
        return len(words_now) * word_bits, list(range(len(words_now)))


class CompareAndWriteBackup(BackupStrategy):
    """Bit-level write masking: only differing bits are programmed."""

    name = "compare_and_write"

    def bits_to_write(self, words_now, words_prev, word_bits=16):
        if words_prev is None or len(words_prev) != len(words_now):
            return len(words_now) * word_bits, list(range(len(words_now)))
        bits = 0
        dirty = []
        for index, (now, prev) in enumerate(zip(words_now, words_prev)):
            diff = (now ^ prev) & ((1 << word_bits) - 1)
            if diff:
                bits += bin(diff).count("1")
                dirty.append(index)
        return bits, dirty


class IncrementalWordBackup(BackupStrategy):
    """Word-granularity dirty tracking: changed words are rewritten whole."""

    name = "incremental"

    def bits_to_write(self, words_now, words_prev, word_bits=16):
        if words_prev is None or len(words_prev) != len(words_now):
            return len(words_now) * word_bits, list(range(len(words_now)))
        dirty = [
            index
            for index, (now, prev) in enumerate(zip(words_now, words_prev))
            if now != prev
        ]
        return len(dirty) * word_bits, dirty


_STRATEGIES = {
    cls.name: cls for cls in (FullBackup, CompareAndWriteBackup, IncrementalWordBackup)
}


def strategy_by_name(name: str) -> BackupStrategy:
    """Instantiate a backup strategy by name.

    Raises:
        KeyError: for unknown names.
    """
    if name not in _STRATEGIES:
        raise KeyError(
            f"unknown backup strategy {name!r}; known: {sorted(_STRATEGIES)}"
        )
    return _STRATEGIES[name]()


class BackupController:
    """The microarchitectural backup/restore engine.

    Owns two nonvolatile arrays: a *control* array (PC + pipeline,
    always precise) and a *data* array (register words, optionally
    retention-shaped), plus the strategy that decides write volumes.

    Args:
        config: the NVP configuration.
        data_words: number of data-register words per backup image.
    """

    def __init__(self, config: NVPConfig, data_words: int = 8) -> None:
        if data_words < 0:
            raise ValueError("data_words cannot be negative")
        self.config = config
        self.data_words = data_words
        self.sram_words = config.sram_backup_words
        self.control_words = max(1, config.state_words - data_words)
        tech = config.technology
        data_policy = (
            config.retention_policy
            if config.retention_policy is not None
            else UniformPolicy(tech.retention_s)
        )
        self.ecc = config.ecc
        self._data_word_bits = ecc_code.CODEWORD_BITS if config.ecc else 16
        approx_words = data_words + self.sram_words
        self._data_array = (
            NVMArray(
                max(1, approx_words),
                tech,
                policy=data_policy,
                word_bits=self._data_word_bits,
            )
            if approx_words > 0
            else None
        )
        self._control_array = NVMArray(
            self.control_words, tech, policy=UniformPolicy(tech.retention_s)
        )
        self.strategy = strategy_by_name(config.backup_strategy)
        self._prev_data_words: Optional[List[int]] = None
        self._has_image = False
        # Accounting.
        self.backup_count = 0
        self.restore_count = 0
        self.total_backup_energy_j = 0.0
        self.total_restore_energy_j = 0.0
        self.total_bits_written = 0
        self.total_flipped_bits = 0
        self.ecc_corrected = 0
        self.ecc_detected = 0

    @property
    def has_image(self) -> bool:
        """True once at least one backup has completed."""
        return self._has_image

    # -- cost estimation (used for thresholds) ---------------------------

    @property
    def total_backup_bits(self) -> int:
        """Full-image size: core state plus the SRAM working set
        (ECC-expanded when enabled)."""
        data_bits = self._data_word_bits * (self.data_words + self.sram_words)
        core_data_bits = 16 * self.data_words
        return self.config.state_bits - core_data_bits + data_bits

    def worst_case_backup_energy_j(self) -> float:
        """Energy of a full-image backup (the reserve the NVP must hold)."""
        control = self._control_array.word_write_energy_j * self.control_words
        data = (
            self._data_array.word_write_energy_j * (self.data_words + self.sram_words)
            if self._data_array is not None
            else 0.0
        )
        return control + data + self.config.controller_overhead_j

    def worst_case_backup_time_s(self) -> float:
        """Duration of a full-image backup."""
        return self.config.technology.backup_time_s(
            self.total_backup_bits, self.config.backup_parallelism
        )

    def restore_energy_j(self) -> float:
        """Energy of a full restore (read-back + controller overhead)."""
        return (
            self.config.technology.restore_energy_j(self.total_backup_bits)
            + self.config.controller_overhead_j
        )

    def restore_time_s(self) -> float:
        """Wake-up plus read-back time of a restore."""
        return self.config.technology.restore_time_s(
            self.total_backup_bits, self.config.backup_parallelism
        )

    # -- operations ---------------------------------------------------------

    def plan_backup(self, data_words: List[int]) -> BackupResult:
        """Cost a backup of this image *without* performing it.

        The platform first draws the planned energy from storage; only
        if that succeeds does it call :meth:`commit_backup` (real NVPs
        double-buffer the image so a failed backup never corrupts the
        previous one).

        Args:
            data_words: register words of the current state (length
                must equal ``data_words`` from construction).
        """
        if len(data_words) != self.data_words:
            raise ValueError(
                f"expected {self.data_words} data words, got {len(data_words)}"
            )
        # Control state (PC, pipeline) changes every cycle: always a
        # full write of the control words.  The SRAM working set churns
        # every run period, so it is also written in full.
        control_bits = self.control_words * 16
        sram_bits = self.sram_words * self._data_word_bits
        data_bits, dirty = self.strategy.bits_to_write(
            data_words, self._prev_data_words
        )
        if self.ecc:
            # Any change to a word rewrites its whole codeword (the
            # parity bits depend on every data bit).
            data_bits = len(dirty) * self._data_word_bits
        total_bits = control_bits + data_bits + sram_bits
        energy = (
            self._control_array.word_write_energy_j * self.control_words
            + (
                self._data_array.word_write_energy_j
                / self._data_word_bits
                * (data_bits + sram_bits)
                if self._data_array is not None
                else 0.0
            )
            + self.config.controller_overhead_j
        )
        time_s = self.config.technology.backup_time_s(
            total_bits, self.config.backup_parallelism
        )
        return BackupResult(bits_written=total_bits, energy_j=energy, time_s=time_s)

    def commit_backup(self, data_words: List[int], plan: BackupResult) -> None:
        """Perform the writes for a planned (and energy-funded) backup."""
        if len(data_words) != self.data_words:
            raise ValueError(
                f"expected {self.data_words} data words, got {len(data_words)}"
            )
        for index in range(self.control_words):
            self._control_array.write(index, 0)
        _, dirty = self.strategy.bits_to_write(data_words, self._prev_data_words)
        if self._data_array is not None:
            for index in dirty:
                stored = (
                    ecc_code.encode(data_words[index] & 0xFFFF)
                    if self.ecc
                    else data_words[index]
                )
                self._data_array.write(index, stored)
            # Undirtied words must still be *valid* in the array on the
            # first backup; the strategy guarantees a full first write.
            # The SRAM working-set words are modelled content-free.
            sram_fill = ecc_code.encode(0) if self.ecc else 0
            for offset in range(self.sram_words):
                self._data_array.write(self.data_words + offset, sram_fill)
        self._prev_data_words = list(data_words)
        self._has_image = True
        self.backup_count += 1
        self.total_backup_energy_j += plan.energy_j
        self.total_bits_written += plan.bits_written

    def backup(self, data_words: List[int]) -> BackupResult:
        """Plan and immediately commit a backup (convenience for tests)."""
        plan = self.plan_backup(data_words)
        self.commit_backup(data_words, plan)
        return plan

    def age(self, outage_s: float, rng: np.random.Generator) -> int:
        """Relax the stored image through a power outage.

        Returns the number of data bits that flipped.
        """
        if not self._has_image or self._data_array is None:
            return 0
        flips = self._data_array.power_outage(outage_s, rng)
        self.total_flipped_bits += flips
        return flips

    def read_image(self) -> Tuple[List[int], float, float]:
        """Read the (possibly corrupted) data image back.

        Returns:
            ``(data_words, energy_j, time_s)``.

        Raises:
            RuntimeError: if no backup image exists yet.
        """
        if not self._has_image:
            raise RuntimeError("no backup image to restore from")
        if self._data_array is not None:
            raw = self._data_array.read_block(0, self.data_words)
            if self.ecc:
                words = []
                for stored in raw:
                    result = ecc_code.decode(stored)
                    if result.status is ecc_code.DecodeStatus.CORRECTED:
                        self.ecc_corrected += 1
                    elif result.status is ecc_code.DecodeStatus.DETECTED:
                        self.ecc_detected += 1
                    words.append(result.value)
            else:
                words = raw
        else:
            words = []
        energy = self.restore_energy_j()
        time_s = self.restore_time_s()
        self.restore_count += 1
        self.total_restore_energy_j += energy
        return words, energy, time_s
