"""Folding sweep outcomes into the benchmark results trajectory.

The ``bench_*`` harness writes one JSON per experiment under
``benchmarks/results/`` — ``{experiment, description, tables,
manifest}``.  This module renders a :class:`~repro.exp.runner.SweepOutcome`
into exactly that shape (plus a ``sweep`` accounting block), so engine
runs land in the same trajectory the benchmarks and CI artifacts
already use, stamped with a PR-1 run manifest.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exp.runner import SweepOutcome
from repro.exp.spec import ExperimentSpec
from repro.obs.manifest import RunManifest

#: Default per-point columns: (header, result-dict key).
DEFAULT_FIELDS: Tuple[Tuple[str, str], ...] = (
    ("FP", "forward_progress"),
    ("backups", "backups"),
    ("rollbacks", "rollbacks"),
    ("on-time", "on_time_fraction"),
)


def outcome_table(
    outcome: SweepOutcome,
    fields: Sequence[Tuple[str, str]] = DEFAULT_FIELDS,
) -> Tuple[List[str], List[List]]:
    """``(headers, rows)`` for the per-point summary table.

    Failed points render their error instead of metric values, so a
    partially-failed sweep still produces a complete table.
    """
    headers = ["point", "status"] + [header for header, _ in fields]
    rows: List[List] = []
    for record in outcome.records:
        row: List = [record.label, record.status]
        if record.result is None:
            first_line = (record.error or "").strip().splitlines()
            row.append(first_line[-1] if first_line else "?")
            row.extend("" for _ in fields[1:])
        else:
            row.extend(record.result.get(key) for _, key in fields)
        rows.append(row)
    return headers, rows


def outcome_payload(
    spec: ExperimentSpec,
    outcome: SweepOutcome,
    command: str = "sweep",
    fields: Sequence[Tuple[str, str]] = DEFAULT_FIELDS,
) -> Dict:
    """The benchmark-results JSON payload for one sweep."""
    headers, rows = outcome_table(outcome, fields)
    manifest = RunManifest.collect(
        command=f"{command}:{spec.name}",
        config={
            "mode": spec.mode,
            "base": dict(spec.base),
            "axes": {axis: list(v) for axis, v in spec.axes.items()},
        },
    )
    manifest.duration_s = outcome.wall_s
    return {
        "experiment": spec.name,
        "description": spec.description,
        "tables": [
            {"title": "sweep points", "columns": headers, "rows": rows}
        ],
        "sweep": {
            "points": len(outcome.records),
            "executed": outcome.executed,
            "cached": outcome.cached,
            "failed": outcome.failed,
            "interrupted": outcome.interrupted,
            "wall_s": outcome.wall_s,
            "resources": outcome.resource_usage(),
            "runs": [
                {
                    "index": record.index,
                    "key": record.key,
                    "status": record.status,
                    "label": record.label,
                    "wall_s": record.wall_s,
                    "cpu_s": record.cpu_s,
                    "peak_rss_kb": record.peak_rss_kb,
                    "pid": record.pid,
                    "error": record.error,
                }
                for record in outcome.records
            ],
        },
        "manifest": manifest.to_dict(),
    }


def write_results(
    spec: ExperimentSpec,
    outcome: SweepOutcome,
    results_dir: str,
    command: str = "sweep",
    fields: Sequence[Tuple[str, str]] = DEFAULT_FIELDS,
) -> str:
    """Write ``<results_dir>/<spec.name>.json``; returns the path."""
    payload = outcome_payload(spec, outcome, command=command, fields=fields)
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{spec.name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def render_outcome(
    outcome: SweepOutcome,
    fields: Sequence[Tuple[str, str]] = DEFAULT_FIELDS,
    title: Optional[str] = None,
) -> str:
    """Human-readable table + accounting line (for the CLI)."""
    from repro.analysis.report import format_table

    headers, rows = outcome_table(outcome, fields)
    lines = []
    if title:
        lines.append(title)
    lines.append(format_table(headers, rows))
    lines.append("")
    lines.append(f"sweep: {outcome.summary()}")
    return "\n".join(lines)
