"""Parallel, cache-aware sweep execution.

:class:`SweepRunner` takes the resolved run configs an
:class:`~repro.exp.spec.ExperimentSpec` expands to and executes them
with a ``ProcessPoolExecutor`` (``jobs`` workers), short-circuiting
every config whose hash is already in the
:class:`~repro.exp.cache.ResultCache`.  Each run is isolated: a config
that raises (or exceeds the per-run timeout) is recorded as a failed
:class:`RunRecord` and the sweep continues.  Results come back in
sweep order regardless of completion order.

The module-level :func:`execute_run` is the worker entry point — it
materialises trace, workload and platform from a plain config dict,
runs the simulator, and returns the result as a dict, so the only
thing crossing the process boundary is JSON-able data.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exp.cache import ResultCache
from repro.exp.spec import config_hash, resolve_config
from repro.obs import events as ev
from repro.obs.events import EventBus
from repro.system.result import SimulationResult

#: Record statuses.
STATUS_OK = "ok"
STATUS_CACHED = "cached"
STATUS_FAILED = "failed"
STATUS_INTERRUPTED = "interrupted"


class SweepInterrupted(KeyboardInterrupt):
    """Ctrl-C landed mid-sweep; carries the partial outcome.

    Subclasses :class:`KeyboardInterrupt` so callers that only handle
    the stock interrupt keep working; callers that want the partial
    bookkeeping (the CLI's ledger record, exit code 130) catch this
    and read :attr:`outcome`.
    """

    def __init__(self, outcome: "SweepOutcome") -> None:
        super().__init__("sweep interrupted")
        self.outcome = outcome


# -- config materialisation (worker side) ---------------------------------


def build_trace(config: Dict):
    """Synthesise the power trace a resolved config describes."""
    from repro.harvest.sources import (
        SOURCE_GENERATORS,
        constant_trace,
        hybrid_trace,
        standard_profiles,
    )

    source = config["source"]
    duration = config["duration_s"]
    seed = config["seed"]
    if source == "profile":
        profiles = standard_profiles(
            duration_s=duration, seed=seed, count=config["profile_count"]
        )
        index = config["profile_index"]
        if not 0 <= index < len(profiles):
            raise ValueError(
                f"profile_index {index} outside 0..{len(profiles) - 1}"
            )
        return profiles[index]
    if source == "constant":
        mean_uw = config["mean_uw"] if config["mean_uw"] is not None else 20.0
        return constant_trace(mean_uw * 1e-6, duration)
    if source == "hybrid":
        trace = hybrid_trace(duration, seed=seed)
    else:
        trace = SOURCE_GENERATORS[source](duration, seed=seed)
    if config["mean_uw"] is not None:
        trace = trace.scaled_to_mean(config["mean_uw"] * 1e-6)
    return trace


def build_workload(config: Dict):
    """The workload a resolved config describes."""
    from repro.workloads.base import AbstractWorkload
    from repro.workloads.suite import build_kernel, make_functional_workload

    if config["kernel"]:
        build = build_kernel(config["kernel"])
        return make_functional_workload(build, frames=config["frames"])
    return AbstractWorkload()


def _build_nvp_config(overrides: Dict):
    """NVPConfig from the JSON-able ``nvp`` sub-config."""
    from repro.core.config import NVPConfig
    from repro.nvm.retention import (
        LinearPolicy,
        LogPolicy,
        ParabolaPolicy,
        UniformPolicy,
    )
    from repro.nvm.technology import technology_by_name

    kwargs = dict(overrides)
    if isinstance(kwargs.get("technology"), str):
        kwargs["technology"] = technology_by_name(kwargs["technology"])
    policy = kwargs.get("retention_policy")
    if isinstance(policy, dict):
        spec = dict(policy)
        kind = spec.pop("kind", None)
        classes = {
            "linear": LinearPolicy,
            "log": LogPolicy,
            "parabola": ParabolaPolicy,
            "uniform": UniformPolicy,
        }
        if kind not in classes:
            raise ValueError(
                f"unknown retention policy kind {kind!r}; "
                f"known: {sorted(classes)}"
            )
        kwargs["retention_policy"] = classes[kind](**spec)
    if "approx_registers" in kwargs and kwargs["approx_registers"] is not None:
        kwargs["approx_registers"] = tuple(kwargs["approx_registers"])
    return NVPConfig(**kwargs)


def build_platform(config: Dict, workload):
    """The platform preset a resolved config describes."""
    from repro.system.presets import (
        CHECKPOINT_CAPACITANCE_F,
        NVP_CAPACITANCE_F,
        SUPERCAP_CAPACITANCE_F,
        build_checkpoint,
        build_nvp,
        build_oracle,
        build_wait_compute,
    )

    name = config["platform"]
    capacitance = config["capacitance_f"]
    if name == "nvp":
        return build_nvp(
            workload,
            _build_nvp_config(config["nvp"]) if config["nvp"] else None,
            capacitance_f=(
                capacitance if capacitance is not None else NVP_CAPACITANCE_F
            ),
            seed=config["platform_seed"],
        )
    if name == "wait":
        margin = config["energy_margin"]
        return build_wait_compute(
            workload,
            capacitance_f=(
                capacitance
                if capacitance is not None
                else SUPERCAP_CAPACITANCE_F
            ),
            **({"energy_margin": margin} if margin is not None else {}),
        )
    if name == "checkpoint":
        return build_checkpoint(
            workload,
            capacitance_f=(
                capacitance
                if capacitance is not None
                else CHECKPOINT_CAPACITANCE_F
            ),
        )
    return build_oracle(workload)


def execute_run(config: Dict) -> Dict:
    """Worker entry point: run one resolved config to completion.

    Returns ``{"result": <SimulationResult dict>, "wall_s": float,
    "resources": {...}, "spans": [...], "pid": int}``.  The spans are
    plain dicts with absolute Unix timestamps — the only tracer form
    that can cross the process boundary — which the runner merges into
    its :class:`~repro.obs.spans.SpanTracer` under a ``worker-<pid>``
    thread.  ``resources`` is the run's ``getrusage`` delta (CPU
    seconds) plus the worker's lifetime peak RSS (see
    :mod:`repro.obs.resources`), shipped through the same
    result-collection path.  Exceptions propagate to the caller (the
    runner records them).
    """
    import os

    from repro.obs.resources import sample_resources, usage_between
    from repro.system.presets import standard_rectifier
    from repro.system.simulator import SystemSimulator

    label = config.get("label") or "?"
    usage_before = sample_resources()
    started = time.perf_counter()
    build_began = time.time()
    trace = build_trace(config)
    workload = build_workload(config)
    platform = build_platform(config, workload)
    sim_began = time.time()
    result = SystemSimulator(
        trace,
        platform,
        rectifier=standard_rectifier() if config["rectifier"] else None,
        stop_when_finished=config["stop_when_finished"],
    ).run()
    sim_ended = time.time()
    return {
        "result": result.to_dict(),
        "wall_s": time.perf_counter() - started,
        "resources": usage_between(usage_before, sample_resources()),
        "pid": os.getpid(),
        "spans": [
            {
                "name": "build",
                "start_s": build_began,
                "end_s": sim_began,
                "args": {"label": label},
            },
            {
                "name": "simulate",
                "start_s": sim_began,
                "end_s": sim_ended,
                "args": {"label": label, "ticks": len(trace)},
            },
        ],
    }


# -- records --------------------------------------------------------------


@dataclass
class RunRecord:
    """Outcome of one sweep point.

    Attributes:
        index: position in sweep order.
        config: the fully-resolved run config.
        key: content hash of ``config`` (the cache key).
        status: ``"ok"``, ``"cached"``, ``"failed"`` or
            ``"interrupted"``.
        result: the simulation result dict (``None`` when failed).
        error: failure description (``None`` unless failed).
        wall_s: wall-clock seconds the simulation took (the *original*
            run's time for cache hits).
        cpu_s: CPU seconds this invocation spent on the run (0 for
            cache hits — recalling a result costs no simulation CPU).
        peak_rss_kb: executing worker's lifetime peak RSS at run
            completion, KB (0 for cache hits).
        pid: executing worker process id (``None`` for cache hits and
            failures that never reached a worker).
    """

    index: int
    config: Dict
    key: str
    status: str = STATUS_FAILED
    result: Optional[Dict] = None
    error: Optional[str] = None
    wall_s: float = 0.0
    cpu_s: float = 0.0
    peak_rss_kb: float = 0.0
    pid: Optional[int] = None

    @property
    def ok(self) -> bool:
        """True unless the run failed."""
        return self.status in (STATUS_OK, STATUS_CACHED)

    @property
    def label(self) -> str:
        """Display label: the config label or a short hash."""
        return self.config.get("label") or self.key[:12]

    def simulation_result(self) -> Optional[SimulationResult]:
        """The result re-hydrated as a :class:`SimulationResult`."""
        if self.result is None:
            return None
        return SimulationResult.from_dict(self.result)


@dataclass
class SweepOutcome:
    """Ordered records plus sweep-level accounting."""

    records: List[RunRecord] = field(default_factory=list)
    executed: int = 0
    cached: int = 0
    failed: int = 0
    interrupted: int = 0
    wall_s: float = 0.0

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def simulation_results(self) -> List[Optional[SimulationResult]]:
        """Re-hydrated results in sweep order (``None`` for failures)."""
        return [record.simulation_result() for record in self.records]

    def raise_on_failure(self) -> "SweepOutcome":
        """Raise ``RuntimeError`` if any point failed; returns self."""
        failures = [r for r in self.records if not r.ok]
        if failures:
            lines = "; ".join(
                f"{r.label}: {r.error}" for r in failures[:5]
            )
            raise RuntimeError(
                f"{len(failures)} of {len(self.records)} sweep points "
                f"failed ({lines})"
            )
        return self

    def resource_usage(self) -> Dict:
        """Aggregated worker resource usage (see
        :func:`repro.obs.resources.aggregate_usage`)."""
        from repro.obs.resources import aggregate_usage

        return aggregate_usage(
            {
                "cpu_s": record.cpu_s,
                "peak_rss_kb": record.peak_rss_kb,
                "pid": record.pid,
            }
            for record in self.records
            if record.pid is not None
        )

    def summary(self) -> str:
        """One-line accounting string."""
        note = (
            f", {self.interrupted} interrupted" if self.interrupted else ""
        )
        return (
            f"{len(self.records)} point(s): {self.executed} executed, "
            f"{self.cached} cached, {self.failed} failed{note} "
            f"in {self.wall_s:.2f}s"
        )


# -- the runner -----------------------------------------------------------


class SweepRunner:
    """Executes resolved run configs in parallel with caching.

    Args:
        jobs: worker processes; ``1`` runs in-process (no pool), which
            is also the fallback when only one config needs executing.
        cache: result cache; ``None`` disables caching entirely.
        timeout_s: per-run wall-clock budget.  A run that exceeds it
            is recorded as failed; already-queued runs keep going.
        bus: optional event bus for live progress
            (:data:`~repro.obs.events.SWEEP_BEGIN` /
            :data:`~repro.obs.events.SWEEP_POINT` /
            :data:`~repro.obs.events.SWEEP_END`).
        tracer: optional :class:`~repro.obs.spans.SpanTracer`; when
            set, the sweep records a span hierarchy (sweep → per-run →
            cache-lookup/simulate) with worker spans merged from the
            run payloads, exportable as a Chrome trace
            (``repro sweep --trace``).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when set, the sweep publishes post-run labeled aggregates
            (``cache_hit_total`` by outcome, ``worker_cpu_s`` /
            ``worker_peak_rss_kb`` by worker pid) — nothing per-point,
            so the zero-overhead-when-disabled discipline holds.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        timeout_s: Optional[float] = None,
        bus: Optional[EventBus] = None,
        tracer=None,
        metrics=None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout must be positive")
        self.jobs = jobs
        self.cache = cache
        self.timeout_s = timeout_s
        self.bus = bus
        self.tracer = tracer
        self.metrics = metrics
        if tracer is not None and cache is not None and cache.tracer is None:
            # One tracer serves the whole sweep: cache lookups get
            # their own spans with hit attribution.
            cache.tracer = tracer

    # Each helper returns the completed record so run() stays linear.

    def _emit(self, name: str, **data) -> None:
        if self.bus is not None:
            self.bus.emit(name, time.time(), **data)

    def _finish(self, record: RunRecord, payload: Dict) -> RunRecord:
        record.status = STATUS_OK
        record.result = payload["result"]
        record.wall_s = payload["wall_s"]
        resources = payload.get("resources") or {}
        record.cpu_s = float(resources.get("cpu_s", 0.0) or 0.0)
        record.peak_rss_kb = float(resources.get("peak_rss_kb", 0.0) or 0.0)
        record.pid = payload.get("pid")
        if self.tracer is not None and payload.get("spans"):
            self.tracer.import_worker(payload["spans"], payload.get("pid", 0))
        if self.cache is not None:
            self.cache.put(
                record.key,
                {
                    "config": record.config,
                    "result": record.result,
                    "wall_s": record.wall_s,
                    "resources": resources,
                },
            )
        return record

    def _fail(self, record: RunRecord, error: str) -> RunRecord:
        record.status = STATUS_FAILED
        record.error = error
        return record

    def run(self, configs: Sequence[Dict]) -> SweepOutcome:
        """Execute (or recall) every config; returns ordered records."""
        if self.tracer is not None:
            with self.tracer.span("sweep", points=len(configs)) as attrs:
                outcome = self._run(configs)
                attrs["executed"] = outcome.executed
                attrs["cached"] = outcome.cached
                attrs["failed"] = outcome.failed
            return outcome
        return self._run(configs)

    def _run(self, configs: Sequence[Dict]) -> SweepOutcome:
        started = time.perf_counter()
        records = []
        for index, config in enumerate(configs):
            resolved = resolve_config(config)
            records.append(
                RunRecord(index=index, config=resolved,
                          key=config_hash(resolved))
            )

        outcome = SweepOutcome(records=records)
        pending: List[RunRecord] = []
        for record in records:
            # ``is not None``: an empty cache is falsy (``__len__``).
            entry = (
                self.cache.get(record.key) if self.cache is not None else None
            )
            if entry is not None and "result" in entry:
                record.status = STATUS_CACHED
                record.result = entry["result"]
                record.wall_s = float(entry.get("wall_s", 0.0))
                outcome.cached += 1
            else:
                pending.append(record)

        self._emit(
            ev.SWEEP_BEGIN,
            total=len(records),
            cached=outcome.cached,
            jobs=self.jobs,
        )
        for record in records:
            if record.status == STATUS_CACHED:
                self._emit_point(record, len(records))

        interrupted = False
        try:
            if self.jobs == 1 or len(pending) <= 1:
                for record in pending:
                    self._run_serial(record)
                    self._emit_point(record, len(records))
            else:
                self._run_pool(pending, len(records))
        except KeyboardInterrupt:
            # Records the interruption never reached keep no error and
            # no result — mark them so the ledger and the CLI can tell
            # "never ran" from "ran and failed".
            interrupted = True
            for record in records:
                if (
                    record.status == STATUS_FAILED
                    and record.result is None
                    and record.error is None
                ):
                    record.status = STATUS_INTERRUPTED

        outcome.executed = sum(
            1 for r in records if r.status == STATUS_OK
        )
        outcome.failed = sum(
            1 for r in records if r.status == STATUS_FAILED
        )
        outcome.interrupted = sum(
            1 for r in records if r.status == STATUS_INTERRUPTED
        )
        outcome.wall_s = time.perf_counter() - started
        self._publish_metrics(outcome)
        self._emit(
            ev.SWEEP_END,
            total=len(records),
            executed=outcome.executed,
            cached=outcome.cached,
            failed=outcome.failed,
            interrupted=outcome.interrupted,
            wall_s=outcome.wall_s,
        )
        if interrupted:
            raise SweepInterrupted(outcome)
        return outcome

    def _publish_metrics(self, outcome: SweepOutcome) -> None:
        """Post-run labeled aggregates (no-op without a registry)."""
        if self.metrics is None:
            return
        hits = self.metrics.counter(
            "cache_hit_total",
            "sweep cache lookups by outcome",
            labels=("outcome",),
        )
        hits.labels(outcome="hit").inc(outcome.cached)
        hits.labels(outcome="miss").inc(
            len(outcome.records) - outcome.cached
        )
        cpu = self.metrics.counter(
            "worker_cpu_s", "CPU seconds per worker", labels=("pid",)
        )
        rss = self.metrics.gauge(
            "worker_peak_rss_kb", "peak RSS per worker (KB)",
            labels=("pid",),
        )
        by_pid: Dict[int, List[float]] = {}
        for record in outcome.records:
            if record.pid is None:
                continue
            entry = by_pid.setdefault(record.pid, [0.0, 0.0])
            entry[0] += record.cpu_s
            entry[1] = max(entry[1], record.peak_rss_kb)
        for pid, (cpu_s, peak) in sorted(by_pid.items()):
            cpu.labels(pid=str(pid)).inc(cpu_s)
            rss.labels(pid=str(pid)).set(peak)

    def _emit_point(self, record: RunRecord, total: int) -> None:
        data = {
            "index": record.index,
            "total": total,
            "key": record.key,
            "status": record.status,
            "label": record.label,
            "wall_s": record.wall_s,
        }
        if record.error:
            data["error"] = record.error
        if record.result is not None:
            data["forward_progress"] = record.result.get("forward_progress")
        if record.pid is not None:
            data["pid"] = record.pid
            data["cpu_s"] = record.cpu_s
            data["peak_rss_kb"] = record.peak_rss_kb
        self._emit(ev.SWEEP_POINT, **data)

    def _run_serial(self, record: RunRecord) -> RunRecord:
        if self.tracer is not None:
            with self.tracer.span(f"run:{record.label}", key=record.key) as a:
                result = self._run_serial_inner(record)
                a["status"] = record.status
            return result
        return self._run_serial_inner(record)

    def _run_serial_inner(self, record: RunRecord) -> RunRecord:
        try:
            return self._finish(record, execute_run(record.config))
        except Exception:
            return self._fail(record, traceback.format_exc(limit=3).strip())

    def _run_pool(self, pending: List[RunRecord], total: int) -> None:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                (record, pool.submit(execute_run, record.config))
                for record in pending
            ]
            # Collect in submission order: ordered results for free,
            # and a timed-out straggler only blocks its own record —
            # later futures keep computing while we wait on it.
            try:
                for record, future in futures:
                    collect_began = time.time()
                    try:
                        self._finish(
                            record, future.result(timeout=self.timeout_s)
                        )
                    except FutureTimeout:
                        future.cancel()
                        self._fail(
                            record,
                            f"timed out after {self.timeout_s:.1f}s",
                        )
                    except KeyboardInterrupt:
                        raise
                    except Exception as exc:
                        self._fail(record, f"{type(exc).__name__}: {exc}")
                    if self.tracer is not None:
                        # The runner-side view: how long this record
                        # held up the in-order collection loop.
                        self.tracer.add(
                            f"collect:{record.label}",
                            collect_began,
                            time.time(),
                            key=record.key,
                            status=record.status,
                        )
                    self._emit_point(record, total)
            except KeyboardInterrupt:
                # Drop everything not yet started; tasks already on a
                # worker run to completion (a real Ctrl-C also signals
                # the process group, so workers die with us).
                pool.shutdown(wait=False, cancel_futures=True)
                raise


# -- in-process factory sweeps (legacy analysis API) ----------------------


def factory_sweep(
    values: Iterable,
    factory: Callable,
    rectifier=None,
    stop_when_finished: bool = True,
) -> List[Tuple[object, SimulationResult]]:
    """Run ``factory(value) -> (trace, platform)`` per value, serially.

    The in-process backend behind the deprecated
    :func:`repro.analysis.sweep.parameter_sweep`.  Accepts any
    iterable (generators are materialised first).  Factories are
    arbitrary callables, so this path cannot cross process boundaries
    or cache — use an :class:`~repro.exp.spec.ExperimentSpec` with
    :class:`SweepRunner` for that.
    """
    from repro.system.simulator import SystemSimulator

    values = list(values)
    if len(values) == 0:
        raise ValueError("need at least one sweep value")
    results = []
    for value in values:
        trace, platform = factory(value)
        simulator = SystemSimulator(
            trace,
            platform,
            rectifier=rectifier,
            stop_when_finished=stop_when_finished,
        )
        results.append((value, simulator.run()))
    return results


def ensemble_factory_sweep(
    traces: Iterable,
    platform_factory: Callable,
    rectifier=None,
    stop_when_finished: bool = True,
) -> List[SimulationResult]:
    """Run one platform recipe over an ensemble of traces, serially.

    Backend of the deprecated
    :func:`repro.analysis.sweep.ensemble_run`.
    """
    traces = list(traces)
    if len(traces) == 0:
        raise ValueError("need at least one trace")
    return [
        result
        for _, result in factory_sweep(
            traces,
            lambda trace: (trace, platform_factory(trace)),
            rectifier=rectifier,
            stop_when_finished=stop_when_finished,
        )
    ]
