"""Experiment engine: declarative, parallel, cache-aware sweeps.

The DATE'17 paper frames NVP design as architecture-space exploration
— comparing backup budgets, wake-up times and forward progress across
many technology/policy/capacitor points.  This package turns that
into infrastructure:

* :mod:`repro.exp.spec` — declarative experiment specs (grid / zip /
  ensemble) that expand into deterministic, content-hashed run
  configs;
* :mod:`repro.exp.runner` — a process-pool executor with per-run
  error isolation, timeouts, and ordered result collection;
* :mod:`repro.exp.cache` — a content-addressed on-disk result store
  keyed by config hash + code version, making re-runs incremental and
  interrupted sweeps resumable;
* :mod:`repro.exp.report` — folds outcomes into the
  ``benchmarks/results/`` JSON trajectory with PR-1 run manifests.

Quick start::

    from repro.exp import ExperimentSpec, ResultCache, SweepRunner

    spec = ExperimentSpec(
        name="cap-sweep",
        base={"source": "wristwatch", "duration_s": 2.0, "seed": 1},
        axes={"capacitance_f": [47e-9, 150e-9, 470e-9]},
    )
    outcome = SweepRunner(jobs=4, cache=ResultCache()).run(spec.expand())
    for record in outcome:
        print(record.label, record.simulation_result().forward_progress)

or, from the shell: ``python -m repro sweep spec.json --jobs 4``.
"""

from repro.exp.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    ResultCache,
    default_cache_dir,
)
from repro.exp.report import (
    outcome_payload,
    outcome_table,
    render_outcome,
    write_results,
)
from repro.exp.runner import (
    RunRecord,
    SweepInterrupted,
    SweepOutcome,
    SweepRunner,
    execute_run,
)
from repro.exp.spec import (
    ExperimentSpec,
    config_hash,
    resolve_config,
)

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "ExperimentSpec",
    "ResultCache",
    "RunRecord",
    "SweepInterrupted",
    "SweepOutcome",
    "SweepRunner",
    "config_hash",
    "default_cache_dir",
    "execute_run",
    "outcome_payload",
    "outcome_table",
    "render_outcome",
    "resolve_config",
    "write_results",
]
