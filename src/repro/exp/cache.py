"""Content-addressed on-disk result cache.

Every simulation result is stored under
``<root>/<code_version>/<config_hash>.json`` — the config hash
identifies *what* ran (every knob of the resolved run config) and the
code-version directory pins *which code* ran it, so upgrading the
package never serves stale physics.  Re-running a sweep therefore
only executes new or changed points, and an interrupted sweep resumes
for free: every point that completed before the interruption is a
cache hit.

The root directory defaults to ``.repro-cache`` in the working
directory and can be moved with the ``REPRO_CACHE_DIR`` environment
variable.  Writes are atomic (temp file + rename), so a sweep killed
mid-write never corrupts an entry — a torn entry simply reads as a
miss.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Dict, List, Optional

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache root (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> str:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``.repro-cache``."""
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR


def code_version() -> str:
    """The version string namespacing cache entries."""
    import repro

    return getattr(repro, "__version__", "unversioned")


class ResultCache:
    """Content-addressed store for sweep results.

    Args:
        root: cache root directory; ``None`` uses
            :func:`default_cache_dir` (which honours
            ``REPRO_CACHE_DIR``).
        version: code-version namespace; ``None`` uses the installed
            package version.
        tracer: optional :class:`~repro.obs.spans.SpanTracer`; when
            set, every :meth:`get` / :meth:`put` records a span with
            hit attribution (the cache-hit timeline in
            ``repro sweep --trace``).
    """

    def __init__(
        self,
        root: Optional[str] = None,
        version: Optional[str] = None,
        tracer=None,
    ) -> None:
        self.root = root or default_cache_dir()
        self.version = version or code_version()
        self.tracer = tracer

    @property
    def directory(self) -> str:
        """The version-namespaced entry directory."""
        return os.path.join(self.root, self.version)

    def path(self, key: str) -> str:
        """Entry path for a config hash."""
        if not key or os.sep in key or key.startswith("."):
            raise ValueError(f"invalid cache key {key!r}")
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[Dict]:
        """The stored payload for ``key``, or ``None`` on a miss.

        A corrupt or unreadable entry is treated as a miss (and left
        for the next :meth:`put` to overwrite).
        """
        if self.tracer is not None:
            with self.tracer.span("cache.get", key=key) as attrs:
                payload = self._get(key)
                attrs["hit"] = payload is not None
            return payload
        return self._get(key)

    def _get(self, key: str) -> Optional[Dict]:
        try:
            with open(self.path(key)) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        return payload

    def put(self, key: str, payload: Dict) -> str:
        """Atomically store ``payload`` under ``key``; returns the path.

        The stored record carries the key, version and write time next
        to the caller's payload so entries are self-describing.
        """
        if self.tracer is not None:
            with self.tracer.span("cache.put", key=key):
                return self._put(key, payload)
        return self._put(key, payload)

    def _put(self, key: str, payload: Dict) -> str:
        record = {
            "key": key,
            "code_version": self.version,
            "stored_unix": time.time(),
        }
        record.update(payload)
        path = self.path(key)
        os.makedirs(self.directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path(key))

    def keys(self) -> List[str]:
        """Every stored config hash (sorted)."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(
            name[:-5]
            for name in names
            if name.endswith(".json") and not name.startswith(".")
        )

    def __len__(self) -> int:
        return len(self.keys())

    def clear(self) -> int:
        """Delete every entry in this version namespace; returns count."""
        removed = 0
        for key in self.keys():
            try:
                os.unlink(self.path(key))
                removed += 1
            except OSError:
                pass
        return removed
