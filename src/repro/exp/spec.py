"""Declarative experiment specs.

An :class:`ExperimentSpec` describes a *family* of simulations — a
base configuration plus one or more swept axes — and expands into a
deterministic list of fully-resolved run configs.  Every resolved
config is a plain JSON-able dict with a stable content hash
(:func:`config_hash`), which is what the result cache and the sweep
runner key on: the same spec always expands to the same configs in
the same order with the same hashes, on any machine.

Three expansion modes:

* ``grid`` — the Cartesian product of all axes (architecture-space
  exploration: every technology x every capacitor x every policy);
* ``zip`` — axes advance in lockstep (labelled configurations, like
  the retention-policy ladder);
* ``ensemble`` — a grid that must sweep ``seed`` (the same design
  point across an ensemble of stochastic traces).

Axis names may be dotted (``"nvp.backup_margin"``) to reach into the
nested NVP architecture config.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Expansion modes understood by :meth:`ExperimentSpec.expand`.
MODES = ("grid", "zip", "ensemble")

#: Platform presets the runner can build (mirrors the CLI).
PLATFORMS = ("nvp", "wait", "checkpoint", "oracle")

#: Trace sources the runner can synthesise.  ``profile`` selects one
#: of the five standard wristwatch evaluation profiles by
#: ``profile_index``; ``constant`` uses ``mean_uw`` as a DC level.
SOURCES = (
    "wristwatch", "solar", "rf", "thermal", "hybrid", "constant", "profile",
)

#: Every top-level config key with its default.  ``resolve_config``
#: rejects anything else so a typo in a spec fails fast instead of
#: silently sweeping nothing.
CONFIG_DEFAULTS: Dict[str, object] = {
    "platform": "nvp",          # one of PLATFORMS
    "source": "wristwatch",     # one of SOURCES
    "duration_s": 1.0,          # simulated seconds
    "seed": 7,                  # trace RNG seed
    "mean_uw": None,            # rescale trace mean (uW); level for constant
    "profile_index": 0,         # which standard profile (source="profile")
    "profile_count": 5,         # how many standard profiles exist
    "capacitance_f": None,      # storage size; None = platform default
    "energy_margin": None,      # wait-and-compute margin; None = default
    "nvp": {},                  # NVPConfig keyword overrides
    "platform_seed": 0,         # platform-internal RNG seed
    "kernel": None,             # NV16 kernel name; None = abstract mix
    "frames": 5,                # frames for kernel workloads
    "stop_when_finished": None, # None = True iff a kernel is set
    "rectifier": True,          # route the trace through the AC-DC front end
    "label": None,              # None = auto-generated from swept axes
}

#: ``nvp`` sub-config keys that take names/specs instead of objects.
#: ``technology`` is an NVM catalog name; ``retention_policy`` is
#: ``{"kind": "linear"|"log"|"parabola"|"uniform", ...ctor kwargs}``.
_NVP_RESOLVED_KEYS = ("technology", "retention_policy")


def _nvp_field_names() -> Tuple[str, ...]:
    from dataclasses import fields

    from repro.core.config import NVPConfig

    return tuple(f.name for f in fields(NVPConfig))


def _assign(config: Dict, key: str, value) -> None:
    """Set ``key`` in ``config``, descending through dotted paths."""
    parts = key.split(".")
    target = config
    for part in parts[:-1]:
        node = target.setdefault(part, {})
        if not isinstance(node, dict):
            raise ValueError(f"cannot descend into non-dict key {part!r}")
        target = node
    target[parts[-1]] = value


def resolve_config(config: Mapping) -> Dict:
    """Merge ``config`` over the defaults and validate every key.

    Accepts dotted keys (``"nvp.state_bits"``).  Returns a new plain
    dict containing *every* key from :data:`CONFIG_DEFAULTS`, suitable
    for hashing and for shipping to a worker process.

    Raises:
        ValueError: unknown keys, unknown platform/source/kernel, or
            malformed nested configs.
    """
    merged: Dict = {k: (dict(v) if isinstance(v, dict) else v)
                    for k, v in CONFIG_DEFAULTS.items()}
    for key, value in config.items():
        # Deep-copied so a resolved config never aliases (and dotted
        # axis keys never mutate) the caller's nested dicts.
        _assign(merged, key, copy.deepcopy(value))
    unknown = set(merged) - set(CONFIG_DEFAULTS)
    if unknown:
        raise ValueError(
            f"unknown config key(s) {sorted(unknown)}; "
            f"known: {sorted(CONFIG_DEFAULTS)}"
        )
    if merged["platform"] not in PLATFORMS:
        raise ValueError(
            f"unknown platform {merged['platform']!r}; known: {PLATFORMS}"
        )
    if merged["source"] not in SOURCES:
        raise ValueError(
            f"unknown source {merged['source']!r}; known: {SOURCES}"
        )
    if not isinstance(merged["nvp"], dict):
        raise ValueError("'nvp' must be a dict of NVPConfig overrides")
    bad = set(merged["nvp"]) - set(_nvp_field_names())
    if bad:
        raise ValueError(f"unknown NVPConfig key(s) {sorted(bad)}")
    if merged["duration_s"] <= 0:
        raise ValueError("duration_s must be positive")
    if merged["stop_when_finished"] is None:
        merged["stop_when_finished"] = merged["kernel"] is not None
    return merged


def canonical_json(obj) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace).

    Raises:
        TypeError: if ``obj`` contains non-JSON-able values — configs
            must stay plain data so hashes are portable across
            processes and machines.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def config_hash(config: Mapping) -> str:
    """Stable content hash of a resolved config (64 hex chars)."""
    return hashlib.sha256(canonical_json(config).encode("utf-8")).hexdigest()


def _auto_label(point: Mapping[str, object]) -> str:
    return ",".join(f"{k}={v!r}" if isinstance(v, str) else f"{k}={v}"
                    for k, v in point.items())


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative sweep: base config + swept axes + expansion mode.

    Attributes:
        name: experiment identifier (also the results file stem).
        axes: ``{axis_name: [values...]}`` — axis names are config
            keys, optionally dotted into the ``nvp`` sub-config.
        base: config keys shared by every point.
        mode: ``"grid"``, ``"zip"`` or ``"ensemble"``.
        description: free-form, carried into the results payload.
    """

    name: str
    axes: Mapping[str, Sequence] = field(default_factory=dict)
    base: Mapping = field(default_factory=dict)
    mode: str = "grid"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("spec needs a name")
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; known: {MODES}")
        if self.mode == "ensemble" and "seed" not in self.axes:
            raise ValueError("ensemble mode requires a 'seed' axis")
        for axis, values in self.axes.items():
            if len(list(values)) == 0:
                raise ValueError(f"axis {axis!r} has no values")
        if self.mode == "zip" and self.axes:
            lengths = {axis: len(list(v)) for axis, v in self.axes.items()}
            if len(set(lengths.values())) > 1:
                raise ValueError(f"zip axes differ in length: {lengths}")

    def points(self) -> List[Dict[str, object]]:
        """The swept ``{axis: value}`` combinations, in sweep order."""
        axes = {axis: list(values) for axis, values in self.axes.items()}
        if not axes:
            return [{}]
        names = list(axes)
        if self.mode == "zip":
            return [
                dict(zip(names, combo)) for combo in zip(*axes.values())
            ]
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*axes.values())
        ]

    def expand(self) -> List[Dict]:
        """Resolve every sweep point into a full run config.

        Returns the configs in deterministic sweep order: for grids,
        the last axis varies fastest (like nested loops in axis
        order); for zips, index order.
        """
        configs = []
        for point in self.points():
            raw = dict(self.base)
            raw.update(point)
            if "label" not in raw and point:
                raw["label"] = _auto_label(point)
            configs.append(resolve_config(raw))
        return configs

    def hashes(self) -> List[str]:
        """Content hash per expanded config (same order)."""
        return [config_hash(c) for c in self.expand()]

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExperimentSpec":
        """Build a spec from a plain dict (the JSON file layout)."""
        known = {"name", "axes", "base", "mode", "description"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown spec key(s) {sorted(unknown)}; known: {sorted(known)}"
            )
        if "name" not in data:
            raise ValueError("spec needs a name")
        return cls(
            name=data["name"],
            axes=dict(data.get("axes", {})),
            base=dict(data.get("base", {})),
            mode=data.get("mode", "grid"),
            description=data.get("description", ""),
        )

    @classmethod
    def from_file(cls, path: str) -> "ExperimentSpec":
        """Load a spec from a JSON file."""
        with open(path) as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}: not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError(f"{path}: spec must be a JSON object")
        return cls.from_dict(data)

    @classmethod
    def ensemble(
        cls,
        name: str,
        seeds: Sequence[int],
        base: Optional[Mapping] = None,
        description: str = "",
        **axes: Sequence,
    ) -> "ExperimentSpec":
        """Convenience: the same design point(s) across many seeds."""
        all_axes: Dict[str, Sequence] = {"seed": list(seeds)}
        all_axes.update(axes)
        return cls(
            name=name,
            axes=all_axes,
            base=dict(base or {}),
            mode="ensemble",
            description=description,
        )
