"""Tree-walking interpreter for NVC — the semantic oracle.

Implements exactly the NV16 semantics the code generator targets:
16-bit wrap-around arithmetic, unsigned ``/``, ``%`` and ``>>``,
signed comparisons, division by zero yielding ``0xFFFF`` (and ``x % 0
== x``), shift counts modulo 16.  The test suite cross-checks compiled
programs against this interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.lang import ast
from repro.lang.parser import parse

MASK = 0xFFFF


class InterpError(Exception):
    """Raised on runtime errors (unknown names, bad indices, budget)."""


class _Halted(Exception):
    """Internal: the program executed ``halt``."""


class _Returned(Exception):
    """Internal: a function executed ``return``."""

    def __init__(self, value: int) -> None:
        super().__init__()
        self.value = value


class _Break(Exception):
    """Internal: ``break`` inside a loop."""


class _Continue(Exception):
    """Internal: ``continue`` inside a loop."""


def _signed(value: int) -> int:
    value &= MASK
    return value - 0x10000 if value & 0x8000 else value


@dataclass
class InterpResult:
    """Outcome of interpreting a program.

    Attributes:
        outputs: values streamed via ``out(...)`` in order.
        globals: final global scalar/array values.
        returned: ``main``'s return value.
    """

    outputs: List[int] = field(default_factory=list)
    globals: Dict[str, Union[int, List[int]]] = field(default_factory=dict)
    returned: int = 0


class _Interp:
    def __init__(self, program: ast.Program, inputs, max_steps: int) -> None:
        self.program = program
        self.inputs = list(inputs or [])
        self.max_steps = max_steps
        self.steps = 0
        self.outputs: List[int] = []
        self.globals: Dict[str, Union[int, List[int]]] = {}
        for decl in program.globals:
            if decl.size is None:
                value = decl.initializer[0] if decl.initializer else 0
                self.globals[decl.name] = value & MASK
            else:
                values = [v & MASK for v in decl.initializer]
                values += [0] * (decl.size - len(values))
                self.globals[decl.name] = values

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise InterpError("step budget exhausted (infinite loop?)")

    # -- expressions ---------------------------------------------------------

    def eval(self, node, env: Dict[str, int]) -> int:
        self._tick()
        if isinstance(node, ast.Num):
            return node.value & MASK
        if isinstance(node, ast.Var):
            if node.name in env:
                return env[node.name]
            value = self.globals.get(node.name)
            if isinstance(value, int):
                return value
            if isinstance(value, list):
                raise InterpError(f"array {node.name!r} used as a scalar")
            raise InterpError(f"unknown variable {node.name!r}")
        if isinstance(node, ast.Index):
            array = self.globals.get(node.name)
            if not isinstance(array, list):
                raise InterpError(f"{node.name!r} is not an array")
            index = self.eval(node.index, env)
            if index >= len(array):
                raise InterpError(
                    f"index {index} out of bounds for {node.name!r}[{len(array)}]"
                )
            return array[index]
        if isinstance(node, ast.Unary):
            value = self.eval(node.operand, env)
            if node.op == "-":
                return (-value) & MASK
            if node.op == "~":
                return value ^ MASK
            return 1 if value == 0 else 0  # "!"
        if isinstance(node, ast.Binary):
            return self._binary(node, env)
        if isinstance(node, ast.Logical):
            left = self.eval(node.left, env)
            if node.op == "&&":
                if left == 0:
                    return 0
                return 1 if self.eval(node.right, env) != 0 else 0
            if left != 0:
                return 1
            return 1 if self.eval(node.right, env) != 0 else 0
        if isinstance(node, ast.Call):
            return self._call(node, env)
        raise InterpError(f"cannot evaluate {type(node).__name__}")

    def _binary(self, node: ast.Binary, env) -> int:
        a = self.eval(node.left, env)
        b = self.eval(node.right, env)
        op = node.op
        if op == "+":
            return (a + b) & MASK
        if op == "-":
            return (a - b) & MASK
        if op == "*":
            return (a * b) & MASK
        if op == "/":
            return MASK if b == 0 else a // b
        if op == "%":
            return a if b == 0 else a % b
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
        if op == "<<":
            return (a << (b % 16)) & MASK
        if op == ">>":
            return a >> (b % 16)
        if op == "==":
            return 1 if a == b else 0
        if op == "!=":
            return 1 if a != b else 0
        if op == "<":
            return 1 if _signed(a) < _signed(b) else 0
        if op == "<=":
            return 1 if _signed(a) <= _signed(b) else 0
        if op == ">":
            return 1 if _signed(a) > _signed(b) else 0
        if op == ">=":
            return 1 if _signed(a) >= _signed(b) else 0
        raise InterpError(f"unknown operator {op!r}")

    def _call(self, node: ast.Call, env) -> int:
        if node.name == "in":
            return self.inputs.pop(0) & MASK if self.inputs else 0
        try:
            fn = self.program.function(node.name)
        except KeyError as exc:
            raise InterpError(str(exc)) from exc
        if len(node.args) != len(fn.params):
            raise InterpError(
                f"{node.name}() expects {len(fn.params)} args, got {len(node.args)}"
            )
        frame = {
            param: self.eval(arg, env) for param, arg in zip(fn.params, node.args)
        }
        try:
            self.exec_block(fn.body, frame)
        except _Returned as ret:
            return ret.value
        except (_Break, _Continue) as exc:
            raise InterpError("break/continue outside a loop") from exc
        return 0

    # -- statements -----------------------------------------------------------

    def exec_block(self, body, env) -> None:
        for statement in body:
            self.exec_statement(statement, env)

    def exec_statement(self, node, env) -> None:
        self._tick()
        if isinstance(node, ast.LocalDecl):
            env[node.name] = 0
            return
        if isinstance(node, ast.Assign):
            value = self.eval(node.value, env)
            target = node.target
            if isinstance(target, ast.Var):
                if target.name in env:
                    env[target.name] = value
                elif isinstance(self.globals.get(target.name), int):
                    self.globals[target.name] = value
                else:
                    raise InterpError(f"unknown variable {target.name!r}")
            else:  # Index
                array = self.globals.get(target.name)
                if not isinstance(array, list):
                    raise InterpError(f"{target.name!r} is not an array")
                index = self.eval(target.index, env)
                if index >= len(array):
                    raise InterpError(
                        f"index {index} out of bounds for {target.name!r}"
                    )
                array[index] = value
            return
        if isinstance(node, ast.If):
            if self.eval(node.cond, env) != 0:
                self.exec_block(node.then_body, env)
            else:
                self.exec_block(node.else_body, env)
            return
        if isinstance(node, ast.While):
            while self.eval(node.cond, env) != 0:
                try:
                    self.exec_block(node.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
            return
        if isinstance(node, ast.For):
            if node.init is not None:
                self.exec_statement(node.init, env)
            while self.eval(node.cond, env) != 0:
                try:
                    self.exec_block(node.body, env)
                except _Break:
                    break
                except _Continue:
                    pass  # fall through to the step
                if node.step is not None:
                    self.exec_statement(node.step, env)
            return
        if isinstance(node, ast.Out):
            self.outputs.append(self.eval(node.value, env))
            return
        if isinstance(node, ast.Return):
            value = self.eval(node.value, env) if node.value is not None else 0
            raise _Returned(value)
        if isinstance(node, ast.Halt):
            raise _Halted()
        if isinstance(node, ast.Break):
            raise _Break()
        if isinstance(node, ast.Continue):
            raise _Continue()
        if isinstance(node, ast.ExprStatement):
            self.eval(node.value, env)
            return
        raise InterpError(f"cannot execute {type(node).__name__}")


def interpret(
    program: Union[str, ast.Program],
    inputs: Optional[List[int]] = None,
    max_steps: int = 1_000_000,
) -> InterpResult:
    """Interpret an NVC program (source text or parsed AST).

    Execution starts at ``main()``.

    Raises:
        InterpError: on runtime errors or if there is no ``main``.
    """
    tree = parse(program) if isinstance(program, str) else program
    interp = _Interp(tree, inputs, max_steps)
    try:
        main = tree.function("main")
    except KeyError as exc:
        raise InterpError(str(exc)) from exc
    if main.params:
        raise InterpError("main() cannot take parameters")
    returned = 0
    try:
        interp.exec_block(main.body, {})
    except _Returned as ret:
        returned = ret.value
    except _Halted:
        pass
    except (_Break, _Continue) as exc:
        raise InterpError("break/continue outside a loop") from exc
    return InterpResult(
        outputs=interp.outputs, globals=interp.globals, returned=returned
    )
