"""AST-level optimisation for NVC: constant folding and branch pruning.

On an energy-budgeted core, every folded instruction is harvested
energy returned to the application.  The folder evaluates constant
subexpressions with exactly the target's 16-bit semantics (by reusing
the interpreter's operator tables), collapses constant conditions, and
prunes unreachable branches — all before code generation, so the
generated NV16 stays simple.

Semantics-preservation is enforced in the test suite by differential
fuzzing: for random programs, optimised and unoptimised binaries must
produce identical outputs.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.lang import ast
from repro.lang.interp import MASK, _signed


def _fold_binary(op: str, a: int, b: int) -> int:
    """Evaluate ``a op b`` with NV16 semantics (both 16-bit values)."""
    if op == "+":
        return (a + b) & MASK
    if op == "-":
        return (a - b) & MASK
    if op == "*":
        return (a * b) & MASK
    if op == "/":
        return MASK if b == 0 else a // b
    if op == "%":
        return a if b == 0 else a % b
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    if op == "<<":
        return (a << (b % 16)) & MASK
    if op == ">>":
        return a >> (b % 16)
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "<":
        return int(_signed(a) < _signed(b))
    if op == "<=":
        return int(_signed(a) <= _signed(b))
    if op == ">":
        return int(_signed(a) > _signed(b))
    return int(_signed(a) >= _signed(b))  # ">="


def fold_expr(node):
    """Return a constant-folded copy of an expression node."""
    if isinstance(node, ast.Num):
        return ast.Num(value=node.value & MASK, line=node.line)
    if isinstance(node, (ast.Var,)):
        return node
    if isinstance(node, ast.Index):
        return ast.Index(name=node.name, index=fold_expr(node.index), line=node.line)
    if isinstance(node, ast.Unary):
        operand = fold_expr(node.operand)
        if isinstance(operand, ast.Num):
            if node.op == "-":
                return ast.Num(value=(-operand.value) & MASK, line=node.line)
            if node.op == "~":
                return ast.Num(value=operand.value ^ MASK, line=node.line)
            return ast.Num(value=int(operand.value == 0), line=node.line)
        return ast.Unary(op=node.op, operand=operand, line=node.line)
    if isinstance(node, ast.Binary):
        left = fold_expr(node.left)
        right = fold_expr(node.right)
        if isinstance(left, ast.Num) and isinstance(right, ast.Num):
            return ast.Num(
                value=_fold_binary(node.op, left.value, right.value),
                line=node.line,
            )
        return ast.Binary(op=node.op, left=left, right=right, line=node.line)
    if isinstance(node, ast.Logical):
        left = fold_expr(node.left)
        right = fold_expr(node.right)
        if isinstance(left, ast.Num):
            # Short-circuit is decidable: the right side has no side
            # effects in NVC *except calls*, so only fold when safe.
            if node.op == "&&" and left.value == 0:
                return ast.Num(value=0, line=node.line)
            if node.op == "||" and left.value != 0:
                return ast.Num(value=1, line=node.line)
            if isinstance(right, ast.Num):
                return ast.Num(value=int(right.value != 0), line=node.line)
            # Constant-true left of && / constant-false left of ||:
            # result is the normalised right operand.
            return ast.Logical(op=node.op, left=left, right=right, line=node.line)
        return ast.Logical(op=node.op, left=left, right=right, line=node.line)
    if isinstance(node, ast.Call):
        return ast.Call(
            name=node.name,
            args=tuple(fold_expr(arg) for arg in node.args),
            line=node.line,
        )
    return node


def _fold_body(body: Tuple) -> Tuple:
    out = []
    for node in body:
        folded = fold_statement(node)
        if folded is None:
            continue
        if isinstance(folded, tuple):
            out.extend(folded)
        else:
            out.append(folded)
    return tuple(out)


def fold_statement(node) -> Union[None, Tuple, object]:
    """Fold one statement; may return None (pruned), a statement, or a
    tuple of statements (an inlined branch)."""
    if isinstance(node, ast.Assign):
        target = node.target
        if isinstance(target, ast.Index):
            target = ast.Index(
                name=target.name, index=fold_expr(target.index), line=target.line
            )
        return ast.Assign(target=target, value=fold_expr(node.value), line=node.line)
    if isinstance(node, ast.If):
        cond = fold_expr(node.cond)
        then_body = _fold_body(node.then_body)
        else_body = _fold_body(node.else_body)
        if isinstance(cond, ast.Num):
            return then_body if cond.value != 0 else else_body
        return ast.If(
            cond=cond, then_body=then_body, else_body=else_body, line=node.line
        )
    if isinstance(node, ast.While):
        cond = fold_expr(node.cond)
        if isinstance(cond, ast.Num) and cond.value == 0:
            return None  # while (0) {...}: dead
        return ast.While(cond=cond, body=_fold_body(node.body), line=node.line)
    if isinstance(node, ast.For):
        init = fold_statement(node.init) if node.init is not None else None
        step = fold_statement(node.step) if node.step is not None else None
        cond = fold_expr(node.cond)
        if isinstance(cond, ast.Num) and cond.value == 0:
            # Body never runs, but the init assignment still does.
            return init
        return ast.For(
            init=init, cond=cond, step=step, body=_fold_body(node.body),
            line=node.line,
        )
    if isinstance(node, ast.Out):
        return ast.Out(value=fold_expr(node.value), line=node.line)
    if isinstance(node, ast.Return):
        value = fold_expr(node.value) if node.value is not None else None
        return ast.Return(value=value, line=node.line)
    if isinstance(node, ast.ExprStatement):
        value = fold_expr(node.value)
        if isinstance(value, (ast.Num, ast.Var)):
            return None  # side-effect-free statement: dead
        return ast.ExprStatement(value=value, line=node.line)
    return node  # LocalDecl, Halt, Break, Continue


def optimize(program: ast.Program) -> ast.Program:
    """Return a constant-folded copy of a parsed program."""
    functions = tuple(
        ast.Function(
            name=fn.name,
            params=fn.params,
            body=_fold_body(fn.body),
            line=fn.line,
        )
        for fn in program.functions
    )
    return ast.Program(globals=program.globals, functions=functions)
