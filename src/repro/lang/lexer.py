"""Tokeniser for NVC."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

KEYWORDS = frozenset(
    {"int", "func", "if", "else", "while", "for", "return", "out", "halt",
     "in", "break", "continue"}
)

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",",
)


class LexError(Exception):
    """Raised on an unrecognised character."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    """One lexical token.

    Attributes:
        kind: ``"num"``, ``"ident"``, ``"kw"``, ``"op"`` or ``"eof"``.
        text: the matched text (numbers keep their source spelling).
        line: 1-based source line.
    """

    kind: str
    text: str
    line: int

    @property
    def value(self) -> int:
        """Numeric value of a ``num`` token."""
        if self.kind != "num":
            raise ValueError(f"token {self.text!r} is not a number")
        return int(self.text, 0)


def tokenize(source: str) -> List[Token]:
    """Tokenise NVC source into a token list ending with an EOF token.

    ``//`` comments run to end of line.

    Raises:
        LexError: on an unrecognised character.
    """
    tokens: List[Token] = []
    line = 1
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            continue
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if char.isdigit():
            start = index
            if source.startswith("0x", index) or source.startswith("0X", index):
                index += 2
                while index < length and source[index] in "0123456789abcdefABCDEF":
                    index += 1
            else:
                while index < length and source[index].isdigit():
                    index += 1
            tokens.append(Token("num", source[start:index], line))
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            continue
        matched: Optional[str] = None
        for op in OPERATORS:
            if source.startswith(op, index):
                matched = op
                break
        if matched is None:
            raise LexError(f"unexpected character {char!r}", line)
        tokens.append(Token("op", matched, line))
        index += len(matched)
    tokens.append(Token("eof", "", line))
    return tokens
