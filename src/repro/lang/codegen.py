"""NVC → NV16 code generator.

Strategy (authentic to 8051-class MCU toolchains): **static frames**.
Each function's return-address slot, parameters, locals and expression
spill slots live at fixed NVM addresses, so no runtime stack pointer
is needed; true recursion is rejected at compile time (the call graph
must be acyclic).  Re-entrancy through argument expressions is safe
because a callee's parameter slots are written only after every
argument has been evaluated.

Expression evaluation uses a four-register window (``r1``–``r4``) over
a conceptual evaluation stack; deeper positions live in the frame's
spill slots.  ``r5``/``r6`` are scratch (``lr`` is saved in the frame
on entry), ``r0`` is zero, and ``r7`` is unused (reserved).

Generated code matches the :mod:`repro.lang.interp` semantics
bit-for-bit: 16-bit wrap-around, unsigned ``/ % >>``, signed
comparisons, shift counts mod 16, ``x / 0 == 0xFFFF``, ``x % 0 == x``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.isa.assembler import Program as AsmProgram
from repro.isa.assembler import assemble
from repro.isa.memory import INPUT_PORT, NVM_BASE, OUTPUT_PORT
from repro.lang import ast
from repro.lang.parser import parse

#: Base address for compiler-managed data (globals, then frames).
DATA_BASE = NVM_BASE

#: Eval-stack positions held in registers (positions 0..3 -> r1..r4).
REG_WINDOW = 4


class CodegenError(Exception):
    """Raised on semantic errors (unknown names, recursion, arity)."""

    def __init__(self, message: str, line: int = 0) -> None:
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


@dataclass
class CompiledProgram:
    """The result of compiling NVC source.

    Attributes:
        asm: the generated NV16 assembly text.
        program: the assembled binary.
        source: the original NVC source.
    """

    asm: str
    program: AsmProgram
    source: str


def _collect_locals(body) -> List[str]:
    names: List[str] = []

    def walk(statements):
        for node in statements:
            if isinstance(node, ast.LocalDecl):
                if node.name not in names:
                    names.append(node.name)
            elif isinstance(node, ast.If):
                walk(node.then_body)
                walk(node.else_body)
            elif isinstance(node, (ast.While,)):
                walk(node.body)
            elif isinstance(node, ast.For):
                walk(node.body)

    walk(body)
    return names


def _collect_calls(body) -> Set[str]:
    calls: Set[str] = set()

    def walk_expr(node):
        if isinstance(node, ast.Call):
            calls.add(node.name)
            for arg in node.args:
                walk_expr(arg)
        elif isinstance(node, ast.Unary):
            walk_expr(node.operand)
        elif isinstance(node, (ast.Binary, ast.Logical)):
            walk_expr(node.left)
            walk_expr(node.right)
        elif isinstance(node, ast.Index):
            walk_expr(node.index)

    def walk(statements):
        for node in statements:
            if isinstance(node, ast.Assign):
                walk_expr(node.value)
                if isinstance(node.target, ast.Index):
                    walk_expr(node.target.index)
            elif isinstance(node, ast.If):
                walk_expr(node.cond)
                walk(node.then_body)
                walk(node.else_body)
            elif isinstance(node, ast.While):
                walk_expr(node.cond)
                walk(node.body)
            elif isinstance(node, ast.For):
                if node.init:
                    walk_expr(node.init.value)
                walk_expr(node.cond)
                if node.step:
                    walk_expr(node.step.value)
                walk(node.body)
            elif isinstance(node, (ast.Out, ast.ExprStatement)):
                walk_expr(node.value)
            elif isinstance(node, ast.Return) and node.value is not None:
                walk_expr(node.value)

    walk(body)
    calls.discard("in")
    return calls


def _check_no_recursion(program: ast.Program) -> None:
    graph = {fn.name: _collect_calls(fn.body) for fn in program.functions}
    state: Dict[str, int] = {}

    def visit(name: str, chain: Tuple[str, ...]) -> None:
        if name not in graph:
            return
        if state.get(name) == 1:
            cycle = " -> ".join(chain + (name,))
            raise CodegenError(f"recursion is not supported: {cycle}")
        if state.get(name) == 2:
            return
        state[name] = 1
        for callee in graph[name]:
            visit(callee, chain + (name,))
        state[name] = 2

    for fn_name in graph:
        visit(fn_name, ())


class _FunctionContext:
    """Per-function frame bookkeeping."""

    def __init__(self, fn: ast.Function) -> None:
        self.fn = fn
        self.params = list(fn.params)
        self.locals = _collect_locals(fn.body)
        overlap = set(self.params) & set(self.locals)
        if overlap:
            raise CodegenError(
                f"locals shadow parameters in {fn.name}: {sorted(overlap)}",
                fn.line,
            )
        self.max_depth = 0

    @property
    def frame_label(self) -> str:
        return f"F_{self.fn.name}"

    def slot_of(self, name: str) -> Optional[str]:
        """Frame-relative symbol for a param/local, or None."""
        if name in self.params:
            return f"{self.frame_label}+{1 + self.params.index(name)}"
        if name in self.locals:
            return f"{self.frame_label}+{1 + len(self.params) + self.locals.index(name)}"
        return None

    def spill_slot(self, position: int) -> str:
        """Frame symbol for eval-stack position ``position`` (>= 0)."""
        base = 1 + len(self.params) + len(self.locals)
        return f"{self.frame_label}+{base + position}"

    @property
    def frame_words(self) -> int:
        return 1 + len(self.params) + len(self.locals) + self.max_depth


class _Codegen:
    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.lines: List[str] = []
        self.label_counter = 0
        self.globals: Dict[str, ast.GlobalDecl] = {}
        for decl in program.globals:
            self.globals[decl.name] = decl
        self.functions = {fn.name: fn for fn in program.functions}
        if "main" not in self.functions:
            raise CodegenError("program has no main()")
        if self.functions["main"].params:
            raise CodegenError("main() cannot take parameters")
        _check_no_recursion(program)
        self.contexts = {
            fn.name: _FunctionContext(fn) for fn in program.functions
        }
        # (break_label, continue_label) of the enclosing loops.
        self._loop_stack: List[Tuple[str, str]] = []

    # -- helpers -----------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append(f"    {text}")

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def new_label(self, stem: str) -> str:
        self.label_counter += 1
        return f"L{self.label_counter}_{stem}"

    # -- eval-stack machinery --------------------------------------------

    @staticmethod
    def _reg(position: int) -> Optional[str]:
        return f"r{position + 1}" if position < REG_WINDOW else None

    def _note_depth(self, ctx: _FunctionContext, depth: int) -> None:
        spill_positions = max(0, depth - REG_WINDOW)
        # Register positions also get home slots (for call flushes), so
        # the frame needs one spill word per position ever used.
        ctx.max_depth = max(ctx.max_depth, depth, REG_WINDOW + spill_positions)

    def _store_position(self, ctx, position: int, src_reg: str) -> None:
        """Move a value in ``src_reg`` into eval position ``position``."""
        reg = self._reg(position)
        if reg is not None:
            if reg != src_reg:
                self.emit(f"mov  {reg}, {src_reg}")
        else:
            self.emit(f"st   {src_reg}, {ctx.spill_slot(position)}(r0)")

    def _load_position(self, ctx, position: int, scratch: str) -> str:
        """Return a register holding eval position ``position``."""
        reg = self._reg(position)
        if reg is not None:
            return reg
        self.emit(f"ld   {scratch}, {ctx.spill_slot(position)}(r0)")
        return scratch

    # -- expressions --------------------------------------------------------

    def gen_expr(self, ctx: _FunctionContext, node, depth: int) -> None:
        """Generate code leaving the value at eval position ``depth``."""
        self._note_depth(ctx, depth + 1)
        if isinstance(node, ast.Num):
            value = node.value & 0xFFFF
            reg = self._reg(depth)
            if reg is not None:
                self.emit(f"li   {reg}, {value}")
            else:
                self.emit(f"li   r5, {value}")
                self._store_position(ctx, depth, "r5")
            return
        if isinstance(node, ast.Var):
            self._gen_load_var(ctx, node, depth)
            return
        if isinstance(node, ast.Index):
            decl = self.globals.get(node.name)
            if decl is None or decl.size is None:
                raise CodegenError(f"{node.name!r} is not an array", node.line)
            self.gen_expr(ctx, node.index, depth)
            idx = self._load_position(ctx, depth, "r5")
            self.emit(f"addi r5, {idx}, g_{node.name}")
            self.emit("ld   r5, 0(r5)")
            self._store_position(ctx, depth, "r5")
            return
        if isinstance(node, ast.Unary):
            self.gen_expr(ctx, node.operand, depth)
            operand = self._load_position(ctx, depth, "r5")
            if node.op == "-":
                self.emit(f"neg  r5, {operand}")
            elif node.op == "~":
                self.emit(f"not  r5, {operand}")
            else:  # "!"
                self.emit(f"sltiu r5, {operand}, 1")
            self._store_position(ctx, depth, "r5")
            return
        if isinstance(node, ast.Binary):
            self.gen_expr(ctx, node.left, depth)
            self.gen_expr(ctx, node.right, depth + 1)
            a = self._load_position(ctx, depth, "r5")
            b = self._load_position(ctx, depth + 1, "r6")
            self._gen_binary_op(node.op, a, b, node.line)
            self._store_position(ctx, depth, "r5")
            return
        if isinstance(node, ast.Logical):
            self._gen_logical(ctx, node, depth)
            return
        if isinstance(node, ast.Call):
            self._gen_call(ctx, node, depth)
            return
        raise CodegenError(f"cannot compile {type(node).__name__}")

    def _gen_load_var(self, ctx, node: ast.Var, depth: int) -> None:
        slot = ctx.slot_of(node.name)
        if slot is not None:
            self.emit(f"ld   r5, {slot}(r0)")
            self._store_position(ctx, depth, "r5")
            return
        decl = self.globals.get(node.name)
        if decl is None:
            raise CodegenError(f"unknown variable {node.name!r}", node.line)
        if decl.size is not None:
            raise CodegenError(
                f"array {node.name!r} used as a scalar", node.line
            )
        self.emit(f"ld   r5, g_{node.name}(r0)")
        self._store_position(ctx, depth, "r5")

    def _gen_binary_op(self, op: str, a: str, b: str, line: int) -> None:
        """Compute ``a op b`` into r5 (a and b may be r5/r6)."""
        simple = {
            "+": "add", "-": "sub", "*": "mul", "/": "divu", "%": "remu",
            "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
        }
        if op in simple:
            self.emit(f"{simple[op]:4s} r5, {a}, {b}")
            return
        if op == "==":
            self.emit(f"sub  r5, {a}, {b}")
            self.emit("sltiu r5, r5, 1")
            return
        if op == "!=":
            self.emit(f"sub  r5, {a}, {b}")
            self.emit("sltu r5, r0, r5")
            return
        if op == "<":
            self.emit(f"slt  r5, {a}, {b}")
            return
        if op == ">":
            self.emit(f"slt  r5, {b}, {a}")
            return
        if op == "<=":
            self.emit(f"slt  r5, {b}, {a}")
            self.emit("xori r5, r5, 1")
            return
        if op == ">=":
            self.emit(f"slt  r5, {a}, {b}")
            self.emit("xori r5, r5, 1")
            return
        raise CodegenError(f"unknown operator {op!r}", line)

    def _gen_logical(self, ctx, node: ast.Logical, depth: int) -> None:
        end = self.new_label("lend")
        short = self.new_label("lshort")
        self.gen_expr(ctx, node.left, depth)
        left = self._load_position(ctx, depth, "r5")
        if node.op == "&&":
            self.emit(f"beqz {left}, {short}")
        else:  # "||"
            self.emit(f"bnez {left}, {short}")
        self.gen_expr(ctx, node.right, depth)
        right = self._load_position(ctx, depth, "r5")
        self.emit(f"sltu r5, r0, {right}")  # normalise to 0/1
        self._store_position(ctx, depth, "r5")
        self.emit(f"jmp  {end}")
        self.emit_label(short)
        self.emit(f"li   r5, {0 if node.op == '&&' else 1}")
        self._store_position(ctx, depth, "r5")
        self.emit_label(end)

    def _gen_call(self, ctx, node: ast.Call, depth: int) -> None:
        if node.name == "in":
            if node.args:
                raise CodegenError("in() takes no arguments", node.line)
            self.emit(f"ld   r5, {INPUT_PORT}(r0)")
            self._store_position(ctx, depth, "r5")
            return
        fn = self.functions.get(node.name)
        if fn is None:
            raise CodegenError(f"unknown function {node.name!r}", node.line)
        if len(node.args) != len(fn.params):
            raise CodegenError(
                f"{node.name}() expects {len(fn.params)} args, "
                f"got {len(node.args)}",
                node.line,
            )
        callee = self.contexts[node.name]
        # Evaluate every argument onto the eval stack.
        for offset, arg in enumerate(node.args):
            self.gen_expr(ctx, arg, depth + offset)
        # Flush live register positions (0 .. depth+nargs-1) to their
        # home slots: the callee clobbers the whole register window.
        live = min(depth + len(node.args), REG_WINDOW)
        for position in range(live):
            self._note_depth(ctx, position + 1)
            self.emit(
                f"st   r{position + 1}, {ctx.spill_slot(position)}(r0)"
            )
        # Copy the evaluated arguments into the callee's parameter slots.
        for offset in range(len(node.args)):
            position = depth + offset
            src = ctx.spill_slot(position)
            dst = f"{callee.frame_label}+{1 + offset}"
            self.emit(f"ld   r5, {src}(r0)")
            self.emit(f"st   r5, {dst}(r0)")
        self.emit(f"call fn_{node.name}")
        # Result arrives in r1; park it, restore the window, place it.
        self.emit("mov  r5, r1")
        for position in range(min(depth, REG_WINDOW)):
            self.emit(
                f"ld   r{position + 1}, {ctx.spill_slot(position)}(r0)"
            )
        self._store_position(ctx, depth, "r5")

    # -- statements -----------------------------------------------------------

    def gen_statement(self, ctx: _FunctionContext, node) -> None:
        if isinstance(node, ast.LocalDecl):
            slot = ctx.slot_of(node.name)
            assert slot is not None
            self.emit(f"st   r0, {slot}(r0)")
            return
        if isinstance(node, ast.Assign):
            self._gen_assign(ctx, node)
            return
        if isinstance(node, ast.If):
            self._gen_if(ctx, node)
            return
        if isinstance(node, ast.While):
            self._gen_while(ctx, node)
            return
        if isinstance(node, ast.For):
            self._gen_for(ctx, node)
            return
        if isinstance(node, ast.Out):
            self.gen_expr(ctx, node.value, 0)
            value = self._load_position(ctx, 0, "r5")
            self.emit(f"st   {value}, {OUTPUT_PORT}(r0)")
            return
        if isinstance(node, ast.Return):
            if node.value is not None:
                self.gen_expr(ctx, node.value, 0)
                value = self._load_position(ctx, 0, "r5")
                if value != "r1":
                    self.emit(f"mov  r1, {value}")
            else:
                self.emit("li   r1, 0")
            self.emit(f"jmp  ret_{ctx.fn.name}")
            return
        if isinstance(node, ast.Halt):
            self.emit("halt")
            return
        if isinstance(node, ast.Break):
            if not self._loop_stack:
                raise CodegenError("break outside a loop", node.line)
            self.emit(f"jmp  {self._loop_stack[-1][0]}")
            return
        if isinstance(node, ast.Continue):
            if not self._loop_stack:
                raise CodegenError("continue outside a loop", node.line)
            self.emit(f"jmp  {self._loop_stack[-1][1]}")
            return
        if isinstance(node, ast.ExprStatement):
            self.gen_expr(ctx, node.value, 0)
            return
        raise CodegenError(f"cannot compile {type(node).__name__}")

    def _gen_assign(self, ctx, node: ast.Assign) -> None:
        target = node.target
        if isinstance(target, ast.Var):
            self.gen_expr(ctx, node.value, 0)
            value = self._load_position(ctx, 0, "r5")
            slot = ctx.slot_of(target.name)
            if slot is not None:
                self.emit(f"st   {value}, {slot}(r0)")
                return
            decl = self.globals.get(target.name)
            if decl is None:
                raise CodegenError(
                    f"unknown variable {target.name!r}", node.line
                )
            if decl.size is not None:
                raise CodegenError(
                    f"cannot assign to array {target.name!r}", node.line
                )
            self.emit(f"st   {value}, g_{target.name}(r0)")
            return
        # Array element: evaluate value at position 0, index at 1.
        decl = self.globals.get(target.name)
        if decl is None or decl.size is None:
            raise CodegenError(f"{target.name!r} is not an array", node.line)
        self.gen_expr(ctx, node.value, 0)
        self.gen_expr(ctx, target.index, 1)
        index = self._load_position(ctx, 1, "r6")
        self.emit(f"addi r6, {index}, g_{target.name}")
        value = self._load_position(ctx, 0, "r5")
        self.emit(f"st   {value}, 0(r6)")

    def _gen_condition(self, ctx, cond, false_label: str) -> None:
        self.gen_expr(ctx, cond, 0)
        value = self._load_position(ctx, 0, "r5")
        self.emit(f"beqz {value}, {false_label}")

    def _gen_if(self, ctx, node: ast.If) -> None:
        else_label = self.new_label("else")
        end_label = self.new_label("endif")
        self._gen_condition(ctx, node.cond, else_label)
        for statement in node.then_body:
            self.gen_statement(ctx, statement)
        if node.else_body:
            self.emit(f"jmp  {end_label}")
            self.emit_label(else_label)
            for statement in node.else_body:
                self.gen_statement(ctx, statement)
            self.emit_label(end_label)
        else:
            self.emit_label(else_label)

    def _gen_while(self, ctx, node: ast.While) -> None:
        top = self.new_label("while")
        end = self.new_label("endwhile")
        self.emit_label(top)
        self._gen_condition(ctx, node.cond, end)
        self._loop_stack.append((end, top))
        for statement in node.body:
            self.gen_statement(ctx, statement)
        self._loop_stack.pop()
        self.emit(f"jmp  {top}")
        self.emit_label(end)

    def _gen_for(self, ctx, node: ast.For) -> None:
        top = self.new_label("for")
        step_label = self.new_label("forstep")
        end = self.new_label("endfor")
        if node.init is not None:
            self.gen_statement(ctx, node.init)
        self.emit_label(top)
        self._gen_condition(ctx, node.cond, end)
        self._loop_stack.append((end, step_label))
        for statement in node.body:
            self.gen_statement(ctx, statement)
        self._loop_stack.pop()
        self.emit_label(step_label)
        if node.step is not None:
            self.gen_statement(ctx, node.step)
        self.emit(f"jmp  {top}")
        self.emit_label(end)

    # -- functions and program ---------------------------------------------------

    def gen_function(self, fn: ast.Function) -> None:
        ctx = self.contexts[fn.name]
        self.emit_label(f"fn_{fn.name}")
        # Prologue: save lr.  Parameters were already written into this
        # frame's slots by the caller.
        self.emit(f"st   lr, {ctx.frame_label}+0(r0)")
        for statement in fn.body:
            self.gen_statement(ctx, statement)
        # Implicit return 0 on fall-through.
        self.emit("li   r1, 0")
        self.emit_label(f"ret_{fn.name}")
        self.emit(f"ld   lr, {ctx.frame_label}+0(r0)")
        self.emit("ret")

    def generate(self) -> str:
        # Startup stub.
        self.emit_label("__start")
        self.emit("call fn_main")
        self.emit("halt")
        for fn in self.program.functions:
            self.gen_function(fn)
        # Data section: globals, then frames (sizes known only now).
        data: List[str] = [f".data {DATA_BASE:#x}"]
        for decl in self.program.globals:
            if decl.size is None:
                value = decl.initializer[0] if decl.initializer else 0
                data.append(f"g_{decl.name}: .word {value & 0xFFFF}")
            else:
                init = [v & 0xFFFF for v in decl.initializer]
                parts = [f"g_{decl.name}:"]
                if init:
                    parts.append(f" .word {', '.join(str(v) for v in init)}")
                data.append("".join(parts))
                remainder = decl.size - len(init)
                if remainder > 0:
                    data.append(f".space {remainder}")
        for fn in self.program.functions:
            ctx = self.contexts[fn.name]
            data.append(f"{ctx.frame_label}: .space {max(1, ctx.frame_words)}")
        header = "; generated by the NVC compiler\n"
        return header + "\n".join(data) + "\n.text\n" + "\n".join(self.lines) + "\n"


def compile_program(tree: ast.Program, optimize: bool = False) -> CompiledProgram:
    """Compile a parsed NVC program to an assembled NV16 binary.

    Frame sizes depend on the deepest expression spill, which is only
    known after code generation — that is why the data section (where
    the frame ``.space`` directives live) is emitted last.

    Args:
        optimize: run the constant folder / branch pruner first.
    """
    if optimize:
        from repro.lang.optimize import optimize as fold

        tree = fold(tree)
    asm = _Codegen(tree).generate()
    program = assemble(asm)
    return CompiledProgram(asm=asm, program=program, source="")


def compile_source(source: str, optimize: bool = False) -> CompiledProgram:
    """Compile NVC source text to an assembled NV16 binary.

    Args:
        optimize: run the constant folder / branch pruner first.

    Raises:
        LexError / ParseError / CodegenError on the respective stage's
        failures.
    """
    compiled = compile_program(parse(source), optimize=optimize)
    compiled.source = source
    return compiled
