"""Abstract syntax tree for NVC.

All nodes are frozen dataclasses; line numbers are carried for error
reporting.  Semantics are 16-bit: arithmetic wraps modulo 2¹⁶,
comparisons are signed (matching NV16's ``slt``/``blt``), and shift
amounts are taken modulo 16.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

# ---- expressions -----------------------------------------------------------


@dataclass(frozen=True)
class Num:
    """Integer literal."""

    value: int
    line: int = 0


@dataclass(frozen=True)
class Var:
    """Scalar variable reference."""

    name: str
    line: int = 0


@dataclass(frozen=True)
class Index:
    """Array element reference ``name[expr]``."""

    name: str
    index: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Unary:
    """Unary operator: ``-``, ``~`` or ``!``."""

    op: str
    operand: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Binary:
    """Binary operator (arithmetic, bitwise, comparison)."""

    op: str
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Logical:
    """Short-circuit ``&&`` / ``||``."""

    op: str
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Call:
    """Function call ``name(args...)``; ``in()`` is the input builtin."""

    name: str
    args: Tuple["Expr", ...]
    line: int = 0


Expr = (Num, Var, Index, Unary, Binary, Logical, Call)

# ---- statements -------------------------------------------------------------


@dataclass(frozen=True)
class Assign:
    """``target = value;`` where target is a Var or Index."""

    target: object
    value: object
    line: int = 0


@dataclass(frozen=True)
class If:
    """``if (cond) {...} [else {...}]``."""

    cond: object
    then_body: Tuple
    else_body: Tuple = ()
    line: int = 0


@dataclass(frozen=True)
class While:
    """``while (cond) {...}``."""

    cond: object
    body: Tuple
    line: int = 0


@dataclass(frozen=True)
class For:
    """``for (init; cond; step) {...}`` (init/step are assignments)."""

    init: Optional[Assign]
    cond: object
    step: Optional[Assign]
    body: Tuple
    line: int = 0


@dataclass(frozen=True)
class Out:
    """``out(expr);`` — stream to the MMIO output port."""

    value: object
    line: int = 0


@dataclass(frozen=True)
class Return:
    """``return [expr];``."""

    value: Optional[object] = None
    line: int = 0


@dataclass(frozen=True)
class Halt:
    """``halt;`` — stop the core."""

    line: int = 0


@dataclass(frozen=True)
class Break:
    """``break;`` — leave the innermost loop."""

    line: int = 0


@dataclass(frozen=True)
class Continue:
    """``continue;`` — next iteration of the innermost loop."""

    line: int = 0


@dataclass(frozen=True)
class ExprStatement:
    """An expression evaluated for its side effects (a call)."""

    value: object
    line: int = 0


@dataclass(frozen=True)
class LocalDecl:
    """``int name;`` inside a function body (scalars only)."""

    name: str
    line: int = 0


Statement = (
    Assign, If, While, For, Out, Return, Halt, Break, Continue,
    ExprStatement, LocalDecl,
)

# ---- top level -----------------------------------------------------------------


@dataclass(frozen=True)
class GlobalDecl:
    """``int name [= n];`` or ``int name[size] [= {..}];`` at top level."""

    name: str
    size: Optional[int] = None  # None => scalar
    initializer: Tuple[int, ...] = ()
    line: int = 0

    @property
    def words(self) -> int:
        """Words of storage this global occupies."""
        return 1 if self.size is None else self.size


@dataclass(frozen=True)
class Function:
    """``func name(params...) { body }``."""

    name: str
    params: Tuple[str, ...]
    body: Tuple
    line: int = 0


@dataclass(frozen=True)
class Program:
    """A parsed NVC compilation unit."""

    globals: Tuple[GlobalDecl, ...] = field(default=())
    functions: Tuple[Function, ...] = field(default=())

    def function(self, name: str) -> Function:
        """Look up a function by name.

        Raises:
            KeyError: if it does not exist.
        """
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function named {name!r}")
