"""Intermittency lint: flag NVC patterns that break replay idempotence.

An NVP rollback restores registers (and locals, which live in the
frame image) but *not* nonvolatile global memory: any global the
program both reads and writes can be observed half-updated after a
rollback, and read-modify-write accumulators (``hist[b] = hist[b] + 1``)
double-count when the span is replayed.  This is the
memory-consistency hazard the DATE'17 tutorial lists among the open
NVP challenges; intermittent-programming systems (Chain, Alpaca,
Ratchet) exist precisely to eliminate it.

The linter performs the static check those systems automate: it
reports every global that a function both reads and writes
(``read-modify-write``), with a stronger warning when the write target
and read source are the same array (a true accumulator pattern).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple, Union

from repro.lang import ast
from repro.lang.parser import parse


@dataclass(frozen=True)
class LintWarning:
    """One idempotence hazard.

    Attributes:
        function: the function containing the hazard.
        name: the global involved.
        kind: ``"read-modify-write"`` (global read and written in the
            same function) or ``"self-accumulate"`` (a single statement
            reads and writes the same global — the strongest signal).
        line: source line of the offending write.
    """

    function: str
    name: str
    kind: str
    line: int


def _expr_reads(node, reads: Set[str]) -> None:
    if isinstance(node, ast.Var):
        reads.add(node.name)
    elif isinstance(node, ast.Index):
        reads.add(node.name)
        _expr_reads(node.index, reads)
    elif isinstance(node, ast.Unary):
        _expr_reads(node.operand, reads)
    elif isinstance(node, (ast.Binary, ast.Logical)):
        _expr_reads(node.left, reads)
        _expr_reads(node.right, reads)
    elif isinstance(node, ast.Call):
        for arg in node.args:
            _expr_reads(arg, reads)


def _walk_statements(body, visit) -> None:
    for node in body:
        visit(node)
        if isinstance(node, ast.If):
            _walk_statements(node.then_body, visit)
            _walk_statements(node.else_body, visit)
        elif isinstance(node, ast.While):
            _walk_statements(node.body, visit)
        elif isinstance(node, ast.For):
            if node.init is not None:
                visit(node.init)
            if node.step is not None:
                visit(node.step)
            _walk_statements(node.body, visit)


def lint(program: Union[str, ast.Program]) -> List[LintWarning]:
    """Report replay-idempotence hazards in an NVC program.

    Returns warnings ordered by (function, line).
    """
    tree = parse(program) if isinstance(program, str) else program
    global_names = {decl.name for decl in tree.globals}
    warnings: List[LintWarning] = []

    for fn in tree.functions:
        local_names = set(fn.params) | set(
            node.name
            for node in _flatten(fn.body)
            if isinstance(node, ast.LocalDecl)
        )
        reads: Set[str] = set()
        writes: List[Tuple[str, int]] = []
        self_accumulates: List[Tuple[str, int]] = []

        def visit(node) -> None:
            if isinstance(node, ast.Assign):
                _expr_reads(node.value, reads)
                target = node.target
                statement_reads: Set[str] = set()
                _expr_reads(node.value, statement_reads)
                if isinstance(target, ast.Index):
                    _expr_reads(target.index, reads)
                    _expr_reads(target.index, statement_reads)
                name = target.name
                if name in global_names and name not in local_names:
                    writes.append((name, node.line))
                    if name in statement_reads:
                        self_accumulates.append((name, node.line))
            elif isinstance(node, (ast.Out, ast.ExprStatement)):
                _expr_reads(node.value, reads)
            elif isinstance(node, ast.Return) and node.value is not None:
                _expr_reads(node.value, reads)
            elif isinstance(node, ast.If):
                _expr_reads(node.cond, reads)
            elif isinstance(node, ast.While):
                _expr_reads(node.cond, reads)
            elif isinstance(node, ast.For):
                _expr_reads(node.cond, reads)

        _walk_statements(fn.body, visit)

        reported: Set[Tuple[str, str]] = set()
        for name, line in self_accumulates:
            if (name, "self-accumulate") not in reported:
                warnings.append(
                    LintWarning(fn.name, name, "self-accumulate", line)
                )
                reported.add((name, "self-accumulate"))
        for name, line in writes:
            if name in reads and (name, "read-modify-write") not in reported:
                if (name, "self-accumulate") in reported:
                    continue  # already covered by the stronger warning
                warnings.append(
                    LintWarning(fn.name, name, "read-modify-write", line)
                )
                reported.add((name, "read-modify-write"))

    warnings.sort(key=lambda w: (w.function, w.line, w.name))
    return warnings


def _flatten(body) -> List:
    out: List = []

    def visit(node) -> None:
        out.append(node)

    _walk_statements(body, visit)
    return out
