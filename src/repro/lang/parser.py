"""Recursive-descent parser for NVC."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lang import ast
from repro.lang.lexer import Token, tokenize


class ParseError(Exception):
    """Raised on any syntax error, with line context."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


#: Binary operator precedence tiers, weakest first.  ``&&``/``||`` are
#: handled separately (short-circuit nodes).
_PRECEDENCE: Tuple[Tuple[str, ...], ...] = (
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            want = text if text is not None else kind
            raise ParseError(
                f"expected {want!r}, got {self.current.text!r}", self.current.line
            )
        return self.advance()

    # -- top level -----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        globals_: List[ast.GlobalDecl] = []
        functions: List[ast.Function] = []
        while not self.check("eof"):
            if self.check("kw", "int"):
                globals_.append(self.parse_global())
            elif self.check("kw", "func"):
                functions.append(self.parse_function())
            else:
                raise ParseError(
                    f"expected declaration, got {self.current.text!r}",
                    self.current.line,
                )
        names = [g.name for g in globals_] + [f.name for f in functions]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ParseError(f"duplicate names: {sorted(duplicates)}", 1)
        return ast.Program(globals=tuple(globals_), functions=tuple(functions))

    def parse_global(self) -> ast.GlobalDecl:
        line = self.expect("kw", "int").line
        name = self.expect("ident").text
        size: Optional[int] = None
        initializer: Tuple[int, ...] = ()
        if self.accept("op", "["):
            size_token = self.expect("num")
            size = size_token.value
            if size <= 0:
                raise ParseError("array size must be positive", size_token.line)
            self.expect("op", "]")
        if self.accept("op", "="):
            if size is None:
                initializer = (self._signed_number(),)
            else:
                self.expect("op", "{")
                values = [self._signed_number()]
                while self.accept("op", ","):
                    values.append(self._signed_number())
                self.expect("op", "}")
                if len(values) > size:
                    raise ParseError(
                        f"{len(values)} initialisers for array of {size}", line
                    )
                initializer = tuple(values)
        self.expect("op", ";")
        return ast.GlobalDecl(name=name, size=size, initializer=initializer, line=line)

    def _signed_number(self) -> int:
        negative = self.accept("op", "-") is not None
        value = self.expect("num").value
        return -value if negative else value

    def parse_function(self) -> ast.Function:
        line = self.expect("kw", "func").line
        name = self.expect("ident").text
        self.expect("op", "(")
        params: List[str] = []
        if not self.check("op", ")"):
            params.append(self.expect("ident").text)
            while self.accept("op", ","):
                params.append(self.expect("ident").text)
        self.expect("op", ")")
        if len(params) != len(set(params)):
            raise ParseError("duplicate parameter names", line)
        body = self.parse_block()
        return ast.Function(name=name, params=tuple(params), body=body, line=line)

    # -- statements -------------------------------------------------------------

    def parse_block(self) -> Tuple:
        self.expect("op", "{")
        statements: List = []
        while not self.check("op", "}"):
            statements.append(self.parse_statement())
        self.expect("op", "}")
        return tuple(statements)

    def parse_statement(self):
        token = self.current
        if token.kind == "kw":
            if token.text == "int":
                self.advance()
                name = self.expect("ident").text
                if self.check("op", "["):
                    raise ParseError("local arrays are not supported", token.line)
                self.expect("op", ";")
                return ast.LocalDecl(name=name, line=token.line)
            if token.text == "if":
                return self.parse_if()
            if token.text == "while":
                return self.parse_while()
            if token.text == "for":
                return self.parse_for()
            if token.text == "out":
                self.advance()
                self.expect("op", "(")
                value = self.parse_expression()
                self.expect("op", ")")
                self.expect("op", ";")
                return ast.Out(value=value, line=token.line)
            if token.text == "return":
                self.advance()
                value = None
                if not self.check("op", ";"):
                    value = self.parse_expression()
                self.expect("op", ";")
                return ast.Return(value=value, line=token.line)
            if token.text == "halt":
                self.advance()
                self.expect("op", ";")
                return ast.Halt(line=token.line)
            if token.text == "break":
                self.advance()
                self.expect("op", ";")
                return ast.Break(line=token.line)
            if token.text == "continue":
                self.advance()
                self.expect("op", ";")
                return ast.Continue(line=token.line)
        if token.kind == "ident":
            # Either an assignment or a call statement.
            next_token = self.tokens[self.pos + 1]
            if next_token.kind == "op" and next_token.text == "(":
                expr = self.parse_expression()
                self.expect("op", ";")
                return ast.ExprStatement(value=expr, line=token.line)
            assign = self.parse_assignment()
            self.expect("op", ";")
            return assign
        raise ParseError(f"unexpected token {token.text!r}", token.line)

    def parse_assignment(self) -> ast.Assign:
        name_token = self.expect("ident")
        if self.accept("op", "["):
            index = self.parse_expression()
            self.expect("op", "]")
            target: object = ast.Index(
                name=name_token.text, index=index, line=name_token.line
            )
        else:
            target = ast.Var(name=name_token.text, line=name_token.line)
        self.expect("op", "=")
        value = self.parse_expression()
        return ast.Assign(target=target, value=value, line=name_token.line)

    def parse_if(self) -> ast.If:
        line = self.expect("kw", "if").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then_body = self.parse_block()
        else_body: Tuple = ()
        if self.accept("kw", "else"):
            if self.check("kw", "if"):
                else_body = (self.parse_if(),)
            else:
                else_body = self.parse_block()
        return ast.If(cond=cond, then_body=then_body, else_body=else_body, line=line)

    def parse_while(self) -> ast.While:
        line = self.expect("kw", "while").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_block()
        return ast.While(cond=cond, body=body, line=line)

    def parse_for(self) -> ast.For:
        line = self.expect("kw", "for").line
        self.expect("op", "(")
        init = None
        if not self.check("op", ";"):
            init = self.parse_assignment()
        self.expect("op", ";")
        cond = None
        if not self.check("op", ";"):
            cond = self.parse_expression()
        self.expect("op", ";")
        step = None
        if not self.check("op", ")"):
            step = self.parse_assignment()
        self.expect("op", ")")
        body = self.parse_block()
        if cond is None:
            cond = ast.Num(value=1, line=line)
        return ast.For(init=init, cond=cond, step=step, body=body, line=line)

    # -- expressions ---------------------------------------------------------------

    def parse_expression(self):
        return self.parse_or()

    def parse_or(self):
        left = self.parse_and()
        while self.check("op", "||"):
            line = self.advance().line
            right = self.parse_and()
            left = ast.Logical(op="||", left=left, right=right, line=line)
        return left

    def parse_and(self):
        left = self.parse_binary(0)
        while self.check("op", "&&"):
            line = self.advance().line
            right = self.parse_binary(0)
            left = ast.Logical(op="&&", left=left, right=right, line=line)
        return left

    def parse_binary(self, tier: int):
        if tier >= len(_PRECEDENCE):
            return self.parse_unary()
        left = self.parse_binary(tier + 1)
        while self.current.kind == "op" and self.current.text in _PRECEDENCE[tier]:
            op_token = self.advance()
            right = self.parse_binary(tier + 1)
            left = ast.Binary(
                op=op_token.text, left=left, right=right, line=op_token.line
            )
        return left

    def parse_unary(self):
        token = self.current
        if token.kind == "op" and token.text in ("-", "~", "!"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(op=token.text, operand=operand, line=token.line)
        return self.parse_primary()

    def parse_primary(self):
        token = self.current
        if token.kind == "num":
            self.advance()
            return ast.Num(value=token.value, line=token.line)
        if token.kind == "kw" and token.text == "in":
            self.advance()
            self.expect("op", "(")
            self.expect("op", ")")
            return ast.Call(name="in", args=(), line=token.line)
        if token.kind == "ident":
            self.advance()
            if self.accept("op", "("):
                args: List = []
                if not self.check("op", ")"):
                    args.append(self.parse_expression())
                    while self.accept("op", ","):
                        args.append(self.parse_expression())
                self.expect("op", ")")
                return ast.Call(name=token.text, args=tuple(args), line=token.line)
            if self.accept("op", "["):
                index = self.parse_expression()
                self.expect("op", "]")
                return ast.Index(name=token.text, index=index, line=token.line)
            return ast.Var(name=token.text, line=token.line)
        if self.accept("op", "("):
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {token.text!r}", token.line)


def parse(source: str) -> ast.Program:
    """Parse NVC source into an :class:`~repro.lang.ast.Program`.

    Raises:
        LexError: on tokenisation failures.
        ParseError: on syntax errors.
    """
    parser = _Parser(tokenize(source))
    return parser.parse_program()
