"""NVC: a small C-like language compiled to NV16.

Real NVP toolchains compile annotated C; this package provides the
equivalent for the NV16 substrate — a compact imperative language with
16-bit integers, 1-D arrays, functions, and the control flow needed to
write sensing kernels:

.. code-block:: c

    int src[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    int total;

    func sum(n) {
        int i; int acc;
        acc = 0;
        for (i = 0; i < n; i = i + 1) { acc = acc + src[i]; }
        return acc;
    }

    func main() {
        total = sum(8);
        out(total);            // stream to the MMIO output port
    }

The pipeline is ``source → lex → parse → (interpret | codegen → NV16
assembly → Program)``.  The tree-walking interpreter implements the
same 16-bit semantics as the generated code and serves as the
cross-check oracle in the test suite.
"""

from repro.lang.lexer import LexError, Token, tokenize
from repro.lang.parser import ParseError, parse
from repro.lang.interp import InterpError, interpret
from repro.lang.codegen import CodegenError, compile_program, compile_source
from repro.lang.lint import LintWarning, lint

__all__ = [
    "CodegenError",
    "InterpError",
    "LexError",
    "LintWarning",
    "ParseError",
    "Token",
    "compile_program",
    "compile_source",
    "interpret",
    "lint",
    "parse",
    "tokenize",
]
