"""The :class:`PowerTrace` container.

A power trace is a uniformly sampled sequence of instantaneous power
values (watts).  The published NVP simulation methodology samples
harvested power every 0.1 ms; that is the default tick everywhere in
this framework.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

DEFAULT_DT_S = 1e-4  # 0.1 ms, the published trace-sampling period.


class PowerTrace:
    """A uniformly sampled power-versus-time series.

    Attributes:
        samples_w: instantaneous power per tick, watts (non-negative).
        dt_s: sampling period, seconds.
        source: free-form label of the generating source.
    """

    def __init__(
        self, samples_w, dt_s: float = DEFAULT_DT_S, source: str = "unknown"
    ) -> None:
        # The whole fast path (vectorized rectification, cumulative
        # harvest pre-pass, bulk charging) assumes a contiguous float64
        # array; guarantee it here once instead of casting per tick.
        samples = np.ascontiguousarray(samples_w, dtype=np.float64)
        if samples.ndim != 1:
            raise ValueError("power trace must be one-dimensional")
        if len(samples) == 0:
            raise ValueError("power trace cannot be empty")
        if dt_s <= 0:
            raise ValueError("sampling period must be positive")
        if np.any(samples < 0):
            raise ValueError("power samples cannot be negative")
        self.samples_w = samples
        self.dt_s = float(dt_s)
        self.source = source

    # -- basic properties ------------------------------------------------

    def __len__(self) -> int:
        return len(self.samples_w)

    def __iter__(self) -> Iterator[float]:
        return iter(self.samples_w)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PowerTrace):
            return NotImplemented
        return (
            self.dt_s == other.dt_s
            and self.source == other.source
            and np.array_equal(self.samples_w, other.samples_w)
        )

    @property
    def duration_s(self) -> float:
        """Total trace duration in seconds."""
        return len(self.samples_w) * self.dt_s

    @property
    def mean_power_w(self) -> float:
        """Mean power over the trace."""
        return float(self.samples_w.mean())

    @property
    def peak_power_w(self) -> float:
        """Maximum instantaneous power."""
        return float(self.samples_w.max())

    @property
    def total_energy_j(self) -> float:
        """Total harvested energy over the trace."""
        return float(self.samples_w.sum() * self.dt_s)

    def power_at(self, t_s: float) -> float:
        """Instantaneous power at time ``t_s`` (zero-order hold).

        Raises:
            ValueError: if ``t_s`` is outside the trace.
        """
        if t_s < 0 or t_s >= self.duration_s:
            raise ValueError(f"t={t_s} outside trace of {self.duration_s}s")
        return float(self.samples_w[int(t_s / self.dt_s)])

    # -- transformations ---------------------------------------------------

    def scaled_to_mean(self, mean_power_w: float) -> "PowerTrace":
        """Return a copy rescaled to the requested mean power."""
        if mean_power_w < 0:
            raise ValueError("mean power cannot be negative")
        current = self.mean_power_w
        if current == 0:
            raise ValueError("cannot rescale an all-zero trace to a nonzero mean")
        return PowerTrace(
            self.samples_w * (mean_power_w / current), self.dt_s, self.source
        )

    def clipped(self, max_power_w: float) -> "PowerTrace":
        """Return a copy with power clipped to ``max_power_w``."""
        if max_power_w < 0:
            raise ValueError("clip level cannot be negative")
        return PowerTrace(
            np.minimum(self.samples_w, max_power_w), self.dt_s, self.source
        )

    def slice(self, start_s: float, stop_s: float) -> "PowerTrace":
        """Return the sub-trace covering ``[start_s, stop_s)``."""
        if not 0 <= start_s < stop_s <= self.duration_s + 1e-12:
            raise ValueError("invalid slice bounds")
        i0 = int(round(start_s / self.dt_s))
        i1 = int(round(stop_s / self.dt_s))
        return PowerTrace(self.samples_w[i0:i1].copy(), self.dt_s, self.source)

    def offset_ticks(self, offset_s: float) -> int:
        """Tick index of a time offset (round to nearest sample).

        The fleet engine staggers devices along one shared trace by
        starting each at its own offset; this is the one conversion
        both the batched kernel and the single-device replay path use,
        so a device's sub-trace is defined identically everywhere.

        Raises:
            ValueError: offset is negative or at/past the trace end.
        """
        if offset_s < 0:
            raise ValueError("trace offset cannot be negative")
        index = int(round(offset_s / self.dt_s))
        if index >= len(self.samples_w):
            raise ValueError(
                f"trace offset {offset_s}s is at/past the trace end "
                f"({self.duration_s}s)"
            )
        return index

    def tail(self, offset_s: float) -> "PowerTrace":
        """The sub-trace from ``offset_s`` to the end of the trace."""
        index = self.offset_ticks(offset_s)
        return PowerTrace(
            self.samples_w[index:].copy(), self.dt_s, self.source
        )

    def repeated(self, times: int) -> "PowerTrace":
        """Return the trace tiled ``times`` times."""
        if times < 1:
            raise ValueError("repeat count must be at least 1")
        return PowerTrace(np.tile(self.samples_w, times), self.dt_s, self.source)

    def resampled(self, dt_s: float) -> "PowerTrace":
        """Return a copy resampled to a new period (linear interpolation)."""
        if dt_s <= 0:
            raise ValueError("sampling period must be positive")
        old_t = np.arange(len(self.samples_w)) * self.dt_s
        n_new = max(1, int(round(self.duration_s / dt_s)))
        new_t = np.arange(n_new) * dt_s
        samples = np.interp(new_t, old_t, self.samples_w)
        return PowerTrace(samples, dt_s, self.source)

    # -- persistence ---------------------------------------------------------

    def save(self, path: str) -> None:
        """Save to an ``.npz`` file."""
        np.savez_compressed(
            path, samples_w=self.samples_w, dt_s=self.dt_s, source=self.source
        )

    @classmethod
    def load(cls, path: str) -> "PowerTrace":
        """Load a trace saved with :meth:`save`."""
        data = np.load(path, allow_pickle=False)
        return cls(data["samples_w"], float(data["dt_s"]), str(data["source"]))

    def __repr__(self) -> str:
        return (
            f"PowerTrace(source={self.source!r}, n={len(self)}, "
            f"dt={self.dt_s * 1e3:.3g}ms, mean={self.mean_power_w * 1e6:.3g}uW, "
            f"peak={self.peak_power_w * 1e6:.3g}uW)"
        )
