"""Stochastic power-trace generators per harvesting-source class.

Each generator synthesises a :class:`~repro.harvest.traces.PowerTrace`
whose statistics match the published envelopes for that source class:

* **wristwatch** (kinetic/piezo, unbalanced-ring rotational harvester):
  10–40 µW average, instantaneous swings between ~0 and ~2000 µW, and
  on the order of a thousand sub-threshold emergencies per 10 s.
* **solar** (indoor/ambient): smoother, with occlusion dips.
* **rf** (WiFi/TV RF): packet-like on/off bursts.
* **thermal** (body heat): low but nearly constant.
* **constant** / **square**: deterministic references for tests.

All generators are deterministic given a seed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.harvest.traces import DEFAULT_DT_S, PowerTrace

RngLike = Union[int, np.random.Generator, None]


def _rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _n_samples(duration_s: float, dt_s: float) -> int:
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if dt_s <= 0:
        raise ValueError("sampling period must be positive")
    n = int(round(duration_s / dt_s))
    if n < 1:
        raise ValueError("duration shorter than one sample")
    return n


def _ou_process(
    n: int,
    dt_s: float,
    tau_s: float,
    sigma: float,
    rng: np.random.Generator,
    x0: float = 0.0,
) -> np.ndarray:
    """Ornstein–Uhlenbeck process with unit mean-reversion target 0."""
    alpha = float(np.exp(-dt_s / tau_s))
    noise_scale = sigma * float(np.sqrt(1.0 - alpha * alpha))
    steps = rng.standard_normal(n) * noise_scale
    x = np.empty(n)
    value = x0
    for i in range(n):
        value = alpha * value + steps[i]
        x[i] = value
    return x


def constant_trace(
    power_w: float, duration_s: float, dt_s: float = DEFAULT_DT_S
) -> PowerTrace:
    """A perfectly stable supply (the oracle reference)."""
    if power_w < 0:
        raise ValueError("power cannot be negative")
    n = _n_samples(duration_s, dt_s)
    return PowerTrace(np.full(n, power_w), dt_s, source="constant")


def square_trace(
    high_w: float,
    low_w: float,
    period_s: float,
    duty: float,
    duration_s: float,
    dt_s: float = DEFAULT_DT_S,
) -> PowerTrace:
    """Deterministic on/off supply (used heavily in unit tests)."""
    if not 0.0 <= duty <= 1.0:
        raise ValueError("duty must be in [0, 1]")
    if period_s <= 0:
        raise ValueError("period must be positive")
    if high_w < 0 or low_w < 0:
        raise ValueError("power levels cannot be negative")
    n = _n_samples(duration_s, dt_s)
    t = np.arange(n) * dt_s
    phase = np.mod(t, period_s) / period_s
    samples = np.where(phase < duty, high_w, low_w)
    return PowerTrace(samples, dt_s, source="square")


def wristwatch_trace(
    duration_s: float,
    dt_s: float = DEFAULT_DT_S,
    mean_power_w: float = 25e-6,
    peak_power_w: float = 2000e-6,
    seed: RngLike = None,
) -> PowerTrace:
    """Kinetic wrist-worn harvester: bursty, heavy-tailed, gated by motion.

    The model is a log-space OU process with a ~2 ms correlation time
    (the rectified ring oscillation), multiplied by a two-state motion
    gate (bouts of activity alternating with near-still periods), then
    rescaled to the requested mean and clipped at the requested peak.
    """
    rng = _rng(seed)
    n = _n_samples(duration_s, dt_s)
    # Fast log-normal fluctuation around the motion envelope.  The 4 ms
    # correlation time reproduces the published emergency rate
    # (1000-2000 sub-33uW emergencies per 10 s window).
    log_fluct = _ou_process(n, dt_s, tau_s=4e-3, sigma=1.4, rng=rng)
    # Motion gate: exponential bout/pause durations.
    gate = np.empty(n)
    i = 0
    active = True
    while i < n:
        mean_len_s = 0.8 if active else 0.35
        length = max(1, int(rng.exponential(mean_len_s) / dt_s))
        level = 1.0 if active else 0.02
        gate[i : i + length] = level
        i += length
        active = not active
    base = np.exp(log_fluct) * gate
    trace = PowerTrace(base, dt_s, source="wristwatch")
    trace = trace.scaled_to_mean(mean_power_w).clipped(peak_power_w)
    # Clipping reduces the mean slightly; one corrective rescale keeps the
    # requested average while preserving the clipped shape.
    trace = trace.scaled_to_mean(mean_power_w).clipped(peak_power_w)
    trace.source = "wristwatch"
    return trace


def solar_trace(
    duration_s: float,
    dt_s: float = DEFAULT_DT_S,
    mean_power_w: float = 200e-6,
    seed: RngLike = None,
) -> PowerTrace:
    """Ambient-light harvester: smooth with occasional occlusion dips."""
    rng = _rng(seed)
    n = _n_samples(duration_s, dt_s)
    envelope = 1.0 + 0.25 * _ou_process(n, dt_s, tau_s=0.5, sigma=0.6, rng=rng)
    envelope = np.clip(envelope, 0.0, None)
    # Occlusions: Poisson events dropping power to ~10% for 0.1–1 s.
    occlusion = np.ones(n)
    t = 0.0
    while True:
        t += rng.exponential(3.0)
        if t >= duration_s:
            break
        start = int(t / dt_s)
        length = max(1, int(rng.uniform(0.1, 1.0) / dt_s))
        occlusion[start : start + length] = 0.1
    samples = envelope * occlusion
    trace = PowerTrace(samples, dt_s, source="solar")
    return trace.scaled_to_mean(mean_power_w)


def rf_trace(
    duration_s: float,
    dt_s: float = DEFAULT_DT_S,
    mean_power_w: float = 50e-6,
    duty: float = 0.2,
    burst_s: float = 3e-3,
    seed: RngLike = None,
) -> PowerTrace:
    """RF (WiFi/TV) harvester: packet-like on/off bursts.

    ``burst_s`` is the mean on-burst duration; the off time follows
    from the requested duty cycle.
    """
    if not 0 < duty < 1:
        raise ValueError("duty must be in (0, 1)")
    rng = _rng(seed)
    n = _n_samples(duration_s, dt_s)
    samples = np.full(n, 0.02)  # off-floor before scaling
    i = 0
    off_s = burst_s * (1.0 - duty) / duty
    while i < n:
        off_len = max(1, int(rng.exponential(off_s) / dt_s))
        i += off_len
        if i >= n:
            break
        on_len = max(1, int(rng.exponential(burst_s) / dt_s))
        level = rng.uniform(0.7, 1.3)
        samples[i : i + on_len] = level
        i += on_len
    trace = PowerTrace(samples, dt_s, source="rf")
    return trace.scaled_to_mean(mean_power_w)


def thermal_trace(
    duration_s: float,
    dt_s: float = DEFAULT_DT_S,
    mean_power_w: float = 20e-6,
    seed: RngLike = None,
) -> PowerTrace:
    """Body-heat TEG: low power, slow drift, small ripple."""
    rng = _rng(seed)
    n = _n_samples(duration_s, dt_s)
    drift = 1.0 + 0.1 * _ou_process(n, dt_s, tau_s=5.0, sigma=0.5, rng=rng)
    ripple = 1.0 + 0.02 * rng.standard_normal(n)
    samples = np.clip(drift * ripple, 0.0, None)
    trace = PowerTrace(samples, dt_s, source="thermal")
    return trace.scaled_to_mean(mean_power_w)


#: Named generators for the stochastic sources (signature:
#: ``f(duration_s, dt_s=..., seed=...) -> PowerTrace``).
SOURCE_GENERATORS: Dict[str, Callable[..., PowerTrace]] = {
    "wristwatch": wristwatch_trace,
    "solar": solar_trace,
    "rf": rf_trace,
    "thermal": thermal_trace,
}


def combine_traces(traces: List[PowerTrace], source: str = "hybrid") -> PowerTrace:
    """Sum co-located harvesting sources into one supply trace.

    Multi-source harvesting (e.g. indoor light + body heat) smooths
    the supply: the combined trace's relative variability is lower
    than its burstiest component's.

    Raises:
        ValueError: if the traces differ in length or sampling period.
    """
    if len(traces) < 1:
        raise ValueError("need at least one trace")
    first = traces[0]
    total = np.zeros(len(first))
    for trace in traces:
        if len(trace) != len(first) or trace.dt_s != first.dt_s:
            raise ValueError("traces must share length and sampling period")
        total += trace.samples_w
    return PowerTrace(total, first.dt_s, source=source)


def hybrid_trace(
    duration_s: float,
    sources: Sequence[str] = ("solar", "thermal"),
    dt_s: float = DEFAULT_DT_S,
    seed: RngLike = None,
) -> PowerTrace:
    """A multi-source harvester: the sum of several source classes.

    Args:
        sources: names from :data:`SOURCE_GENERATORS`.

    Raises:
        KeyError: for unknown source names.
    """
    if len(sources) < 1:
        raise ValueError("need at least one source")
    rng = _rng(seed)
    traces = []
    for name in sources:
        if name not in SOURCE_GENERATORS:
            raise KeyError(
                f"unknown source {name!r}; known: {sorted(SOURCE_GENERATORS)}"
            )
        traces.append(SOURCE_GENERATORS[name](duration_s, dt_s, seed=rng))
    return combine_traces(traces, source="+".join(sources))


def standard_profiles(
    duration_s: float = 10.0,
    dt_s: float = DEFAULT_DT_S,
    seed: int = 2017,
    count: int = 5,
) -> List[PowerTrace]:
    """The five standard evaluation profiles.

    Mirrors the published methodology of evaluating against five
    distinct 10 s "daily life" wristwatch profiles; different seeds
    give different daily-activity patterns while keeping the same
    source statistics.
    """
    if count < 1:
        raise ValueError("need at least one profile")
    profiles = []
    means = [25e-6, 18e-6, 14e-6, 30e-6, 12e-6]
    for index in range(count):
        mean = means[index % len(means)]
        trace = wristwatch_trace(
            duration_s, dt_s, mean_power_w=mean, seed=seed + index
        )
        trace.source = f"profile-{index + 1}"
        profiles.append(trace)
    return profiles
