"""CSV import/export for power traces.

Real deployments log harvested power with instruments that export CSV;
this module round-trips :class:`~repro.harvest.traces.PowerTrace`
objects through a simple two-column ``time_s,power_w`` format (header
optional on import) so measured traces can drive the simulator.
"""

from __future__ import annotations

import csv
import io
from typing import TextIO, Union

import numpy as np

from repro.harvest.traces import PowerTrace

Pathish = Union[str, TextIO]


def save_csv(trace: PowerTrace, target: Pathish) -> None:
    """Write a trace as ``time_s,power_w`` CSV (with header)."""
    own = isinstance(target, str)
    stream = open(target, "w", newline="") if own else target
    try:
        writer = csv.writer(stream)
        writer.writerow(["time_s", "power_w"])
        for index, power in enumerate(trace.samples_w):
            writer.writerow([f"{index * trace.dt_s:.9g}", f"{power:.9g}"])
    finally:
        if own:
            stream.close()


def load_csv(source: Pathish, source_name: str = "csv") -> PowerTrace:
    """Read a ``time_s,power_w`` CSV into a trace.

    The sampling period is inferred from the first two timestamps and
    must be uniform (±1%); a header row is detected and skipped.

    Raises:
        ValueError: on malformed rows, fewer than two samples, or a
            non-uniform time base.
    """
    own = isinstance(source, str)
    stream = open(source, "r", newline="") if own else source
    try:
        rows = list(csv.reader(stream))
    finally:
        if own:
            stream.close()
    if rows and rows[0] and not _is_number(rows[0][0]):
        rows = rows[1:]  # header
    samples = []
    times = []
    for line_no, row in enumerate(rows, start=1):
        if not row:
            continue
        if len(row) < 2:
            raise ValueError(f"row {line_no}: need time and power columns")
        try:
            times.append(float(row[0]))
            samples.append(float(row[1]))
        except ValueError as exc:
            raise ValueError(f"row {line_no}: {exc}") from exc
    if len(samples) < 2:
        raise ValueError("need at least two samples to infer the time base")
    deltas = np.diff(times)
    dt = float(deltas[0])
    if dt <= 0:
        raise ValueError("timestamps must be strictly increasing")
    if np.any(np.abs(deltas - dt) > 0.01 * dt):
        raise ValueError("time base is not uniform")
    return PowerTrace(np.asarray(samples), dt, source=source_name)


def loads_csv(text: str, source_name: str = "csv") -> PowerTrace:
    """Parse CSV text (convenience wrapper over :func:`load_csv`)."""
    return load_csv(io.StringIO(text), source_name=source_name)


def _is_number(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False
