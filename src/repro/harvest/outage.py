"""Power-outage analytics.

A *power emergency* begins when instantaneous harvested power falls
below the processor's operating threshold and ends when it recovers.
NVP papers characterise harvesting environments by the count and
duration distribution of these emergencies (e.g. 1000–2000 emergencies
in a 10 s wristwatch window at a 33 µW threshold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.harvest.traces import PowerTrace

#: Operating threshold used throughout the published methodology.
DEFAULT_THRESHOLD_W = 33e-6


@dataclass(frozen=True)
class OutageStats:
    """Summary of sub-threshold intervals in a trace.

    Attributes:
        threshold_w: the power threshold used.
        count: number of distinct outages.
        durations_s: duration of each outage, in order of occurrence.
        total_below_s: total time below threshold.
        duty_cycle: fraction of time at or above threshold.
    """

    threshold_w: float
    count: int
    durations_s: Tuple[float, ...]
    total_below_s: float
    duty_cycle: float

    @property
    def mean_duration_s(self) -> float:
        """Mean outage duration (0 if there were no outages)."""
        if not self.durations_s:
            return 0.0
        return float(np.mean(self.durations_s))

    @property
    def max_duration_s(self) -> float:
        """Longest outage (0 if there were no outages)."""
        if not self.durations_s:
            return 0.0
        return float(max(self.durations_s))

    def emergencies_per_second(self, trace_duration_s: float) -> float:
        """Outage onset rate."""
        if trace_duration_s <= 0:
            raise ValueError("trace duration must be positive")
        return self.count / trace_duration_s

    def histogram(self, bins: int = 20) -> Tuple[np.ndarray, np.ndarray]:
        """Histogram of outage durations: ``(counts, bin_edges)``."""
        if bins < 1:
            raise ValueError("need at least one bin")
        if not self.durations_s:
            return np.zeros(bins, dtype=int), np.linspace(0.0, 1.0, bins + 1)
        counts, edges = np.histogram(self.durations_s, bins=bins)
        return counts, edges


class OutageTracker:
    """Incremental sub-threshold detector publishing bus events.

    The batch :func:`analyze_outages` needs the whole trace up front;
    the tracker sees one sample per tick — the simulator feeds it the
    rectified input power — and emits ``outage.begin`` /
    ``outage.end`` events on an observability bus as the supply
    crosses the threshold.

    Args:
        threshold_w: the operating power threshold.
        bus: an :class:`~repro.obs.events.EventBus` (may have no
            subscribers; emission is then free).
    """

    def __init__(self, threshold_w: float, bus) -> None:
        if threshold_w < 0:
            raise ValueError("threshold cannot be negative")
        self.threshold_w = threshold_w
        self.bus = bus
        self.count = 0
        self.below = False
        self._began_s = 0.0

    def update(self, p_w: float, t_s: float) -> None:
        """Feed one power sample at simulation time ``t_s``."""
        if p_w < self.threshold_w:
            if not self.below:
                self.below = True
                self._began_s = t_s
                self.bus.emit(
                    "outage.begin", t_s, threshold_w=self.threshold_w
                )
        elif self.below:
            self.below = False
            self.count += 1
            self.bus.emit(
                "outage.end", t_s, duration_s=t_s - self._began_s
            )

    def finish(self, t_s: float) -> None:
        """Close an interval left open at the end of the trace."""
        if self.below:
            self.below = False
            self.count += 1
            self.bus.emit("outage.end", t_s, duration_s=t_s - self._began_s)


def outage_intervals(
    trace: PowerTrace, threshold_w: float = DEFAULT_THRESHOLD_W
) -> List[Tuple[int, int]]:
    """Return ``(start_tick, end_tick)`` half-open intervals below threshold."""
    if threshold_w < 0:
        raise ValueError("threshold cannot be negative")
    below = trace.samples_w < threshold_w
    if not below.any():
        return []
    edges = np.diff(below.astype(np.int8))
    starts = list(np.flatnonzero(edges == 1) + 1)
    ends = list(np.flatnonzero(edges == -1) + 1)
    if below[0]:
        starts.insert(0, 0)
    if below[-1]:
        ends.append(len(trace))
    return list(zip(starts, ends))


def analyze_outages(
    trace: PowerTrace, threshold_w: float = DEFAULT_THRESHOLD_W
) -> OutageStats:
    """Compute :class:`OutageStats` for a trace at a threshold."""
    intervals = outage_intervals(trace, threshold_w)
    durations = tuple((end - start) * trace.dt_s for start, end in intervals)
    total_below = float(sum(durations))
    duty = 1.0 - total_below / trace.duration_s
    return OutageStats(
        threshold_w=threshold_w,
        count=len(intervals),
        durations_s=durations,
        total_below_s=total_below,
        duty_cycle=duty,
    )
