"""AC-DC rectifier / front-end conversion model.

Rotational and RF harvesters produce AC that must be rectified before
it can charge the storage capacitor.  Rectifier efficiency collapses
at very low input power (diode drops and controller overhead dominate)
and saturates at a technology-dependent maximum — which is exactly why
"wait-and-compute" systems that trickle-charge a big capacitor lose so
much energy at µW inputs.

The model is a saturating curve ``eta(p) = eta_max * p / (p + p_knee)``
with an optional hard cut-in power below which nothing is converted
(the minimum charging current of real charger ICs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.harvest.traces import PowerTrace


@dataclass(frozen=True)
class Rectifier:
    """Saturating-efficiency AC-DC front end.

    Attributes:
        eta_max: asymptotic conversion efficiency (0, 1].
        knee_power_w: input power at which efficiency reaches half of
            ``eta_max``.
        cutin_power_w: below this input power the output is zero.
    """

    eta_max: float = 0.85
    knee_power_w: float = 8e-6
    cutin_power_w: float = 1e-6

    def __post_init__(self) -> None:
        if not 0 < self.eta_max <= 1:
            raise ValueError("eta_max must be in (0, 1]")
        if self.knee_power_w < 0 or self.cutin_power_w < 0:
            raise ValueError("powers cannot be negative")

    def efficiency(self, input_power_w: float) -> float:
        """Conversion efficiency at an input power level."""
        if input_power_w < 0:
            raise ValueError("input power cannot be negative")
        if input_power_w < self.cutin_power_w or input_power_w == 0.0:
            return 0.0
        return self.eta_max * input_power_w / (input_power_w + self.knee_power_w)

    def output_power(self, input_power_w: float) -> float:
        """DC output power for an AC input power."""
        return input_power_w * self.efficiency(input_power_w)

    def output_power_array(self, samples_w: np.ndarray) -> np.ndarray:
        """DC output power for a whole array of input powers.

        Element-for-element equal to calling :meth:`output_power` on
        each sample (same IEEE-754 operations in the same order), so
        the simulator's vectorized pre-pass and the scalar per-tick
        path agree bit-for-bit.
        """
        samples = np.asarray(samples_w, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            eta = np.where(
                (samples < self.cutin_power_w) | (samples == 0.0),
                0.0,
                self.eta_max * samples / (samples + self.knee_power_w),
            )
        return samples * eta

    def convert(self, trace: PowerTrace) -> PowerTrace:
        """Apply the rectifier to a whole trace."""
        return PowerTrace(
            self.output_power_array(trace.samples_w),
            trace.dt_s,
            source=f"{trace.source}+rect",
        )


#: An ideal front end for experiments that want to isolate other effects.
IDEAL_RECTIFIER = Rectifier(eta_max=1.0, knee_power_w=0.0, cutin_power_w=0.0)
