"""Energy-harvesting front-end: sources, traces, rectifier, outages.

Ambient harvesters deliver unstable micro-watt power: a wrist-worn
kinetic harvester averages 10–40 µW but swings between 0 and ~2000 µW
at sub-millisecond granularity, producing on the order of a thousand
power emergencies in a 10 s window.  This package synthesises traces
with those statistics for each source class the DATE'17 tutorial
surveys (kinetic/piezo, solar, RF/WiFi, thermal), models the AC-DC
rectifier, and provides outage analytics.
"""

from repro.harvest.traces import PowerTrace
from repro.harvest.sources import (
    combine_traces,
    constant_trace,
    hybrid_trace,
    rf_trace,
    solar_trace,
    square_trace,
    thermal_trace,
    wristwatch_trace,
    SOURCE_GENERATORS,
    standard_profiles,
)
from repro.harvest.rectifier import Rectifier
from repro.harvest.outage import OutageStats, analyze_outages

__all__ = [
    "OutageStats",
    "PowerTrace",
    "Rectifier",
    "SOURCE_GENERATORS",
    "analyze_outages",
    "combine_traces",
    "constant_trace",
    "hybrid_trace",
    "rf_trace",
    "solar_trace",
    "square_trace",
    "standard_profiles",
    "thermal_trace",
    "wristwatch_trace",
]
