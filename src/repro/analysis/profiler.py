"""Energy profiler: attribute instructions/cycles/joules to code labels.

Energy-harvesting development is energy-budget development: the
question is not "how fast is this kernel" but "which loop burns the
joules".  The profiler executes a program on the behavioral core and
attributes every instruction's cycles and energy to the nearest
preceding text label (functions, loop heads), plus an
instruction-class breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.assembler import Program
from repro.isa.cpu import CPU
from repro.isa.energy import EnergyModel, InstrClass
from repro.isa.memory import MemoryMap


@dataclass
class ProfileEntry:
    """Aggregate cost of one labelled region.

    Attributes:
        label: the text label owning the region.
        instructions / cycles / energy_j: totals attributed to it.
    """

    label: str
    instructions: int = 0
    cycles: int = 0
    energy_j: float = 0.0


@dataclass
class Profile:
    """A completed profiling run.

    Attributes:
        entries: per-label aggregates, highest energy first.
        by_class: per-instruction-class aggregates.
        total_instructions / total_cycles / total_energy_j: run totals.
        halted: whether the program ran to completion.
    """

    entries: List[ProfileEntry] = field(default_factory=list)
    by_class: Dict[InstrClass, ProfileEntry] = field(default_factory=dict)
    total_instructions: int = 0
    total_cycles: int = 0
    total_energy_j: float = 0.0
    halted: bool = False
    _index: Optional[Dict[str, ProfileEntry]] = field(
        default=None, repr=False, compare=False
    )

    def entry(self, label: str) -> ProfileEntry:
        """Look up a label's entry (O(1); the index is built once).

        Raises:
            KeyError: if the label attracted no cost.
        """
        if self._index is None or len(self._index) != len(self.entries):
            self._index = {item.label: item for item in self.entries}
        found = self._index.get(label)
        if found is None:
            raise KeyError(f"no profile entry for {label!r}")
        return found

    def to_metrics(self, registry, program: str = "program") -> None:
        """Publish the attribution into a metrics registry.

        Creates ``profile_instructions`` / ``profile_cycles`` /
        ``profile_energy_joules`` counters labeled by program and code
        label (plus an instruction-class breakdown), so profiles flow
        through the same export pipeline as simulation metrics.
        """
        per_label = {
            "profile_instructions": lambda e: e.instructions,
            "profile_cycles": lambda e: e.cycles,
            "profile_energy_joules": lambda e: e.energy_j,
        }
        for name, getter in per_label.items():
            counter = registry.counter(
                name, f"{name} attributed to code labels",
                labels=("program", "label"),
            )
            for item in self.entries:
                counter.labels(program=program, label=item.label).inc(
                    getter(item)
                )
        by_class = registry.counter(
            "profile_class_instructions", "instructions per instruction class",
            labels=("program", "instr_class"),
        )
        for cls, item in self.by_class.items():
            by_class.labels(
                program=program,
                instr_class=cls.value if hasattr(cls, "value") else str(cls),
            ).inc(item.instructions)

    def report(self, top: int = 10) -> str:
        """Human-readable table of the hottest regions."""
        lines = [
            f"{'label':24s} {'instr':>8s} {'cycles':>8s} {'energy nJ':>10s} {'share':>7s}"
        ]
        for item in self.entries[:top]:
            share = (
                item.energy_j / self.total_energy_j if self.total_energy_j else 0.0
            )
            lines.append(
                f"{item.label:24s} {item.instructions:8d} {item.cycles:8d} "
                f"{item.energy_j * 1e9:10.2f} {share:6.1%}"
            )
        lines.append(
            f"{'TOTAL':24s} {self.total_instructions:8d} {self.total_cycles:8d} "
            f"{self.total_energy_j * 1e9:10.2f} {'100.0%':>7s}"
        )
        return "\n".join(lines)


def _label_map(program: Program) -> List[Tuple[int, str]]:
    """Sorted (pc, label) pairs for text labels (pc < len(program))."""
    pairs = [
        (address, name)
        for name, address in program.symbols.items()
        if 0 <= address < len(program.instructions)
    ]
    pairs.sort()
    return pairs


def _owner(pairs: List[Tuple[int, str]], pc: int) -> str:
    owner = "<entry>"
    for address, name in pairs:
        if address <= pc:
            owner = name
        else:
            break
    return owner


def profile_program(
    program: Program,
    energy_model: Optional[EnergyModel] = None,
    max_instructions: int = 5_000_000,
    inputs: Optional[List[int]] = None,
    metrics=None,
    label: str = "program",
) -> Profile:
    """Execute a program and attribute its cost to labels.

    Args:
        program: the assembled program (symbols drive attribution).
        energy_model: optional operating point.
        max_instructions: execution budget.
        inputs: values for the MMIO input port.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            the attribution is published into it (see
            :meth:`Profile.to_metrics`).
        label: program name used for the metrics ``program`` label.
    """
    cpu = CPU(program.instructions, MemoryMap(), energy_model)
    cpu.memory.load_image(program.data_image)
    if inputs:
        cpu.memory.input_queue.extend(inputs)
    pairs = _label_map(program)
    label_entries: Dict[str, ProfileEntry] = {}
    class_entries: Dict[InstrClass, ProfileEntry] = {}

    executed = 0
    while not cpu.state.halted and executed < max_instructions:
        info = cpu.step()
        executed += 1
        owner = _owner(pairs, info.pc_before)
        entry = label_entries.setdefault(owner, ProfileEntry(owner))
        entry.instructions += 1
        entry.cycles += info.cycles
        entry.energy_j += info.energy_j
        cls_entry = class_entries.setdefault(
            info.instr_class, ProfileEntry(info.instr_class.value)
        )
        cls_entry.instructions += 1
        cls_entry.cycles += info.cycles
        cls_entry.energy_j += info.energy_j

    entries = sorted(
        label_entries.values(), key=lambda item: item.energy_j, reverse=True
    )
    profile = Profile(
        entries=entries,
        by_class=class_entries,
        total_instructions=cpu.instructions_retired,
        total_cycles=cpu.cycles,
        total_energy_j=cpu.energy_j,
        halted=cpu.state.halted,
        _index={item.label: item for item in entries},
    )
    if metrics is not None:
        profile.to_metrics(metrics, program=label)
    return profile
