"""Plain-text table/series rendering for benchmark output.

Benchmarks print the rows and series a paper figure/table would show;
these helpers keep that output consistent and legible.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned ASCII table.

    Cells are stringified; floats get 4 significant digits.
    """
    def cell(value) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, text in enumerate(row):
            widths[index] = max(widths[index], len(text))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(text.ljust(widths[i]) for i, text in enumerate(row)))
    return "\n".join(lines)


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio (0 when the denominator is 0)."""
    if denominator == 0:
        return 0.0
    return numerator / denominator


def series_text(name: str, xs: Sequence, ys: Sequence, unit: str = "") -> str:
    """Render an (x, y) series as one labelled line per point."""
    if len(xs) != len(ys):
        raise ValueError("series lengths differ")
    suffix = f" {unit}" if unit else ""
    lines = [f"series: {name}"]
    for x, y in zip(xs, ys):
        x_text = f"{x:.4g}" if isinstance(x, float) else str(x)
        y_text = f"{y:.4g}" if isinstance(y, float) else str(y)
        lines.append(f"  {x_text}: {y_text}{suffix}")
    return "\n".join(lines)
