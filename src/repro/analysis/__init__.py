"""Experiment harness: parameter sweeps and result tables."""

from repro.analysis.sweep import ensemble_run, parameter_sweep
from repro.analysis.report import format_table, ratio, series_text
from repro.analysis.profiler import Profile, ProfileEntry, profile_program

__all__ = [
    "Profile",
    "ProfileEntry",
    "ensemble_run",
    "format_table",
    "parameter_sweep",
    "profile_program",
    "ratio",
    "series_text",
]
