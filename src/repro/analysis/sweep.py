"""Generic sweep helpers used by the benchmark harness.

.. deprecated::
    These callable-factory helpers are thin shims over
    :mod:`repro.exp` — the declarative, parallel, cache-aware
    experiment engine (see ``docs/experiments.md``).  They run
    serially and in-process; new sweeps should build an
    :class:`repro.exp.ExperimentSpec` and run it through
    :class:`repro.exp.SweepRunner` (or ``repro sweep`` from the
    shell) instead.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

from repro.exp.runner import ensemble_factory_sweep, factory_sweep
from repro.harvest.rectifier import Rectifier
from repro.harvest.traces import PowerTrace
from repro.system.result import SimulationResult
from repro.system.simulator import Platform


def parameter_sweep(
    values: Iterable,
    factory: Callable[[object], Tuple[PowerTrace, Platform]],
    rectifier: Optional[Rectifier] = None,
    stop_when_finished: bool = True,
) -> List[Tuple[object, SimulationResult]]:
    """Run a simulation per parameter value (serial, in-process).

    Deprecated shim over :func:`repro.exp.runner.factory_sweep`.

    Args:
        values: the parameter values to sweep (any iterable, including
            generators — materialised before the emptiness check).
        factory: ``factory(value) -> (trace, platform)`` building a
            fresh trace/platform pair per value.
        rectifier: optional shared front end.
        stop_when_finished: forwarded to the simulator.

    Returns:
        ``[(value, result), ...]`` in sweep order.
    """
    return factory_sweep(
        values,
        factory,
        rectifier=rectifier,
        stop_when_finished=stop_when_finished,
    )


def ensemble_run(
    traces: Iterable[PowerTrace],
    platform_factory: Callable[[PowerTrace], Platform],
    rectifier: Optional[Rectifier] = None,
    stop_when_finished: bool = True,
) -> List[SimulationResult]:
    """Run the same platform recipe over an ensemble of traces.

    Deprecated shim over
    :func:`repro.exp.runner.ensemble_factory_sweep`; prefer an
    ``ensemble``-mode :class:`repro.exp.ExperimentSpec`.
    """
    return ensemble_factory_sweep(
        traces,
        platform_factory,
        rectifier=rectifier,
        stop_when_finished=stop_when_finished,
    )
