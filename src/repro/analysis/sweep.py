"""Generic sweep helpers used by the benchmark harness."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.harvest.rectifier import Rectifier
from repro.harvest.traces import PowerTrace
from repro.system.result import SimulationResult
from repro.system.simulator import Platform, SystemSimulator


def parameter_sweep(
    values: Sequence,
    factory: Callable[[object], Tuple[PowerTrace, Platform]],
    rectifier: Optional[Rectifier] = None,
    stop_when_finished: bool = True,
) -> List[Tuple[object, SimulationResult]]:
    """Run a simulation per parameter value.

    Args:
        values: the parameter values to sweep.
        factory: ``factory(value) -> (trace, platform)`` building a
            fresh trace/platform pair per value.
        rectifier: optional shared front end.
        stop_when_finished: forwarded to the simulator.

    Returns:
        ``[(value, result), ...]`` in sweep order.
    """
    if len(values) == 0:
        raise ValueError("need at least one sweep value")
    results = []
    for value in values:
        trace, platform = factory(value)
        simulator = SystemSimulator(
            trace, platform, rectifier=rectifier, stop_when_finished=stop_when_finished
        )
        results.append((value, simulator.run()))
    return results


def ensemble_run(
    traces: Sequence[PowerTrace],
    platform_factory: Callable[[PowerTrace], Platform],
    rectifier: Optional[Rectifier] = None,
    stop_when_finished: bool = True,
) -> List[SimulationResult]:
    """Run the same platform recipe over an ensemble of traces."""
    if len(traces) == 0:
        raise ValueError("need at least one trace")
    results = []
    for trace in traces:
        platform = platform_factory(trace)
        simulator = SystemSimulator(
            trace, platform, rectifier=rectifier, stop_when_finished=stop_when_finished
        )
        results.append(simulator.run())
    return results
