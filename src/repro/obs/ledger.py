"""The persistent run ledger: what ran, when, at what cost.

Once a sweep finishes, the bench metrics in ``history.jsonl`` and the
per-run manifests say what the *results* were — but nothing durable
records the invocations themselves: which specs ran, how long they
took, how much CPU they burned, and how much came from the cache.
The :class:`RunLedger` is that record: an append-only JSONL file
(default ``.repro-cache/ledger.jsonl``) to which every ``simulate`` /
``sweep`` / ``compare`` / bench invocation appends one schema-versioned
record.  ``repro runs list/show/diff/gc`` queries it.

Design points:

* **Crash-safe appends** — each record is serialised to one line and
  written with a single ``O_APPEND`` write, so concurrent writers
  interleave whole lines and a crash mid-write leaves at most one torn
  trailing line, which readers skip.
* **Disable switch** — ``REPRO_LEDGER_DIR=""`` turns recording off
  entirely (:func:`default_ledger_path` returns ``None``), restoring
  pre-ledger behavior byte-for-byte; a non-empty value relocates the
  ledger.  Without the variable the ledger co-locates with the result
  cache (it honours ``REPRO_CACHE_DIR``), because :meth:`RunLedger.gc`
  prunes records against that cache's entries.
* **Schema-versioned records** — every record carries
  ``schema=SCHEMA_VERSION`` so future layouts can coexist in one file.

Record schema (version 1)::

    {
      "schema": 1,
      "id": "<12-hex unique id>",
      "command": "sweep" | "simulate" | "compare" | "bench:<name>" | ...,
      "experiment": "<spec/experiment name>" | null,
      "spec_hash": "<16-hex fingerprint of the expanded config hashes>",
      "outcome": "ok" | "error" | "timeout" | "interrupted",
      "started_unix": float, "ended_unix": float, "wall_s": float,
      "code_version": "<repro.__version__>", "git_sha": "...", "pid": int,
      "points":    {"total", "executed", "cached", "failed", "interrupted"},
      "cache":     {"hits", "misses", "hit_rate"},
      "resources": {"cpu_user_s", "cpu_system_s", "cpu_s",
                    "peak_rss_kb", "workers"},
      "runs": [{"key", "label", "status", "wall_s", "cpu_s",
                "peak_rss_kb", "pid", "error"?}, ...],
      "error": "<first failure>"?          # error/timeout outcomes
    }

``points``/``cache``/``resources``/``runs`` are optional — a plain
``simulate`` records only wall time, resources and outcome.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
import uuid
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Environment variable relocating (non-empty) or disabling (``""``)
#: the ledger.
LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"

#: Mirrors :data:`repro.exp.cache.CACHE_DIR_ENV` — duplicated here so
#: ``repro.obs`` never imports ``repro.exp`` (which imports us back).
_CACHE_DIR_ENV = "REPRO_CACHE_DIR"
_DEFAULT_CACHE_DIR = ".repro-cache"

#: Ledger file name inside the ledger directory.
LEDGER_BASENAME = "ledger.jsonl"

#: Record layout version stamped on every record.
SCHEMA_VERSION = 1

#: Invocation outcomes.
OUTCOME_OK = "ok"
OUTCOME_ERROR = "error"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_INTERRUPTED = "interrupted"
OUTCOMES: Tuple[str, ...] = (
    OUTCOME_OK, OUTCOME_ERROR, OUTCOME_TIMEOUT, OUTCOME_INTERRUPTED,
)


def default_cache_root() -> str:
    """The result-cache root the ledger prunes against."""
    return os.environ.get(_CACHE_DIR_ENV) or _DEFAULT_CACHE_DIR


def default_ledger_dir() -> Optional[str]:
    """The ledger directory, or ``None`` when recording is disabled."""
    value = os.environ.get(LEDGER_DIR_ENV)
    if value is not None:
        return value or None
    return default_cache_root()


def default_ledger_path() -> Optional[str]:
    """``<ledger dir>/ledger.jsonl``, or ``None`` when disabled."""
    directory = default_ledger_dir()
    if not directory:
        return None
    return os.path.join(directory, LEDGER_BASENAME)


def spec_fingerprint(keys: Sequence[str]) -> str:
    """A 16-hex fingerprint of a sweep's expanded config hashes.

    Order-sensitive on purpose: the same points in a different sweep
    order are a different invocation shape.
    """
    digest = hashlib.sha256("\n".join(keys).encode()).hexdigest()
    return digest[:16]


def _code_version() -> str:
    import repro

    return getattr(repro, "__version__", "unversioned")


def make_record(
    command: str,
    outcome: str,
    started_unix: float,
    ended_unix: float,
    experiment: Optional[str] = None,
    spec_hash: Optional[str] = None,
    points: Optional[Dict] = None,
    cache: Optional[Dict] = None,
    resources: Optional[Dict] = None,
    runs: Optional[List[Dict]] = None,
    error: Optional[str] = None,
    n_devices: Optional[int] = None,
    telemetry: Optional[Dict] = None,
) -> Dict:
    """A schema-stamped ledger record (not yet appended).

    ``n_devices`` distinguishes fleet invocations (N devices advanced
    by one kernel) from single-device runs in ``repro runs list`` /
    ``diff``; single-device commands stamp ``1``.  ``telemetry`` is a
    fleet-telemetry summary (snapshot path, cadence, sample count) so
    ``repro runs show`` can point at a run's dashboard data.

    Raises:
        ValueError: for an unknown ``outcome``.
    """
    if outcome not in OUTCOMES:
        raise ValueError(
            f"unknown outcome {outcome!r}; known: {OUTCOMES}"
        )
    from repro.obs.manifest import git_revision

    record: Dict = {
        "schema": SCHEMA_VERSION,
        "id": uuid.uuid4().hex[:12],
        "command": command,
        "experiment": experiment,
        "spec_hash": spec_hash,
        "outcome": outcome,
        "started_unix": float(started_unix),
        "ended_unix": float(ended_unix),
        "wall_s": max(0.0, float(ended_unix) - float(started_unix)),
        "code_version": _code_version(),
        "git_sha": git_revision(),
        "pid": os.getpid(),
    }
    if points is not None:
        record["points"] = dict(points)
    if cache is not None:
        record["cache"] = dict(cache)
    if resources is not None:
        record["resources"] = dict(resources)
    if runs is not None:
        record["runs"] = [dict(run) for run in runs]
    if error:
        record["error"] = error
    if n_devices is not None:
        record["n_devices"] = int(n_devices)
    if telemetry is not None:
        record["telemetry"] = dict(telemetry)
    return record


def sweep_record(
    command: str,
    experiment: Optional[str],
    outcome,
    started_unix: float,
    ended_unix: float,
    forced_outcome: Optional[str] = None,
    cache_attached: bool = True,
    n_devices: Optional[int] = None,
    telemetry: Optional[Dict] = None,
) -> Dict:
    """Fold a :class:`~repro.exp.runner.SweepOutcome` into a record.

    The invocation outcome is derived from the per-run statuses —
    ``interrupted`` beats ``timeout`` beats ``error`` beats ``ok`` —
    unless ``forced_outcome`` overrides it.  Per-run cache hit/miss
    attribution and resource usage come straight off the records.
    ``cache_attached=False`` marks a run whose results were never
    cached (e.g. ``repro compare``) so :meth:`RunLedger.gc` keeps its
    record instead of mistaking the absent keys for an evicted cache.
    """
    from repro.obs.resources import aggregate_usage

    statuses = [record.status for record in outcome.records]
    failures = [record for record in outcome.records
                if record.status == "failed"]
    if forced_outcome is not None:
        verdict = forced_outcome
    elif "interrupted" in statuses:
        verdict = OUTCOME_INTERRUPTED
    elif failures and all(
        (record.error or "").startswith("timed out") for record in failures
    ):
        verdict = OUTCOME_TIMEOUT
    elif failures:
        verdict = OUTCOME_ERROR
    else:
        verdict = OUTCOME_OK
    total = len(outcome.records)
    hits = outcome.cached
    misses = total - hits
    runs: List[Dict] = []
    usages: List[Dict] = []
    for record in outcome.records:
        entry: Dict = {
            "key": record.key,
            "label": record.label,
            "status": record.status,
            "wall_s": record.wall_s,
            "cpu_s": record.cpu_s,
            "peak_rss_kb": record.peak_rss_kb,
            "pid": record.pid,
        }
        if record.error:
            entry["error"] = record.error
        runs.append(entry)
        if record.pid is not None:
            usages.append({
                "cpu_s": record.cpu_s,
                "peak_rss_kb": record.peak_rss_kb,
                "pid": record.pid,
            })
    record = make_record(
        command,
        verdict,
        started_unix,
        ended_unix,
        experiment=experiment,
        spec_hash=spec_fingerprint([r.key for r in outcome.records]),
        points={
            "total": total,
            "executed": outcome.executed,
            "cached": outcome.cached,
            "failed": outcome.failed,
            "interrupted": outcome.interrupted,
        },
        cache={
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        },
        resources=aggregate_usage(usages),
        runs=runs,
        error=failures[0].error if failures else None,
        n_devices=n_devices,
        telemetry=telemetry,
    )
    if not cache_attached:
        record["uncached"] = True
    return record


class RunLedger:
    """Append-only JSONL store of invocation records.

    Args:
        path: ledger file path.  Use :meth:`from_env` to honour
            ``REPRO_LEDGER_DIR`` (including its disable switch).
    """

    def __init__(self, path: str) -> None:
        if not path:
            raise ValueError("ledger path required (use from_env())")
        self.path = path

    @classmethod
    def from_env(cls) -> Optional["RunLedger"]:
        """The configured ledger, or ``None`` when disabled."""
        path = default_ledger_path()
        return cls(path) if path else None

    # -- writing -----------------------------------------------------------

    def append(self, record: Dict) -> Dict:
        """Append one record crash-safely; returns it (with its id).

        The record must come from :func:`make_record` /
        :func:`sweep_record` (it is written as-is).  The line is
        serialised first and written with a single ``O_APPEND`` write,
        so concurrent appenders never interleave within a line.
        """
        line = json.dumps(record, sort_keys=True) + "\n"
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)
        return record

    def rewrite(self, records: Sequence[Dict]) -> None:
        """Atomically replace the ledger's contents (gc backend)."""
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=".ledger.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                for record in records:
                    handle.write(json.dumps(record, sort_keys=True))
                    handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.chmod(tmp, 0o644)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- reading -----------------------------------------------------------

    def records(
        self,
        command: Optional[str] = None,
        experiment: Optional[str] = None,
        outcome: Optional[str] = None,
        spec: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        devices_min: Optional[int] = None,
    ) -> List[Dict]:
        """Every matching record, oldest first.

        A missing file reads as empty; torn or corrupt lines are
        skipped.  ``spec`` matches a ``spec_hash`` prefix; ``since`` /
        ``until`` bound ``started_unix`` inclusively.  ``devices_min``
        keeps records whose ``n_devices`` is at least that large —
        the "find my fleet runs" filter (records without the stamp
        count as single-device).
        """
        out: List[Dict] = []
        try:
            handle = open(self.path)
        except OSError:
            return out
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(record, dict) or "command" not in record:
                    continue
                if command is not None and record.get("command") != command:
                    continue
                if experiment is not None and (
                    record.get("experiment") != experiment
                ):
                    continue
                if outcome is not None and record.get("outcome") != outcome:
                    continue
                if spec is not None and not str(
                    record.get("spec_hash") or ""
                ).startswith(spec):
                    continue
                started = float(record.get("started_unix") or 0.0)
                if since is not None and started < since:
                    continue
                if until is not None and started > until:
                    continue
                if devices_min is not None and int(
                    record.get("n_devices") or 1
                ) < devices_min:
                    continue
                out.append(record)
        return out

    def __len__(self) -> int:
        return len(self.records())

    def find(self, id_prefix: str) -> Dict:
        """The unique record whose id starts with ``id_prefix``.

        Raises:
            KeyError: no record matches.
            ValueError: the prefix is ambiguous.
        """
        if not id_prefix:
            raise KeyError("empty ledger id")
        matches = [
            record
            for record in self.records()
            if str(record.get("id", "")).startswith(id_prefix)
        ]
        if not matches:
            raise KeyError(f"no ledger record matches {id_prefix!r}")
        distinct = {record["id"] for record in matches}
        if len(distinct) > 1:
            raise ValueError(
                f"ledger id {id_prefix!r} is ambiguous: "
                f"{sorted(distinct)}"
            )
        return matches[-1]

    # -- garbage collection ------------------------------------------------

    def gc(
        self, cache_root: Optional[str] = None, dry_run: bool = False
    ) -> Tuple[int, int]:
        """Prune records whose cached results were all evicted.

        A record is prunable when it lists cache-keyed runs and *none*
        of those keys still exist under ``<cache_root>/<code_version>``
        — its results can no longer be recalled, so the bookkeeping
        goes too.  Records without runs (plain simulates) and records
        marked ``uncached`` (the run never wrote the cache, so absent
        keys prove nothing) are kept.

        Returns ``(kept, pruned)`` counts; with ``dry_run`` the file
        is left untouched.
        """
        root = cache_root or default_cache_root()
        kept: List[Dict] = []
        pruned = 0
        for record in self.records():
            keys = [
                run.get("key")
                for run in record.get("runs") or []
                if run.get("key")
            ]
            if not keys or record.get("uncached"):
                kept.append(record)
                continue
            version = str(record.get("code_version") or "")
            alive = any(
                os.path.exists(os.path.join(root, version, f"{key}.json"))
                for key in keys
            )
            if alive:
                kept.append(record)
            else:
                pruned += 1
        if pruned and not dry_run:
            self.rewrite(kept)
        return len(kept), pruned


# -- record diffing ---------------------------------------------------------


def diff_records(a: Dict, b: Dict) -> Dict:
    """Structured comparison of two ledger records (a → b).

    Covers outcome, point accounting, cache-hit attribution, wall time
    and resource usage — the "did the cache actually work" and "what
    did the re-run cost" questions.
    """
    def block(record: Dict, name: str) -> Dict:
        return record.get(name) or {}

    def delta(x: Optional[float], y: Optional[float]) -> Optional[float]:
        if x is None or y is None:
            return None
        return float(y) - float(x)

    a_points, b_points = block(a, "points"), block(b, "points")
    a_cache, b_cache = block(a, "cache"), block(b, "cache")
    a_res, b_res = block(a, "resources"), block(b, "resources")
    return {
        "a": {"id": a.get("id"), "command": a.get("command"),
              "experiment": a.get("experiment")},
        "b": {"id": b.get("id"), "command": b.get("command"),
              "experiment": b.get("experiment")},
        "same_spec": bool(
            a.get("spec_hash")
            and a.get("spec_hash") == b.get("spec_hash")
        ),
        "outcome": {"a": a.get("outcome"), "b": b.get("outcome")},
        "points": {
            "a": a_points, "b": b_points,
            "executed_delta": delta(
                a_points.get("executed"), b_points.get("executed")
            ),
        },
        "cache": {
            "a": a_cache, "b": b_cache,
            "hits_delta": delta(a_cache.get("hits"), b_cache.get("hits")),
            "hit_rate": {
                "a": a_cache.get("hit_rate"),
                "b": b_cache.get("hit_rate"),
            },
        },
        "wall_s": {
            "a": a.get("wall_s"), "b": b.get("wall_s"),
            "delta": delta(a.get("wall_s"), b.get("wall_s")),
        },
        "resources": {
            "cpu_s": {
                "a": a_res.get("cpu_s"), "b": b_res.get("cpu_s"),
                "delta": delta(a_res.get("cpu_s"), b_res.get("cpu_s")),
            },
            "peak_rss_kb": {
                "a": a_res.get("peak_rss_kb"),
                "b": b_res.get("peak_rss_kb"),
            },
        },
    }


def format_diff(diff: Dict) -> str:
    """Human-readable rendering of :func:`diff_records` output."""
    def num(value: Optional[float], unit: str = "", fmt: str = ".2f") -> str:
        if value is None:
            return "—"
        return f"{value:{fmt}}{unit}"

    def pct(value: Optional[float]) -> str:
        if value is None:
            return "—"
        return f"{value:.0%}"

    a, b = diff["a"], diff["b"]
    lines = [
        f"runs {a.get('id')} -> {b.get('id')} "
        f"({b.get('command')}:{b.get('experiment') or '?'}"
        f"{', same spec' if diff['same_spec'] else ', DIFFERENT spec'})",
        f"  outcome   : {diff['outcome']['a']} -> {diff['outcome']['b']}",
    ]
    ap, bp = diff["points"]["a"], diff["points"]["b"]
    if ap or bp:
        lines.append(
            f"  points    : {ap.get('total', '—')} "
            f"({ap.get('executed', '—')} executed, "
            f"{ap.get('cached', '—')} cached, "
            f"{ap.get('failed', '—')} failed) -> "
            f"{bp.get('total', '—')} "
            f"({bp.get('executed', '—')} executed, "
            f"{bp.get('cached', '—')} cached, "
            f"{bp.get('failed', '—')} failed)"
        )
    cache = diff["cache"]
    if cache["a"] or cache["b"]:
        hits_delta = cache["hits_delta"]
        lines.append(
            f"  cache hit : {pct(cache['hit_rate']['a'])} -> "
            f"{pct(cache['hit_rate']['b'])}"
            + (
                f" ({hits_delta:+.0f} hits)"
                if hits_delta is not None else ""
            )
        )
    wall = diff["wall_s"]
    rel = ""
    if wall["delta"] is not None and wall["a"]:
        rel = f" ({wall['delta'] / wall['a']:+.1%})"
    lines.append(
        f"  wall      : {num(wall['a'], 's')} -> {num(wall['b'], 's')}{rel}"
    )
    cpu = diff["resources"]["cpu_s"]
    lines.append(
        f"  cpu       : {num(cpu['a'], 's')} -> {num(cpu['b'], 's')}"
    )
    rss = diff["resources"]["peak_rss_kb"]
    lines.append(
        f"  peak rss  : {num(rss['a'], ' KB', '.0f')} -> "
        f"{num(rss['b'], ' KB', '.0f')}"
    )
    return "\n".join(lines)
