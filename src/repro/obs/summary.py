"""Live run summaries: the subscribers behind ``repro observe`` and
``repro sweep --live``.

:class:`LiveSummary` tallies one simulation's event stream as it
happens — event counts, per-state tick counts (duty cycle),
backup/restore success rates — and can print interim progress lines
at a fixed simulated-time interval, so a long run shows signs of life
before the final table.

:class:`SweepMonitor` renders a sweep's progress in place on a TTY —
points done/total, ETA, cache-hit rate, per-worker utilization — from
the ``sweep.begin`` / ``sweep.point`` / ``sweep.end`` bus stream the
runner already emits, so monitoring adds no new instrumentation and
costs nothing when nobody subscribes.

:class:`FleetMonitor` is the fleet's live dashboard (``repro fleet
watch``): it renders the population state bar, energy/progress
percentiles and the storm indicator from ``fleet.sample`` telemetry
snapshots, with the same TTY-in-place / line-buffered-when-piped
discipline as :class:`SweepMonitor`.
"""

from __future__ import annotations

import sys
from typing import Dict, Optional, TextIO

from repro.obs import events as ev
from repro.obs.events import Event, EventBus


class LiveSummary:
    """Streaming aggregation of one simulation's event feed.

    Args:
        interval_s: print a progress line every N simulated seconds
            (None disables interim output).
        stream: where progress lines go (default stdout).
    """

    def __init__(
        self,
        interval_s: Optional[float] = None,
        stream: Optional[TextIO] = None,
    ) -> None:
        if interval_s is not None and interval_s <= 0:
            raise ValueError("interval must be positive")
        self.interval_s = interval_s
        self.stream = stream if stream is not None else sys.stdout
        self.counts: Dict[str, int] = {}
        self.state_ticks: Dict[str, int] = {}
        self.instructions = 0
        self.last_t_s = 0.0
        self._next_report_s = interval_s

    # -- subscription -------------------------------------------------------

    def attach(self, bus: EventBus) -> "LiveSummary":
        """Subscribe to everything on ``bus``; returns self."""
        bus.subscribe(self.on_event)
        return self

    def on_event(self, event: Event) -> None:
        self.counts[event.name] = self.counts.get(event.name, 0) + 1
        self.last_t_s = max(self.last_t_s, event.t_s)
        if event.name == ev.TICK:
            state = event.data.get("state", "?")
            self.state_ticks[state] = self.state_ticks.get(state, 0) + 1
            self.instructions += event.data.get("instructions", 0)
            if (
                self._next_report_s is not None
                and event.t_s >= self._next_report_s
            ):
                self._next_report_s += self.interval_s
                print(self.progress_line(), file=self.stream)

    # -- derived statistics -------------------------------------------------

    @property
    def total_ticks(self) -> int:
        return sum(self.state_ticks.values())

    @property
    def duty_cycle(self) -> float:
        """Fraction of observed ticks spent executing."""
        total = self.total_ticks
        return self.state_ticks.get("run", 0) / total if total else 0.0

    @property
    def backup_success_rate(self) -> float:
        """Committed / attempted backups (1.0 when none attempted)."""
        ok = self.counts.get(ev.BACKUP_COMMIT, 0)
        fail = self.counts.get(ev.BACKUP_FAIL, 0)
        return ok / (ok + fail) if (ok + fail) else 1.0

    @property
    def restore_success_rate(self) -> float:
        """Committed / attempted restores (1.0 when none attempted)."""
        ok = self.counts.get(ev.RESTORE_COMMIT, 0)
        fail = self.counts.get(ev.RESTORE_FAIL, 0)
        return ok / (ok + fail) if (ok + fail) else 1.0

    @property
    def outages(self) -> int:
        return self.counts.get(ev.OUTAGE_BEGIN, 0)

    # -- rendering ----------------------------------------------------------

    def progress_line(self) -> str:
        """One-line interim status."""
        return (
            f"[{self.last_t_s:7.3f}s] duty={self.duty_cycle:.1%} "
            f"backups={self.counts.get(ev.BACKUP_COMMIT, 0)} "
            f"restores={self.counts.get(ev.RESTORE_COMMIT, 0)} "
            f"outages={self.outages} "
            f"instr={self.instructions}"
        )

    def render(self) -> str:
        """The final summary table."""
        lines = [
            f"simulated time     : {self.last_t_s:.3f} s",
            f"duty cycle         : {self.duty_cycle:.1%}",
            f"backup success     : {self.backup_success_rate:.1%} "
            f"({self.counts.get(ev.BACKUP_COMMIT, 0)} ok, "
            f"{self.counts.get(ev.BACKUP_FAIL, 0)} failed)",
            f"restore success    : {self.restore_success_rate:.1%} "
            f"({self.counts.get(ev.RESTORE_COMMIT, 0)} ok, "
            f"{self.counts.get(ev.RESTORE_FAIL, 0)} failed)",
            f"outages observed   : {self.outages}",
            f"instructions       : {self.instructions}",
            "event counts       :",
        ]
        for name in sorted(self.counts):
            if name == ev.TICK:
                continue
            lines.append(f"  {name:22s} {self.counts[name]:>8d}")
        return "\n".join(lines)


class SweepMonitor:
    """In-place TTY progress view for ``repro sweep --live``.

    Subscribes to the sweep lifecycle events and redraws one status
    line per point: done/total with a bar, per-status counts, cache-hit
    rate, ETA extrapolated from the ``sweep.point`` arrival times, and
    aggregate worker utilization (busy seconds across workers divided
    by elapsed wall time x jobs).

    On a TTY the line is redrawn in place (``\\r`` + erase); with
    ``interactive=False`` (what ``repro sweep --live`` uses when
    stdout is piped) each point prints one plain line-buffered progress
    line instead, so logs stay readable.  Events with missing fields
    (a worker died mid-run) degrade to unknowns rather than wedging
    the render.

    Args:
        stream: output stream (default stdout).
        interactive: force in-place (True) or line-buffered (False)
            rendering; ``None`` asks ``stream.isatty()``.
        width: maximum rendered line width.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        interactive: Optional[bool] = None,
        width: int = 100,
    ) -> None:
        self.stream = stream if stream is not None else sys.stdout
        if interactive is None:
            isatty = getattr(self.stream, "isatty", None)
            interactive = bool(isatty()) if callable(isatty) else False
        self.interactive = interactive
        self.width = max(40, width)
        self.total = 0
        self.jobs = 1
        self.done = 0
        self.ok = 0
        self.cached = 0
        self.failed = 0
        self.started_s: Optional[float] = None
        self.last_s: Optional[float] = None
        #: Busy wall-seconds per worker pid (executed points only).
        self.worker_busy: Dict[int, float] = {}
        #: Total CPU seconds reported by executed points.
        self.cpu_s = 0.0
        #: Max worker peak RSS seen (KB).
        self.peak_rss_kb = 0.0
        self._finished = False

    # -- subscription -------------------------------------------------------

    def attach(self, bus: EventBus) -> "SweepMonitor":
        """Subscribe to the sweep lifecycle on ``bus``; returns self."""
        bus.subscribe(
            self.on_event,
            names=(ev.SWEEP_BEGIN, ev.SWEEP_POINT, ev.SWEEP_END),
        )
        return self

    def on_event(self, event: Event) -> None:
        data = event.data
        if event.name == ev.SWEEP_BEGIN:
            self.total = int(data.get("total") or 0)
            self.jobs = max(1, int(data.get("jobs") or 1))
            self.started_s = event.t_s
            self.last_s = event.t_s
            self._draw()
            return
        if event.name == ev.SWEEP_POINT:
            self.last_s = event.t_s
            self.done += 1
            status = data.get("status")
            if status == "cached":
                self.cached += 1
            elif status == "ok":
                self.ok += 1
            else:
                self.failed += 1
            if status == "ok":
                pid = data.get("pid")
                if pid is not None:
                    busy = self.worker_busy.get(pid, 0.0)
                    self.worker_busy[pid] = busy + float(
                        data.get("wall_s") or 0.0
                    )
            self.cpu_s += float(data.get("cpu_s") or 0.0)
            self.peak_rss_kb = max(
                self.peak_rss_kb, float(data.get("peak_rss_kb") or 0.0)
            )
            self._draw()
            return
        if event.name == ev.SWEEP_END:
            self.last_s = event.t_s
            self._finished = True
            self._draw(final=True)

    # -- derived statistics -------------------------------------------------

    @property
    def elapsed_s(self) -> float:
        """Wall seconds between sweep begin and the last event seen."""
        if self.started_s is None or self.last_s is None:
            return 0.0
        return max(0.0, self.last_s - self.started_s)

    @property
    def hit_rate(self) -> float:
        """Cache hits as a fraction of points seen so far."""
        return self.cached / self.done if self.done else 0.0

    @property
    def utilization(self) -> float:
        """Aggregate worker busy fraction (capped at 1.0)."""
        elapsed = self.elapsed_s
        if elapsed <= 0.0 or not self.worker_busy:
            return 0.0
        busy = sum(self.worker_busy.values())
        return min(1.0, busy / (elapsed * self.jobs))

    @property
    def eta_s(self) -> Optional[float]:
        """Remaining seconds, extrapolated from executed-point pace.

        Cached points land nearly instantly, so the pace counts only
        executed/failed points against elapsed wall time; with nothing
        executed yet (or nothing left) there is no estimate.
        """
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        paced = self.done - self.cached
        elapsed = self.elapsed_s
        if paced <= 0 or elapsed <= 0.0:
            return None
        return remaining * (elapsed / paced)

    # -- rendering ----------------------------------------------------------

    def render(self) -> str:
        """The current status line (no terminal control codes)."""
        total = self.total or "?"
        parts = [f"sweep {self.done}/{total}"]
        if self.total:
            frac = self.done / self.total
            cells = 10
            filled = int(round(frac * cells))
            parts.append("[" + "#" * filled + "." * (cells - filled) + "]")
        parts.append(
            f"{self.ok} ok {self.cached} cached {self.failed} failed"
        )
        parts.append(f"hit {self.hit_rate:.0%}")
        eta = self.eta_s
        if eta is None:
            parts.append("eta ?")
        elif eta > 0:
            parts.append(f"eta {eta:.0f}s")
        if self.worker_busy:
            parts.append(
                f"util {self.utilization:.0%}/{len(self.worker_busy)}w"
            )
        line = " | ".join(parts)
        return line[: self.width]

    def summary_line(self) -> str:
        """The post-sweep one-liner (resources + cache accounting)."""
        pieces = [
            f"live    : {self.done} point(s) in {self.elapsed_s:.2f}s — "
            f"{self.ok} ok, {self.cached} cached, {self.failed} failed; "
            f"cache hit {self.hit_rate:.0%}"
        ]
        if self.worker_busy:
            pieces.append(
                f"util {self.utilization:.0%} over "
                f"{len(self.worker_busy)} worker(s)"
            )
        if self.cpu_s:
            pieces.append(f"cpu {self.cpu_s:.2f}s")
        if self.peak_rss_kb:
            pieces.append(f"peak rss {self.peak_rss_kb / 1024.0:.1f} MB")
        return "; ".join(pieces)

    def _draw(self, final: bool = False) -> None:
        if self.interactive:
            self.stream.write("\r\x1b[2K" + self.render())
            if final:
                self.stream.write("\n" + self.summary_line() + "\n")
            self.stream.flush()
        else:
            # Line-buffered degradation: one plain line per redraw.
            self.stream.write(
                (self.summary_line() if final else self.render()) + "\n"
            )


#: Population states in display order with their state-bar glyphs;
#: states the presets don't emit today render as ``?``.
FLEET_STATE_GLYPHS = (
    ("run", "#"),
    ("backup", "B"),
    ("restore", "R"),
    ("boot", "b"),
    ("charge", "~"),
    ("off", "o"),
    ("done", "d"),
    ("final", "."),
)


class FleetMonitor:
    """Live fleet dashboard for ``repro fleet watch``.

    Renders one status line per telemetry sample: a proportional
    population state bar (``#`` running, ``~`` charging, ``o`` off,
    ``.`` finalized, ...), stored-energy and progress percentiles, the
    fleet outage fraction with a ``STORM`` flag, and finalized-device
    progress.  Driven entirely by the ``fleet.begin`` /
    ``fleet.sample`` / ``fleet.end`` bus stream — the dashboard is a
    subscriber like any other, and costs nothing when not attached.

    Rendering discipline matches :class:`SweepMonitor`: in-place
    redraw on a TTY, one plain line-buffered line per sample when
    piped (``interactive=False``), autodetected via ``isatty``.

    Args:
        stream: output stream (default stdout).
        interactive: force in-place (True) or line-buffered (False)
            rendering; ``None`` asks ``stream.isatty()``.
        width: maximum rendered line width.
        bar_cells: state-bar width in characters.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        interactive: Optional[bool] = None,
        width: int = 100,
        bar_cells: int = 20,
    ) -> None:
        self.stream = stream if stream is not None else sys.stdout
        if interactive is None:
            isatty = getattr(self.stream, "isatty", None)
            interactive = bool(isatty()) if callable(isatty) else False
        self.interactive = interactive
        self.width = max(40, width)
        self.bar_cells = max(4, bar_cells)
        self.devices = 0
        self.dt_s = 0.0
        self.ticks = 0
        self.samples = 0
        self.storm_samples = 0
        self.finalized = 0
        self.snapshot: Optional[Dict] = None
        self._finished = False

    # -- subscription -------------------------------------------------------

    def attach(self, bus: EventBus) -> "FleetMonitor":
        """Subscribe to the fleet lifecycle on ``bus``; returns self."""
        bus.subscribe(
            self.on_event,
            names=(
                ev.FLEET_BEGIN, ev.FLEET_SAMPLE, ev.FLEET_DEVICE,
                ev.FLEET_END,
            ),
        )
        return self

    def on_event(self, event: Event) -> None:
        data = event.data
        if event.name == ev.FLEET_BEGIN:
            self.devices = int(data.get("devices") or 0)
            self.dt_s = float(data.get("dt_s") or 0.0)
            self._draw()
            return
        if event.name == ev.FLEET_SAMPLE:
            self.snapshot = data.get("snapshot") or {}
            self.samples += 1
            if (self.snapshot.get("outage") or {}).get("storm"):
                self.storm_samples += 1
            self._draw()
            return
        if event.name == ev.FLEET_DEVICE:
            # Device finalizations arrive per device — up to fleet-size
            # times — so they update state silently; the next sample
            # (or the end event) redraws.
            self.finalized += 1
            return
        if event.name == ev.FLEET_END:
            self.ticks = int(data.get("ticks") or 0)
            self._finished = True
            self._draw(final=True)

    # -- rendering ----------------------------------------------------------

    def state_bar(self) -> str:
        """Proportional population bar over the last sample's states."""
        states = (self.snapshot or {}).get("states") or {}
        total = sum(states.values())
        if not total:
            return "?" * self.bar_cells
        known = {name for name, _g in FLEET_STATE_GLYPHS}
        ordered = [
            (name, glyph)
            for name, glyph in FLEET_STATE_GLYPHS
            if states.get(name)
        ] + [
            (name, "?") for name in sorted(states)
            if name not in known and states.get(name)
        ]
        bar = []
        used = 0
        for index, (name, glyph) in enumerate(ordered):
            if index == len(ordered) - 1:
                cells = self.bar_cells - used
            else:
                # At least one cell per populated state, so rare states
                # stay visible in wide fleets.
                cells = max(1, round(states[name] / total * self.bar_cells))
                cells = min(cells, self.bar_cells - used - (len(ordered) - index - 1))
            bar.append(glyph * cells)
            used += cells
        return "".join(bar)[: self.bar_cells]

    def render(self) -> str:
        """The current status line (no terminal control codes)."""
        snap = self.snapshot
        if not snap:
            return f"fleet {self.devices} device(s) starting"
        states = snap.get("states") or {}
        parts = [
            f"fleet {snap.get('t_s', 0.0):.3f}s",
            f"[{self.state_bar()}]",
            " ".join(
                f"{name}:{states[name]}"
                for name, _g in FLEET_STATE_GLYPHS if states.get(name)
            ),
        ]
        energy = snap.get("energy_j") or {}
        if "p50" in energy:
            parts.append(f"E p50 {energy['p50']:.3g}J")
        progress = snap.get("progress") or {}
        if progress:
            parts.append(
                f"fp {progress.get('forward_progress', 0)}"
                f" ({progress.get('run_rate', 0.0):.3g} run-s/s)"
            )
        outage = snap.get("outage") or {}
        fraction = float(outage.get("fraction") or 0.0)
        storm = " STORM" if outage.get("storm") else ""
        parts.append(f"outage {fraction:.0%}{storm}")
        devices = snap.get("devices") or {}
        parts.append(
            f"{devices.get('final', self.finalized)}"
            f"/{devices.get('total', self.devices)} done"
        )
        return " | ".join(p for p in parts if p)

    def summary_line(self) -> str:
        """The post-run one-liner."""
        snap = self.snapshot or {}
        progress = snap.get("progress") or {}
        counters = snap.get("counters") or {}
        pieces = [
            f"fleet   : {self.devices} device(s), "
            f"{self.ticks} tick(s), {self.samples} sample(s)"
        ]
        if progress:
            pieces.append(
                f"fp {progress.get('forward_progress', 0)}"
            )
        if counters:
            pieces.append(
                f"backups {counters.get('backups', 0)} "
                f"restores {counters.get('restores', 0)}"
            )
        if self.samples:
            pieces.append(
                f"storm samples {self.storm_samples}/{self.samples}"
            )
        return "; ".join(pieces)

    def _draw(self, final: bool = False) -> None:
        if self.interactive:
            # In-place redraw must fit one terminal row; piped lines
            # keep the full record.
            self.stream.write("\r\x1b[2K" + self.render()[: self.width])
            if final:
                self.stream.write("\n" + self.summary_line() + "\n")
            self.stream.flush()
        else:
            self.stream.write(
                (self.summary_line() if final else self.render()) + "\n"
            )
