"""Live run summary: the subscriber behind ``repro observe``.

Tallies the event stream as it happens — event counts, per-state tick
counts (duty cycle), backup/restore success rates — and can print
interim progress lines at a fixed simulated-time interval, so a long
run shows signs of life before the final table.
"""

from __future__ import annotations

import sys
from typing import Dict, Optional, TextIO

from repro.obs import events as ev
from repro.obs.events import Event, EventBus


class LiveSummary:
    """Streaming aggregation of one simulation's event feed.

    Args:
        interval_s: print a progress line every N simulated seconds
            (None disables interim output).
        stream: where progress lines go (default stdout).
    """

    def __init__(
        self,
        interval_s: Optional[float] = None,
        stream: Optional[TextIO] = None,
    ) -> None:
        if interval_s is not None and interval_s <= 0:
            raise ValueError("interval must be positive")
        self.interval_s = interval_s
        self.stream = stream if stream is not None else sys.stdout
        self.counts: Dict[str, int] = {}
        self.state_ticks: Dict[str, int] = {}
        self.instructions = 0
        self.last_t_s = 0.0
        self._next_report_s = interval_s

    # -- subscription -------------------------------------------------------

    def attach(self, bus: EventBus) -> "LiveSummary":
        """Subscribe to everything on ``bus``; returns self."""
        bus.subscribe(self.on_event)
        return self

    def on_event(self, event: Event) -> None:
        self.counts[event.name] = self.counts.get(event.name, 0) + 1
        self.last_t_s = max(self.last_t_s, event.t_s)
        if event.name == ev.TICK:
            state = event.data.get("state", "?")
            self.state_ticks[state] = self.state_ticks.get(state, 0) + 1
            self.instructions += event.data.get("instructions", 0)
            if (
                self._next_report_s is not None
                and event.t_s >= self._next_report_s
            ):
                self._next_report_s += self.interval_s
                print(self.progress_line(), file=self.stream)

    # -- derived statistics -------------------------------------------------

    @property
    def total_ticks(self) -> int:
        return sum(self.state_ticks.values())

    @property
    def duty_cycle(self) -> float:
        """Fraction of observed ticks spent executing."""
        total = self.total_ticks
        return self.state_ticks.get("run", 0) / total if total else 0.0

    @property
    def backup_success_rate(self) -> float:
        """Committed / attempted backups (1.0 when none attempted)."""
        ok = self.counts.get(ev.BACKUP_COMMIT, 0)
        fail = self.counts.get(ev.BACKUP_FAIL, 0)
        return ok / (ok + fail) if (ok + fail) else 1.0

    @property
    def restore_success_rate(self) -> float:
        """Committed / attempted restores (1.0 when none attempted)."""
        ok = self.counts.get(ev.RESTORE_COMMIT, 0)
        fail = self.counts.get(ev.RESTORE_FAIL, 0)
        return ok / (ok + fail) if (ok + fail) else 1.0

    @property
    def outages(self) -> int:
        return self.counts.get(ev.OUTAGE_BEGIN, 0)

    # -- rendering ----------------------------------------------------------

    def progress_line(self) -> str:
        """One-line interim status."""
        return (
            f"[{self.last_t_s:7.3f}s] duty={self.duty_cycle:.1%} "
            f"backups={self.counts.get(ev.BACKUP_COMMIT, 0)} "
            f"restores={self.counts.get(ev.RESTORE_COMMIT, 0)} "
            f"outages={self.outages} "
            f"instr={self.instructions}"
        )

    def render(self) -> str:
        """The final summary table."""
        lines = [
            f"simulated time     : {self.last_t_s:.3f} s",
            f"duty cycle         : {self.duty_cycle:.1%}",
            f"backup success     : {self.backup_success_rate:.1%} "
            f"({self.counts.get(ev.BACKUP_COMMIT, 0)} ok, "
            f"{self.counts.get(ev.BACKUP_FAIL, 0)} failed)",
            f"restore success    : {self.restore_success_rate:.1%} "
            f"({self.counts.get(ev.RESTORE_COMMIT, 0)} ok, "
            f"{self.counts.get(ev.RESTORE_FAIL, 0)} failed)",
            f"outages observed   : {self.outages}",
            f"instructions       : {self.instructions}",
            "event counts       :",
        ]
        for name in sorted(self.counts):
            if name == ev.TICK:
                continue
            lines.append(f"  {name:22s} {self.counts[name]:>8d}")
        return "\n".join(lines)
