"""The simulation event bus and its typed event vocabulary.

Every dynamic phenomenon the NVP literature cares about — power
outages, platform state transitions, the backup/restore lifecycle,
policy decisions, threshold recomputation — is published on one
:class:`EventBus` as a named :class:`Event` stamped with simulation
time and a monotonic sequence number.

Design constraints:

* **near-zero overhead when disabled** — ``emit`` returns before
  constructing an :class:`Event` unless someone subscribed to that
  event name, and producers guard their calls with a plain
  ``bus is not None`` test, so an un-observed simulation allocates
  nothing on the hot path;
* **deterministic ordering** — the sequence number makes event order
  total even when many events share one tick timestamp.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

# -- event vocabulary --------------------------------------------------------

#: Simulation lifecycle.
SIM_BEGIN = "sim.begin"
SIM_END = "sim.end"
#: Per-tick sample (state, instructions, stored energy).  Emitted only
#: when a subscriber asked for it — it is the one per-tick event, and
#: the one event that forces the exact tick engine (subscribing to
#: anything else keeps the steady-state fast-forward enabled; see
#: ``docs/performance.md``).
TICK = "sim.tick"
#: Coarse periodic sample (state, tick index) emitted every
#: ``sample_stride`` ticks when the simulator was configured with a
#: stride.  Unlike :data:`TICK` it is synthesizable from run-length
#: fast-forward output, so it is fast-path compatible.
SAMPLE = "sim.sample"
#: Platform state machine changed state ("off" -> "run", ...).
STATE_TRANSITION = "state.transition"
#: Harvested power crossed the operating threshold downward / upward.
OUTAGE_BEGIN = "outage.begin"
OUTAGE_END = "outage.end"
#: Backup lifecycle (hardware backup controller).
BACKUP_START = "backup.start"
BACKUP_COMMIT = "backup.commit"
BACKUP_FAIL = "backup.fail"
#: Restore lifecycle.
RESTORE_START = "restore.start"
RESTORE_COMMIT = "restore.commit"
RESTORE_FAIL = "restore.fail"
#: Successful power-up (``cold=True`` for a cold start with no image).
WAKE = "wake"
#: Supply collapsed mid-run before a backup could trigger.
POWER_COLLAPSE = "power.collapse"
#: Adaptive-margin feedback.
MARGIN_RAISE = "margin.raise"
MARGIN_DECAY = "margin.decay"
#: Energy-threshold plan (re)computed.
THRESHOLD_RECOMPUTE = "threshold.recompute"
#: A power-management policy made a decision (DPM throttle,
#: frequency-scaling recommendation, ML configuration match).
POLICY_DECISION = "policy.decision"
#: Experiment-engine sweep lifecycle (one simulation per point).
SWEEP_BEGIN = "sweep.begin"
SWEEP_POINT = "sweep.point"
SWEEP_END = "sweep.end"
#: Fleet-kernel lifecycle (N devices advanced in lockstep).
FLEET_BEGIN = "fleet.begin"
FLEET_DEVICE = "fleet.device"
FLEET_END = "fleet.end"
#: Periodic fleet-telemetry sample: the payload carries one population
#: snapshot (``data["snapshot"]``) — devices per state, energy
#: percentiles, progress rate, outage fraction.  Emitted by
#: :class:`repro.fleet.telemetry.FleetTelemetry` at its cadence, never
#: per tick, so it is dashboard-rate by construction.
FLEET_SAMPLE = "fleet.sample"

#: Every event name the stack emits, for validation and summaries.
EVENT_NAMES: Tuple[str, ...] = (
    SIM_BEGIN,
    SIM_END,
    TICK,
    SAMPLE,
    STATE_TRANSITION,
    OUTAGE_BEGIN,
    OUTAGE_END,
    BACKUP_START,
    BACKUP_COMMIT,
    BACKUP_FAIL,
    RESTORE_START,
    RESTORE_COMMIT,
    RESTORE_FAIL,
    WAKE,
    POWER_COLLAPSE,
    MARGIN_RAISE,
    MARGIN_DECAY,
    THRESHOLD_RECOMPUTE,
    POLICY_DECISION,
    SWEEP_BEGIN,
    SWEEP_POINT,
    SWEEP_END,
    FLEET_BEGIN,
    FLEET_DEVICE,
    FLEET_END,
    FLEET_SAMPLE,
)

#: Every event name except the per-tick :data:`TICK` sample — the
#: subscription set that keeps the fast-forward engine enabled.  The
#: default recording set for CLI exporters.
NON_TICK_EVENT_NAMES: Tuple[str, ...] = tuple(
    name for name in EVENT_NAMES if name != TICK
)


class Event:
    """One published event.

    Attributes:
        name: event name (one of :data:`EVENT_NAMES`).
        t_s: simulation time, seconds.
        seq: monotonic per-bus sequence number (total order).
        data: event payload.
    """

    __slots__ = ("name", "t_s", "seq", "data")

    def __init__(self, name: str, t_s: float, seq: int, data: Dict) -> None:
        self.name = name
        self.t_s = t_s
        self.seq = seq
        self.data = data

    def to_dict(self) -> Dict:
        """JSON-serialisable form (used by the JSONL exporter)."""
        return {"name": self.name, "t_s": self.t_s, "seq": self.seq, **self.data}

    def __repr__(self) -> str:
        return f"Event({self.name!r}, t={self.t_s:.6g}s, seq={self.seq}, {self.data})"


Subscriber = Callable[[Event], None]


class StagedEvent:
    """An emit captured during :meth:`EventBus.begin_staging`.

    Producers running inside an opaque bulk operation (a platform's
    ``fast_forward``) emit as usual; the bus buffers the calls with
    their timestamps and the tick the producer stamped via
    :meth:`EventBus.set_clock`, so the caller can later interleave them
    with synthesized events in exact-engine order (see
    :mod:`repro.obs.synth`).
    """

    __slots__ = ("name", "t_s", "tick", "data")

    def __init__(self, name: str, t_s: float, tick: int, data: Dict) -> None:
        self.name = name
        self.t_s = t_s
        self.tick = tick
        self.data = data

    def __repr__(self) -> str:
        return (
            f"StagedEvent({self.name!r}, t={self.t_s:.6g}s, "
            f"tick={self.tick}, {self.data})"
        )


class EventBus:
    """Publish/subscribe hub for simulation events.

    Producers call :meth:`emit`; consumers :meth:`subscribe` either to
    everything or to a set of event names.  The bus carries the
    simulation clock (:attr:`now_s`): the simulator advances it once
    per tick so producers deeper in the stack (platform, policies)
    need no time plumbing of their own.
    """

    def __init__(self) -> None:
        self.now_s: float = 0.0
        #: Tick index matching :attr:`now_s`; producers inside a bulk
        #: ``fast_forward`` stamp both via :meth:`set_clock` so staged
        #: emits can later be merged in tick order.
        self.now_tick: int = 0
        self._seq = 0
        self._all: List[Subscriber] = []
        self._named: Dict[str, List[Subscriber]] = {}
        self._staging: Optional[List[StagedEvent]] = None

    # -- subscription ------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True if any subscriber is attached."""
        return bool(self._all) or bool(self._named)

    def wants(self, name: str) -> bool:
        """True if an emit of ``name`` would reach a subscriber."""
        return bool(self._all) or name in self._named

    def subscribe(
        self, callback: Subscriber, names: Optional[Iterable[str]] = None
    ) -> Subscriber:
        """Attach a subscriber (to all events, or to ``names`` only).

        Returns the callback, so it can be passed to
        :meth:`unsubscribe` later.
        """
        if names is None:
            self._all.append(callback)
        else:
            for name in names:
                self._named.setdefault(name, []).append(callback)
        return callback

    def unsubscribe(self, callback: Subscriber) -> None:
        """Detach a subscriber wherever it is registered."""
        if callback in self._all:
            self._all.remove(callback)
        for listeners in list(self._named.values()):
            if callback in listeners:
                listeners.remove(callback)
        self._named = {k: v for k, v in self._named.items() if v}

    def record(self, names: Optional[Iterable[str]] = None) -> "EventLog":
        """Attach and return a collecting :class:`EventLog`."""
        log = EventLog()
        self.subscribe(log.append, names)
        return log

    # -- clock + staging ---------------------------------------------------

    def set_clock(self, tick: int, dt_s: float) -> None:
        """Stamp the bus clock from a tick index.

        ``now_s`` is computed as ``tick * dt_s`` — the same float
        product the exact engine uses — so events emitted from inside a
        bulk operation carry bitwise-identical timestamps.
        """
        self.now_tick = tick
        self.now_s = tick * dt_s

    def begin_staging(self) -> None:
        """Start buffering emits instead of delivering them.

        While staging is active, :meth:`emit` appends a
        :class:`StagedEvent` (stamped with :attr:`now_tick`) and
        delivers nothing; the sequence number does not advance.  The
        caller drains the buffer with :meth:`end_staging` and replays
        it in merged order (see :mod:`repro.obs.synth`).
        """
        if self._staging is not None:
            raise RuntimeError("event staging already active")
        self._staging = []

    def end_staging(self) -> List[StagedEvent]:
        """Stop staging and return the buffered emits in call order."""
        if self._staging is None:
            raise RuntimeError("event staging not active")
        staged = self._staging
        self._staging = None
        return staged

    # -- publication -------------------------------------------------------

    def emit(self, name: str, t_s: Optional[float] = None, **data) -> Optional[Event]:
        """Publish an event; returns it, or None if nobody listens.

        ``t_s`` defaults to the bus clock (:attr:`now_s`).  The
        :class:`Event` object is only constructed when at least one
        subscriber will receive it.  During staging
        (:meth:`begin_staging`) the call is buffered instead of
        delivered and ``None`` is returned.
        """
        named = self._named.get(name)
        if not self._all and not named:
            return None
        if self._staging is not None:
            self._staging.append(
                StagedEvent(
                    name, self.now_s if t_s is None else t_s, self.now_tick, data
                )
            )
            return None
        self._seq += 1
        event = Event(name, self.now_s if t_s is None else t_s, self._seq, data)
        for callback in self._all:
            callback(event)
        if named:
            for callback in named:
                callback(event)
        return event


class EventLog:
    """An ordered, queryable collection of events.

    The standard sink: subscribe it to a bus (``bus.record()``) and
    hand it to the exporters afterwards.
    """

    def __init__(self, events: Optional[List[Event]] = None) -> None:
        self.events: List[Event] = list(events) if events else []

    def append(self, event: Event) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __getitem__(self, index):
        return self.events[index]

    def names(self) -> List[str]:
        """Event names in publication order."""
        return [event.name for event in self.events]

    def counts(self) -> Dict[str, int]:
        """Event count per name."""
        totals: Dict[str, int] = {}
        for event in self.events:
            totals[event.name] = totals.get(event.name, 0) + 1
        return totals

    def filter(self, *names: str) -> "EventLog":
        """A new log holding only the named events (order preserved)."""
        wanted = set(names)
        return EventLog([event for event in self.events if event.name in wanted])

    def between(self, start_s: float, stop_s: float) -> "EventLog":
        """Events with ``start_s <= t_s < stop_s``."""
        return EventLog(
            [event for event in self.events if start_s <= event.t_s < stop_s]
        )
