"""Run-length event synthesis: observability that survives the fast path.

The steady-state fast-forward engine advances through analytically
predictable tick runs in bulk, so nothing walks the trace tick by tick
— yet subscribers expect the exact engine's event stream.  The
:class:`FastPathEventSynthesizer` reconstructs that stream, bitwise
identical for every non-TICK event, from three sources:

* **outage crossings** precomputed once from the rectified power trace
  with the same float comparisons and the same ``tick * dt`` time
  products the incremental
  :class:`~repro.harvest.outage.OutageTracker` performs;
* **platform emits staged** by the :class:`~repro.obs.events.EventBus`
  during ``fast_forward`` (threshold/restore/wake events, stamped with
  their tick via :meth:`~repro.obs.events.EventBus.set_clock`);
* **state transitions and coarse samples** synthesized from the
  ``(state, ticks)`` runs the fast path returns.

The merged stream is delivered in the exact engine's per-tick phase
order — outage crossings first, then platform-interior emits, then the
state transition, then the coarse :data:`~repro.obs.events.SAMPLE` —
so a non-TICK subscriber cannot tell which engine ran.  Equivalence is
property-tested across presets and randomized traces in
``tests/test_obs_synth.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import events as ev
from repro.obs.events import EventBus, StagedEvent

#: Per-tick emission phases of the exact engine, used as merge keys:
#: the simulator updates outage tracking before ``platform.tick``,
#: the platform emits its interior events during the tick, the
#: simulator emits the state transition after the tick returns, and
#: the coarse sample closes the tick.
PHASE_OUTAGE = 0
PHASE_PLATFORM = 1
PHASE_TRANSITION = 2
PHASE_SAMPLE = 3


class FastPathEventSynthesizer:
    """Emits the exact engine's non-TICK event stream from run lengths.

    One instance serves one simulation: the simulator creates it when
    a bus is attached but no subscriber wants per-tick events, calls
    :meth:`integrate` after every fast-forwarded segment,
    :meth:`flush_outages` before every exact tick (hybrid runs
    interleave both engines), and :meth:`finish` at the end.

    Args:
        bus: the event bus to publish on.
        p_dc_w: the full rectified per-tick power array (the
            simulator's vectorized pre-pass output).
        threshold_w: operating threshold for outage events.
        dt_s: tick duration.
        sample_stride: emit a :data:`~repro.obs.events.SAMPLE` every
            this many ticks (0 disables sampling).
    """

    def __init__(
        self,
        bus: EventBus,
        p_dc_w: np.ndarray,
        threshold_w: float,
        dt_s: float,
        sample_stride: int = 0,
    ) -> None:
        if threshold_w < 0:
            raise ValueError("threshold cannot be negative")
        if sample_stride < 0:
            raise ValueError("sample stride cannot be negative")
        self.bus = bus
        self.threshold_w = threshold_w
        self.dt_s = dt_s
        self.sample_stride = int(sample_stride)
        # Vectorized edge detection over the whole trace, mirroring
        # outage_intervals(); ticks become plain Python ints so the
        # ``tick * dt`` products match the exact engine's float math.
        below = np.asarray(p_dc_w) < threshold_w
        begins: List[int] = []
        ends: List[int] = []
        if below.any():
            edges = np.diff(below.astype(np.int8))
            begins = [int(i) for i in np.flatnonzero(edges == 1) + 1]
            ends = [int(i) for i in np.flatnonzero(edges == -1) + 1]
            if below[0]:
                begins.insert(0, 0)
        # Begins and ends strictly alternate (a supply cannot cross the
        # threshold twice at one tick), so a plain sort interleaves
        # them in occurrence order.
        crossings = [(t, True) for t in begins] + [(t, False) for t in ends]
        crossings.sort()
        self._crossings: List[Tuple[int, bool]] = crossings
        self._next = 0
        self._below = False
        self._began_s = 0.0

    # -- outage delivery ---------------------------------------------------

    def _emit_crossing(self, tick: int, is_begin: bool) -> None:
        t_s = tick * self.dt_s
        if is_begin:
            self._below = True
            self._began_s = t_s
            self.bus.emit(ev.OUTAGE_BEGIN, t_s, threshold_w=self.threshold_w)
        else:
            self._below = False
            self.bus.emit(ev.OUTAGE_END, t_s, duration_s=t_s - self._began_s)

    def flush_outages(self, through_tick: int) -> None:
        """Deliver every pending crossing with ``tick <= through_tick``.

        The simulator calls this before each exact tick, where the
        exact engine would have run its incremental outage update.
        """
        crossings = self._crossings
        while self._next < len(crossings):
            tick, is_begin = crossings[self._next]
            if tick > through_tick:
                break
            self._next += 1
            self._emit_crossing(tick, is_begin)

    # -- segment delivery --------------------------------------------------

    def integrate(
        self,
        start: int,
        runs: Sequence[Tuple[str, int]],
        staged: Optional[List[StagedEvent]],
        prev_state: Optional[str],
    ) -> None:
        """Synthesize and deliver the events of one fast segment.

        Args:
            start: first tick covered by ``runs``.
            runs: the ``(state, ticks)`` runs ``fast_forward`` returned.
            staged: platform emits captured by the bus during the call.
            prev_state: the simulator's run state before the segment
                (``None`` at the very start of the simulation).
        """
        # (tick, phase, kind, payload) — kind True = outage crossing
        # carrying is_begin; kind False = direct emit carrying
        # (name, t_s, data).  The sort is stable, so staged platform
        # events sharing one tick keep their call order.
        entries: List[Tuple[int, int, bool, object]] = []
        index = start
        state = prev_state
        stride = self.sample_stride
        for run_state, count in runs:
            if run_state != state:
                entries.append(
                    (
                        index,
                        PHASE_TRANSITION,
                        False,
                        (
                            ev.STATE_TRANSITION,
                            None,
                            {"state": run_state, "prev": state},
                        ),
                    )
                )
                state = run_state
            if stride:
                first = index + (-index % stride)
                for tick in range(first, index + count, stride):
                    entries.append(
                        (
                            tick,
                            PHASE_SAMPLE,
                            False,
                            (ev.SAMPLE, None, {"state": run_state, "tick": tick}),
                        )
                    )
            index += count
        crossings = self._crossings
        end_tick = index - 1
        while self._next < len(crossings):
            tick, is_begin = crossings[self._next]
            if tick > end_tick:
                break
            self._next += 1
            entries.append((tick, PHASE_OUTAGE, True, is_begin))
        if staged:
            for event in staged:
                entries.append(
                    (
                        event.tick,
                        PHASE_PLATFORM,
                        False,
                        (event.name, event.t_s, event.data),
                    )
                )
        entries.sort(key=lambda e: (e[0], e[1]))
        emit = self.bus.emit
        dt = self.dt_s
        for tick, _phase, is_crossing, payload in entries:
            if is_crossing:
                self._emit_crossing(tick, payload)
            else:
                name, t_s, data = payload
                emit(name, tick * dt if t_s is None else t_s, **data)

    def flush_staged(
        self, through_tick: int, staged: List[StagedEvent]
    ) -> None:
        """Deliver emits staged by a ``fast_forward`` probe that
        returned no runs (e.g. a threshold recompute before deciding
        the state cannot be fast-forwarded).

        Pending outage crossings at or before ``through_tick`` go
        first, matching the exact engine's phase order for the tick
        the probe inspected.
        """
        self.flush_outages(through_tick)
        emit = self.bus.emit
        for event in staged:
            emit(event.name, event.t_s, **event.data)

    # -- end of run --------------------------------------------------------

    def finish(self, ticks_run: int, end_t: float) -> None:
        """Close the stream after the last processed tick.

        Delivers crossings among the processed ticks that no segment
        covered, then closes a still-open outage at ``end_t`` exactly
        like :meth:`~repro.harvest.outage.OutageTracker.finish`.
        """
        if ticks_run:
            self.flush_outages(ticks_run - 1)
        if self._below:
            self._below = False
            self.bus.emit(
                ev.OUTAGE_END, end_t, duration_s=end_t - self._began_s
            )
