"""Streaming population statistics for fleet-scale simulation.

A 10k-device fleet must never materialize per-device time series just
to answer "what is the p95 stored energy right now?".  This module
holds the bounded-memory building blocks the fleet telemetry layer
(:mod:`repro.fleet.telemetry`) samples into:

* :class:`P2Quantile` — the classic P\\ :sup:`2` streaming quantile
  estimator (Jain & Chlamtac, 1985): five markers, O(1) memory,
  O(1) per observation.  Used for scalar per-sample series (outage
  fraction, progress rate) whose full history is never kept.
* :class:`QuantileDigest` — a small bundle of P² sketches plus exact
  count/min/max/sum, summarizing one scalar stream.
* :class:`FixedBinHistogram` — fixed-edge (linear or log-spaced)
  histogram with a vectorized :meth:`~FixedBinHistogram.observe_many`
  for per-device arrays (energy across the whole population, every
  sample) and deterministic conservative quantiles (upper bin edge).

and the outage-correlation analysis that answers the ROADMAP's
"cross-device outage correlation" follow-on:

* :func:`windowed_outages` — per-device boolean outage-by-window
  matrix derived from the shared concatenated trace + per-device
  offsets (no simulation required).
* :func:`co_outage_matrix` — pairwise Jaccard co-outage similarity;
  symmetric with a unit diagonal by construction (two devices that
  never see an outage are defined as perfectly co-outaged).
* :func:`find_storms` — contiguous runs of windows where at least
  ``threshold`` of the fleet is in outage.

Everything here is deterministic: no wall clock, no RNG, so snapshots
built from these primitives are byte-stable across identical runs and
usable in golden-file tests.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "P2Quantile",
    "QuantileDigest",
    "FixedBinHistogram",
    "windowed_outages",
    "co_outage_matrix",
    "find_storms",
]


class P2Quantile:
    """Streaming estimate of one quantile via the P² algorithm.

    Keeps five markers (min, two intermediates, the target quantile,
    max) and adjusts their heights with piecewise-parabolic
    interpolation as observations stream in.  Exact for the first five
    observations; O(1) memory and time afterwards.
    """

    __slots__ = ("q", "count", "_initial", "_heights", "_positions", "_desired",
                 "_increments")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.q = float(q)
        self.count = 0
        self._initial: List[float] = []
        self._heights: Optional[List[float]] = None
        self._positions: Optional[List[float]] = None
        self._desired: Optional[List[float]] = None
        self._increments = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)

    def observe(self, x: float) -> None:
        """Fold one observation into the sketch."""
        x = float(x)
        self.count += 1
        if self._heights is None:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._initial.sort()
                q = self.q
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q,
                                 3.0 + 2.0 * q, 5.0]
            return
        h = self._heights
        pos = self._positions
        desired = self._desired
        if x < h[0]:
            h[0] = x
            cell = 0
        elif x >= h[4]:
            h[4] = x
            cell = 3
        else:
            cell = 0
            while not (h[cell] <= x < h[cell + 1]):
                cell += 1
        for i in range(cell + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            desired[i] += self._increments[i]
        for i in (1, 2, 3):
            drift = desired[i] - pos[i]
            if (drift >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                drift <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if drift >= 0.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h = self._heights
        pos = self._positions
        return h[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step)
            * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step)
            * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h = self._heights
        pos = self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (pos[j] - pos[i])

    @property
    def value(self) -> float:
        """Current estimate (``nan`` before any observation).

        Exact while fewer than five observations have been seen.
        """
        if self._heights is not None:
            return self._heights[2]
        if not self._initial:
            return math.nan
        ordered = sorted(self._initial)
        rank = self.q * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac


#: Default quantiles a :class:`QuantileDigest` tracks — matches the
#: fleet report's population percentiles.
DIGEST_QUANTILES = (0.05, 0.50, 0.95)


class QuantileDigest:
    """Bounded-memory summary of one scalar stream.

    Exact ``count``/``min``/``max``/``sum`` plus one :class:`P2Quantile`
    per entry of ``quantiles``.
    """

    __slots__ = ("count", "minimum", "maximum", "total", "_sketches")

    def __init__(self, quantiles: Sequence[float] = DIGEST_QUANTILES) -> None:
        self.count = 0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0
        self._sketches = {float(q): P2Quantile(q) for q in quantiles}

    def observe(self, x: float) -> None:
        x = float(x)
        self.count += 1
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x
        self.total += x
        for sketch in self._sketches.values():
            sketch.observe(x)

    def quantile(self, q: float) -> float:
        return self._sketches[float(q)].value

    def summary(self) -> Dict[str, float]:
        """JSON-safe summary: count/min/max/mean + tracked pXX."""
        out: Dict[str, float] = {"count": self.count}
        if self.count:
            out["min"] = self.minimum
            out["max"] = self.maximum
            out["mean"] = self.total / self.count
            for q, sketch in sorted(self._sketches.items()):
                out[f"p{round(q * 100):02d}"] = sketch.value
        return out


class FixedBinHistogram:
    """Fixed-edge histogram with vectorized bulk observation.

    Memory is bounded by the number of bins regardless of how many
    values stream through; values outside ``[edges[0], edges[-1]]``
    land in dedicated underflow/overflow buckets so the count never
    lies.  Quantiles are conservative upper bin edges — deterministic
    and monotone, which is what golden-file tests need.
    """

    __slots__ = ("edges", "counts", "underflow", "overflow", "count",
                 "total", "minimum", "maximum")

    def __init__(self, edges: Sequence[float]) -> None:
        arr = np.asarray(edges, dtype=np.float64)
        if arr.ndim != 1 or arr.size < 2:
            raise ValueError("need at least two bin edges")
        if not np.all(np.diff(arr) > 0):
            raise ValueError("bin edges must be strictly increasing")
        self.edges = arr
        self.counts = np.zeros(arr.size - 1, dtype=np.int64)
        self.underflow = 0
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    @classmethod
    def log_bins(cls, lo: float, hi: float, n_bins: int) -> "FixedBinHistogram":
        """Log-spaced edges from ``lo`` to ``hi`` (both > 0)."""
        if not (0.0 < lo < hi):
            raise ValueError("need 0 < lo < hi for log bins")
        return cls(np.geomspace(lo, hi, n_bins + 1))

    @classmethod
    def linear_bins(cls, lo: float, hi: float, n_bins: int) -> "FixedBinHistogram":
        """Evenly spaced edges from ``lo`` to ``hi``."""
        if not lo < hi:
            raise ValueError("need lo < hi")
        return cls(np.linspace(lo, hi, n_bins + 1))

    def observe(self, x: float) -> None:
        self.observe_many(np.asarray([x], dtype=np.float64))

    def observe_many(self, values: np.ndarray) -> None:
        """Fold a whole array of observations in one vector pass."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        self.count += int(values.size)
        self.total += float(values.sum())
        self.minimum = min(self.minimum, float(values.min()))
        self.maximum = max(self.maximum, float(values.max()))
        # searchsorted: index 0 => underflow, len(edges) => overflow.
        idx = np.searchsorted(self.edges, values, side="right")
        self.underflow += int((idx == 0).sum())
        self.overflow += int((idx == self.edges.size).sum())
        inside = (idx > 0) & (idx < self.edges.size)
        if inside.any():
            self.counts += np.bincount(
                idx[inside] - 1, minlength=self.counts.size
            ).astype(np.int64)

    def quantile(self, q: float) -> float:
        """Conservative quantile: the upper edge of the holding bin.

        Underflow resolves to the exact observed minimum, overflow to
        the exact observed maximum.  ``nan`` when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        seen = self.underflow
        if rank <= seen:
            return self.minimum
        cumulative = seen + np.cumsum(self.counts)
        pos = int(np.searchsorted(cumulative, rank, side="left"))
        if pos >= self.counts.size:
            return self.maximum
        return float(self.edges[pos + 1])

    def summary(self) -> Dict[str, float]:
        """JSON-safe summary mirroring :meth:`QuantileDigest.summary`."""
        out: Dict[str, float] = {"count": self.count}
        if self.count:
            out["min"] = self.minimum
            out["max"] = self.maximum
            out["mean"] = self.total / self.count
            for q in DIGEST_QUANTILES:
                out[f"p{round(q * 100):02d}"] = self.quantile(q)
        return out


# -- outage correlation ----------------------------------------------------


def windowed_outages(
    outage_mask: np.ndarray,
    bases: np.ndarray,
    n_ticks: np.ndarray,
    window_ticks: int,
) -> np.ndarray:
    """Per-device boolean outage-by-window matrix, shape ``(D, W)``.

    ``outage_mask`` is a boolean mask over the *concatenated* fleet
    power array (`True` = tick below the outage threshold); device
    ``d`` owns the slice ``[bases[d], bases[d] + n_ticks[d])``.  A
    window is ``True`` when the device sees at least one outage tick
    in it; ticks past a shorter device's trace end count as powered.
    """
    if window_ticks < 1:
        raise ValueError("window_ticks must be >= 1")
    bases = np.asarray(bases, dtype=np.int64)
    n_ticks = np.asarray(n_ticks, dtype=np.int64)
    if bases.shape != n_ticks.shape:
        raise ValueError("bases and n_ticks must align")
    n_devices = bases.size
    longest = int(n_ticks.max()) if n_devices else 0
    n_windows = (longest + window_ticks - 1) // window_ticks if longest else 0
    out = np.zeros((n_devices, n_windows), dtype=bool)
    padded = n_windows * window_ticks
    for d in range(n_devices):
        span = int(n_ticks[d])
        segment = outage_mask[int(bases[d]): int(bases[d]) + span]
        if padded != span:
            segment = np.pad(segment, (0, padded - span))
        out[d] = segment.reshape(n_windows, window_ticks).any(axis=1)
    return out


def co_outage_matrix(windows: np.ndarray) -> np.ndarray:
    """Pairwise Jaccard co-outage similarity, shape ``(D, D)``.

    ``windows`` is the boolean ``(D, W)`` matrix from
    :func:`windowed_outages`.  Entry ``(i, j)`` is
    ``|W_i ∩ W_j| / |W_i ∪ W_j]`` over outage-window sets; two devices
    with no outage windows at all are defined as perfectly correlated
    (``1.0``), which makes the diagonal identically one and the matrix
    symmetric by construction.
    """
    windows = np.asarray(windows, dtype=bool)
    if windows.ndim != 2:
        raise ValueError("windows must be a (devices, windows) matrix")
    counts = windows.sum(axis=1, dtype=np.int64)
    intersection = (windows.astype(np.int64) @ windows.astype(np.int64).T)
    union = counts[:, None] + counts[None, :] - intersection
    with np.errstate(invalid="ignore", divide="ignore"):
        matrix = np.where(union > 0, intersection / np.maximum(union, 1), 1.0)
    return matrix


def find_storms(
    fractions: np.ndarray,
    window_s: float,
    threshold: float = 0.5,
) -> List[Dict[str, float]]:
    """Contiguous runs of windows where the fleet-outage fraction is high.

    ``fractions[w]`` is the fraction of devices in outage during window
    ``w`` (i.e. ``windows.mean(axis=0)``).  Returns one record per
    storm: start/end seconds, duration, and peak fraction.
    """
    fractions = np.asarray(fractions, dtype=np.float64)
    stormy = fractions >= threshold
    storms: List[Dict[str, float]] = []
    start = None
    for w, flag in enumerate(stormy):
        if flag and start is None:
            start = w
        elif not flag and start is not None:
            storms.append(_storm_record(fractions, start, w, window_s))
            start = None
    if start is not None:
        storms.append(_storm_record(fractions, start, fractions.size, window_s))
    return storms


def _storm_record(
    fractions: np.ndarray, start: int, stop: int, window_s: float
) -> Dict[str, float]:
    return {
        "start_s": start * window_s,
        "end_s": stop * window_s,
        "duration_s": (stop - start) * window_s,
        "peak_fraction": float(fractions[start:stop].max()),
        "windows": stop - start,
    }
