"""Exporters: JSONL event logs, Chrome traces, CSV, Prometheus text.

The Chrome exporter emits the Trace Event Format understood by
Perfetto and ``chrome://tracing``: platform state spans and
backup/restore operations become duration events (``ph: "X"``),
one-shot happenings (failures, wakes, policy decisions) become
instants (``ph: "i"``), and the stored-energy samples become counter
events (``ph: "C"``).  Simulation seconds map to trace microseconds,
so one 0.1 ms tick renders as 100 trace units.

The snapshot layer at the bottom is the transport-agnostic face of
fleet telemetry: a *snapshot* is any JSON-safe nested mapping of
numbers.  :func:`flatten_snapshot` lowers it deterministically to
sorted ``(name, value)`` pairs (keys joined with ``_``),
:func:`snapshot_prometheus` renders those pairs as Prometheus gauges,
and :class:`SnapshotWriter` appends the raw snapshots to a JSONL
time-series file (optionally mirroring the latest snapshot to a
``.prom`` textfile a node-exporter-style collector can scrape).
:func:`prometheus_text` does the same for a whole
:class:`~repro.obs.metrics.MetricsRegistry`.  All output is
byte-stable for identical inputs: names sorted, labels sorted, floats
rendered with ``repr`` (shortest round-trip).
"""

from __future__ import annotations

import csv
import json
import math
import os
import re
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs import events as ev
from repro.obs.events import Event, EventLog
from repro.obs.metrics import MetricsRegistry

#: Thread ids used in exported traces.
TID_STATE = 0
TID_OPS = 1
TID_OUTAGE = 2
TID_POLICY = 3

_THREAD_NAMES = {
    TID_STATE: "platform state",
    TID_OPS: "backup/restore",
    TID_OUTAGE: "supply outages",
    TID_POLICY: "policy/margin",
}

#: Events rendered as instants on the policy/margin thread.
_INSTANT_EVENTS = {
    ev.WAKE,
    ev.POWER_COLLAPSE,
    ev.MARGIN_RAISE,
    ev.MARGIN_DECAY,
    ev.THRESHOLD_RECOMPUTE,
    ev.POLICY_DECISION,
    ev.BACKUP_FAIL,
    ev.RESTORE_FAIL,
}


def _us(t_s: float) -> float:
    return t_s * 1e6


def chrome_trace(
    log: Iterable[Event],
    process_name: str = "nvpsim",
    pid: int = 0,
    counter_decimation: int = 10,
) -> List[Dict]:
    """Convert an event log to a list of Chrome trace events.

    Args:
        log: the events (an :class:`~repro.obs.events.EventLog` or any
            iterable), in sequence order.
        process_name: trace process name shown by the viewer.
        pid: trace process id (use distinct pids to overlay platforms).
        counter_decimation: keep every N-th stored-energy counter
            sample (per-tick counters dominate file size otherwise).
    """
    if counter_decimation < 1:
        raise ValueError("counter_decimation must be >= 1")
    out: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for tid, name in _THREAD_NAMES.items():
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )

    state_open: Optional[Event] = None
    op_open: Dict[str, Event] = {}
    outage_open: Optional[Event] = None
    last_t = 0.0
    tick_index = 0

    def close_state(until_s: float) -> None:
        nonlocal state_open
        if state_open is None:
            return
        out.append(
            {
                "name": state_open.data.get("state", "?"),
                "cat": "state",
                "ph": "X",
                "ts": _us(state_open.t_s),
                "dur": max(0.0, _us(until_s) - _us(state_open.t_s)),
                "pid": pid,
                "tid": TID_STATE,
                "args": {},
            }
        )
        state_open = None

    for event in log:
        last_t = max(last_t, event.t_s)
        name = event.name
        if name == ev.STATE_TRANSITION:
            close_state(event.t_s)
            state_open = event
        elif name in (ev.BACKUP_START, ev.RESTORE_START):
            op_open[name.split(".", 1)[0]] = event
        elif name in (ev.BACKUP_COMMIT, ev.BACKUP_FAIL,
                      ev.RESTORE_COMMIT, ev.RESTORE_FAIL):
            kind = name.split(".", 1)[0]
            start = op_open.pop(kind, event)
            out.append(
                {
                    "name": kind,
                    "cat": "ops",
                    "ph": "X",
                    "ts": _us(start.t_s),
                    "dur": max(_us(event.t_s) - _us(start.t_s),
                               _us(event.data.get("time_s", 0.0))),
                    "pid": pid,
                    "tid": TID_OPS,
                    "args": {**event.data, "outcome": name.split(".", 1)[1]},
                }
            )
        elif name == ev.OUTAGE_BEGIN:
            outage_open = event
        elif name == ev.OUTAGE_END:
            start_s = outage_open.t_s if outage_open is not None else event.t_s
            outage_open = None
            out.append(
                {
                    "name": "outage",
                    "cat": "supply",
                    "ph": "X",
                    "ts": _us(start_s),
                    "dur": max(0.0, _us(event.t_s) - _us(start_s)),
                    "pid": pid,
                    "tid": TID_OUTAGE,
                    "args": event.data,
                }
            )
        elif name == ev.TICK:
            if "energy_j" in event.data and tick_index % counter_decimation == 0:
                out.append(
                    {
                        "name": "stored energy",
                        "cat": "energy",
                        "ph": "C",
                        "ts": _us(event.t_s),
                        "pid": pid,
                        "tid": TID_STATE,
                        "args": {"energy_j": event.data["energy_j"]},
                    }
                )
            tick_index += 1
        if name in _INSTANT_EVENTS:
            out.append(
                {
                    "name": name,
                    "cat": "event",
                    "ph": "i",
                    "ts": _us(event.t_s),
                    "pid": pid,
                    "tid": TID_POLICY,
                    "s": "t",
                    "args": event.data,
                }
            )

    # Close any span still open at the end of the recording.
    close_state(last_t)
    if outage_open is not None:
        out.append(
            {
                "name": "outage",
                "cat": "supply",
                "ph": "X",
                "ts": _us(outage_open.t_s),
                "dur": max(0.0, _us(last_t) - _us(outage_open.t_s)),
                "pid": pid,
                "tid": TID_OUTAGE,
                "args": {},
            }
        )
    return out


def write_chrome_trace(
    log: Iterable[Event],
    path: str,
    process_name: str = "nvpsim",
    counter_decimation: int = 10,
) -> int:
    """Write a Chrome trace JSON file; returns the trace-event count."""
    trace = chrome_trace(
        log, process_name=process_name, counter_decimation=counter_decimation
    )
    with open(path, "w") as handle:
        json.dump({"traceEvents": trace, "displayTimeUnit": "ms"}, handle)
    return len(trace)


#: Keys every Chrome trace event must carry.
REQUIRED_TRACE_KEYS = ("name", "ph", "ts", "pid", "tid")


def load_chrome_trace(path: str) -> List[Dict]:
    """Load and schema-check a Chrome trace JSON file.

    Accepts both the object form (``{"traceEvents": [...]}``) and the
    bare-array form.

    Raises:
        ValueError: if an event is missing a required key, a duration
            event lacks ``dur``, or timestamps are negative.
    """
    with open(path) as handle:
        payload = json.load(handle)
    trace = payload["traceEvents"] if isinstance(payload, dict) else payload
    for index, event in enumerate(trace):
        for key in REQUIRED_TRACE_KEYS:
            if key == "ts" and event.get("ph") == "M":
                continue
            if key not in event:
                raise ValueError(f"trace event {index} missing {key!r}: {event}")
        if event["ph"] == "X":
            if "dur" not in event:
                raise ValueError(f"duration event {index} missing 'dur'")
            if event["dur"] < 0:
                raise ValueError(f"duration event {index} has negative dur")
        if event.get("ts", 0) < 0:
            raise ValueError(f"trace event {index} has negative ts")
    return trace


def write_events_jsonl(log: Iterable[Event], path: str) -> int:
    """Write one JSON object per event; returns the line count."""
    count = 0
    with open(path, "w") as handle:
        for event in log:
            handle.write(json.dumps(event.to_dict()))
            handle.write("\n")
            count += 1
    return count


def read_events_jsonl(path: str) -> EventLog:
    """Load a JSONL event file back into an :class:`EventLog`."""
    log = EventLog()
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            name = record.pop("name")
            t_s = record.pop("t_s")
            seq = record.pop("seq")
            log.append(Event(name, t_s, seq, record))
    return log


def write_metrics_csv(registry: MetricsRegistry, path: str) -> int:
    """Dump every metric series to CSV; returns the data-row count."""
    rows = registry.rows()
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["kind", "name", "labels", "field", "value"])
        for row in rows:
            writer.writerow(row)
    return len(rows)


# -- Prometheus text exposition -------------------------------------------


_PROM_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Mangle a metric name into the Prometheus charset (dots → ``_``)."""
    mangled = _PROM_NAME_BAD.sub("_", name)
    if not mangled or mangled[0].isdigit():
        mangled = "_" + mangled
    return mangled


def _prom_escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _prom_labels(pairs: Iterable[Tuple[str, str]]) -> str:
    """``{a="x",b="y"}`` with label names sorted; ``""`` when empty."""
    rendered = ",".join(
        f'{_prom_name(str(k))}="{_prom_escape(str(v))}"'
        for k, v in sorted(pairs)
    )
    return "{" + rendered + "}" if rendered else ""


def _prom_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry, prefix: str = "") -> str:
    """Render a whole registry in Prometheus text exposition format.

    Counters and gauges become single samples; histograms expose
    cumulative ``_bucket{le=...}`` samples plus ``_sum`` / ``_count``.
    Metric names are sorted, label sets are sorted, so output is
    byte-stable for identical registry contents.
    """
    lines: List[str] = []
    for metric in registry.metrics():
        name = _prom_name(prefix + metric.name)
        if metric.help:
            lines.append(f"# HELP {name} {_prom_escape(metric.help)}")
        lines.append(f"# TYPE {name} {metric.kind}")
        for key, child in sorted(metric.series().items()):
            if metric.kind == "histogram":
                cumulative = 0
                for bound, n in zip(child.buckets, child.counts):
                    cumulative += n
                    le = "+Inf" if math.isinf(bound) else _prom_value(bound)
                    labels = _prom_labels(tuple(key) + (("le", le),))
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                labels = _prom_labels(key)
                lines.append(f"{name}_sum{labels} {_prom_value(child.sum)}")
                lines.append(f"{name}_count{labels} {child.count}")
            else:
                labels = _prom_labels(key)
                lines.append(f"{name}{labels} {_prom_value(child.value)}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(registry: MetricsRegistry, path: str,
                     prefix: str = "") -> int:
    """Write registry exposition to a textfile; returns the byte count."""
    text = prometheus_text(registry, prefix=prefix)
    with open(path, "w") as handle:
        handle.write(text)
    return len(text.encode())


# -- telemetry snapshots ---------------------------------------------------


def flatten_snapshot(
    snapshot: Mapping, prefix: str = "", sep: str = "_"
) -> List[Tuple[str, float]]:
    """Lower a nested numeric mapping to sorted ``(name, value)`` pairs.

    Keys at each level are joined with ``sep``; booleans become 0/1;
    non-numeric leaves (strings, ``None``, lists) are skipped.  The
    result is sorted by name, so two identical snapshots flatten to
    identical pair lists — the determinism contract every transport
    (Prometheus text, CSV, assertions) inherits.
    """
    pairs: List[Tuple[str, float]] = []

    def walk(node: Mapping, stem: str) -> None:
        for key, value in node.items():
            name = f"{stem}{sep}{key}" if stem else str(key)
            if isinstance(value, Mapping):
                walk(value, name)
            elif isinstance(value, bool):
                pairs.append((name, 1.0 if value else 0.0))
            elif isinstance(value, (int, float)):
                pairs.append((name, float(value)))

    walk(snapshot, prefix)
    pairs.sort()
    return pairs


def snapshot_prometheus(snapshot: Mapping, prefix: str = "fleet_") -> str:
    """One snapshot as Prometheus gauges (textfile-collector style)."""
    lines: List[str] = []
    for name, value in flatten_snapshot(snapshot, sep="_"):
        lines.append(f"{_prom_name(prefix + name)} {_prom_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


class SnapshotWriter:
    """Append telemetry snapshots to JSONL, mirroring the latest to .prom.

    Each :meth:`append` writes one ``json.dumps(..., sort_keys=True)``
    line (append mode, flushed per snapshot so a crash loses at most
    the torn last line) and, when ``prom_path`` is set, atomically
    replaces that file with the latest snapshot's Prometheus rendering
    — the textfile-collector contract where scrape always sees a
    complete exposition.
    """

    def __init__(self, path: str, prom_path: Optional[str] = None,
                 prom_prefix: str = "fleet_") -> None:
        self.path = path
        self.prom_path = prom_path
        self.prom_prefix = prom_prefix
        self.count = 0
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a")

    def append(self, snapshot: Mapping) -> None:
        self._handle.write(json.dumps(snapshot, sort_keys=True))
        self._handle.write("\n")
        self._handle.flush()
        self.count += 1
        if self.prom_path:
            tmp = self.prom_path + ".tmp"
            with open(tmp, "w") as handle:
                handle.write(
                    snapshot_prometheus(snapshot, prefix=self.prom_prefix)
                )
            os.replace(tmp, self.prom_path)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "SnapshotWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_snapshots(path: str) -> List[Dict]:
    """Read a JSONL snapshot series back; torn/blank lines are skipped."""
    out: List[Dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                out.append(record)
    return out
