"""Run manifests: everything needed to reproduce a simulation.

A :class:`RunManifest` pins the knobs a result depends on — RNG seed,
configuration, code revision — plus wall-clock timing, so a trace or
metrics file found on disk months later can be traced back to the
exact run that produced it.  Benchmarks and the CLI write one next to
every machine-readable artifact.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, Optional


def git_revision(cwd: Optional[str] = None) -> str:
    """Best-effort ``git rev-parse HEAD`` (``"unknown"`` off-repo)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip()


@dataclass
class RunManifest:
    """Reproducibility record for one run.

    Attributes:
        command: what ran (CLI argv, benchmark id, ...).
        seed: RNG seed(s) the run used.
        config: free-form configuration dictionary.
        git_sha: code revision, ``"unknown"`` outside a checkout.
        python: interpreter version.
        platform: host platform string.
        started_unix: wall-clock start (seconds since epoch).
        duration_s: wall-clock duration, filled by :meth:`finish`.
        resources: process resource usage (CPU seconds, peak RSS KB),
            filled by :meth:`finish`; empty on manifests written before
            it existed.
        extra: anything else worth pinning.
    """

    command: str = ""
    seed: Optional[int] = None
    config: Dict = field(default_factory=dict)
    git_sha: str = "unknown"
    python: str = ""
    platform: str = ""
    started_unix: float = 0.0
    duration_s: Optional[float] = None
    resources: Dict = field(default_factory=dict)
    extra: Dict = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        command: str = "",
        seed: Optional[int] = None,
        config: Optional[Dict] = None,
        **extra,
    ) -> "RunManifest":
        """Capture the current environment and start the clock."""
        return cls(
            command=command,
            seed=seed,
            config=dict(config) if config else {},
            git_sha=git_revision(),
            python=sys.version.split()[0],
            platform=_platform.platform(),
            started_unix=time.time(),
            extra=dict(extra),
        )

    def finish(self) -> "RunManifest":
        """Stamp wall-clock duration and resource usage; returns self."""
        from repro.obs.resources import sample_resources

        self.duration_s = time.time() - self.started_unix
        self.resources = sample_resources().to_dict()
        return self

    def stamp_telemetry(self, summary: Dict) -> "RunManifest":
        """Pin a fleet-telemetry summary (snapshot path, cadence, counts).

        Lands under ``extra["telemetry"]`` so artifacts found on disk
        can be traced back to the JSONL snapshot series they belong
        to.  Returns self.
        """
        self.extra["telemetry"] = dict(summary)
        return self

    def to_dict(self) -> Dict:
        """JSON-serialisable form."""
        return {
            "command": self.command,
            "seed": self.seed,
            "config": self.config,
            "git_sha": self.git_sha,
            "python": self.python,
            "platform": self.platform,
            "started_unix": self.started_unix,
            "duration_s": self.duration_s,
            "resources": self.resources,
            "extra": self.extra,
        }

    def write(self, path: str) -> None:
        """Write the manifest as pretty JSON."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def read(cls, path: str) -> "RunManifest":
        """Load a manifest written by :meth:`write`.

        Unknown keys are ignored so manifests written by a newer code
        version still load (forward compatibility).
        """
        with open(path) as handle:
            data = json.load(handle)
        known = {
            key: value for key, value in data.items()
            if key in cls.__dataclass_fields__
        }
        return cls(**known)
