"""Per-process resource accounting for sweep workers.

The sweep runner wants to know what each run *cost* — CPU seconds and
peak resident memory — without new dependencies and without touching
the simulation hot path.  The stdlib :mod:`resource` module answers
both with one ``getrusage(RUSAGE_SELF)`` call, so the worker entry
point (:func:`repro.exp.runner.execute_run`) samples once before and
once after the simulation and ships the delta home inside the result
payload it already returns.

Semantics worth knowing:

* CPU time is cumulative per process, so :func:`usage_between` yields
  an exact per-run delta even when a pool worker executes many runs.
* ``ru_maxrss`` is the process-*lifetime* peak (kilobytes on Linux,
  bytes on macOS — normalised here), so a per-run "delta" is
  meaningless; per-run records carry the worker's peak at completion
  time and sweep-level aggregation takes the max across workers.
* On platforms without :mod:`resource` (Windows), sampling degrades to
  zeros — accounting disappears, nothing breaks.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import Dict, Iterable, List

try:
    import resource as _resource
except ImportError:  # pragma: no cover - POSIX-only stdlib module
    _resource = None


def available() -> bool:
    """True when the platform supports ``getrusage`` sampling."""
    return _resource is not None


@dataclass(frozen=True)
class ResourceSample:
    """One ``getrusage(RUSAGE_SELF)`` snapshot.

    Attributes:
        cpu_user_s: cumulative user-mode CPU seconds.
        cpu_system_s: cumulative kernel-mode CPU seconds.
        peak_rss_kb: process-lifetime peak resident set size, KB.
        pid: sampling process id.
    """

    cpu_user_s: float
    cpu_system_s: float
    peak_rss_kb: float
    pid: int

    @property
    def cpu_s(self) -> float:
        """Total (user + system) CPU seconds."""
        return self.cpu_user_s + self.cpu_system_s

    def to_dict(self) -> Dict:
        """JSON-serialisable form."""
        return {
            "cpu_user_s": self.cpu_user_s,
            "cpu_system_s": self.cpu_system_s,
            "cpu_s": self.cpu_s,
            "peak_rss_kb": self.peak_rss_kb,
            "pid": self.pid,
        }


def sample_resources() -> ResourceSample:
    """Snapshot this process's cumulative resource usage (or zeros)."""
    pid = os.getpid()
    if _resource is None:  # pragma: no cover - non-POSIX fallback
        return ResourceSample(0.0, 0.0, 0.0, pid)
    usage = _resource.getrusage(_resource.RUSAGE_SELF)
    peak = float(usage.ru_maxrss)
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        peak /= 1024.0
    return ResourceSample(
        float(usage.ru_utime), float(usage.ru_stime), peak, pid
    )


def usage_between(before: ResourceSample, after: ResourceSample) -> Dict:
    """Per-run usage dict: CPU deltas plus the current lifetime peak.

    The clamping to zero guards against clock oddities; the peak RSS
    is ``after``'s absolute value (see module docstring).
    """
    return {
        "cpu_user_s": max(0.0, after.cpu_user_s - before.cpu_user_s),
        "cpu_system_s": max(0.0, after.cpu_system_s - before.cpu_system_s),
        "cpu_s": max(0.0, after.cpu_s - before.cpu_s),
        "peak_rss_kb": after.peak_rss_kb,
        "pid": after.pid,
    }


def aggregate_usage(usages: Iterable[Dict]) -> Dict:
    """Sweep-level rollup of per-run usage dicts.

    CPU seconds sum (each run's delta is disjoint); peak RSS is the
    max across workers (it is a per-process lifetime peak); ``workers``
    counts distinct sampling pids.
    """
    cpu_user = cpu_system = cpu = 0.0
    peak = 0.0
    pids: List[int] = []
    for usage in usages:
        if not usage:
            continue
        cpu_user += float(usage.get("cpu_user_s", 0.0) or 0.0)
        cpu_system += float(usage.get("cpu_system_s", 0.0) or 0.0)
        cpu += float(usage.get("cpu_s", 0.0) or 0.0)
        peak = max(peak, float(usage.get("peak_rss_kb", 0.0) or 0.0))
        pid = usage.get("pid")
        if pid is not None and pid not in pids:
            pids.append(pid)
    return {
        "cpu_user_s": cpu_user,
        "cpu_system_s": cpu_system,
        "cpu_s": cpu,
        "peak_rss_kb": peak,
        "workers": len(pids),
    }
