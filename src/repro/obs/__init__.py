"""Observability layer: event bus, metrics, exporters, run manifests.

The simulation stack is instrumented with a single lightweight
:class:`~repro.obs.events.EventBus`; everything else in this package
is a consumer of that bus:

* :mod:`repro.obs.events` — typed events (outages, state transitions,
  backup/restore lifecycle, policy decisions) and the bus itself;
* :mod:`repro.obs.metrics` — Counter/Gauge/Histogram registry with
  labeled series;
* :mod:`repro.obs.export` — JSONL event logs, Chrome trace-event JSON
  (openable in Perfetto / ``chrome://tracing``), CSV metrics dumps;
* :mod:`repro.obs.manifest` — reproducibility manifest (seed, config,
  git SHA, durations);
* :mod:`repro.obs.summary` — live textual run summary for the
  ``repro observe`` CLI subcommand, plus the sweep and fleet
  dashboards (``repro sweep --live``, ``repro fleet watch``);
* :mod:`repro.obs.fleetstats` — streaming population statistics
  (P² quantiles, fixed-bin histograms, co-outage matrices) behind
  fleet telemetry;
* :mod:`repro.obs.synth` — run-length event synthesis, so the
  fast-forward engine serves every non-per-tick subscription
  bit-identically to exact ticking;
* :mod:`repro.obs.spans` — wall-clock span tracing for sweeps
  (``repro sweep --trace``);
* :mod:`repro.obs.history` — benchmark metric trajectories and the
  ``repro bench-report`` regression gate;
* :mod:`repro.obs.ledger` — the persistent run ledger every
  ``simulate``/``sweep``/``compare``/bench invocation appends to
  (``repro runs list/show/diff/gc``);
* :mod:`repro.obs.resources` — per-worker CPU/peak-RSS accounting via
  ``getrusage``, shipped home in sweep result payloads.

When no bus is attached the instrumented code paths reduce to a
single ``is not None`` test per tick — simulations without observers
pay (near) nothing.  When a bus *is* attached, only a ``sim.tick``
subscription forces the exact engine; everything else rides the fast
path.
"""

from repro.obs.events import Event, EventBus, EventLog
from repro.obs.history import BenchReport, append_record, build_report, read_history
from repro.obs.ledger import (
    RunLedger,
    default_ledger_path,
    diff_records,
    format_diff,
)
from repro.obs.resources import (
    ResourceSample,
    aggregate_usage,
    sample_resources,
    usage_between,
)
from repro.obs.spans import Span, SpanTracer
from repro.obs.synth import FastPathEventSynthesizer
from repro.obs.export import (
    SnapshotWriter,
    chrome_trace,
    flatten_snapshot,
    load_chrome_trace,
    prometheus_text,
    read_snapshots,
    snapshot_prometheus,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_csv,
    write_prometheus,
)
from repro.obs.fleetstats import (
    FixedBinHistogram,
    P2Quantile,
    QuantileDigest,
    co_outage_matrix,
    find_storms,
    windowed_outages,
)
from repro.obs.manifest import RunManifest
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.summary import FleetMonitor, LiveSummary, SweepMonitor

__all__ = [
    "Event",
    "EventBus",
    "EventLog",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunManifest",
    "FixedBinHistogram",
    "FleetMonitor",
    "LiveSummary",
    "P2Quantile",
    "QuantileDigest",
    "SnapshotWriter",
    "SweepMonitor",
    "co_outage_matrix",
    "find_storms",
    "flatten_snapshot",
    "prometheus_text",
    "read_snapshots",
    "snapshot_prometheus",
    "windowed_outages",
    "write_prometheus",
    "FastPathEventSynthesizer",
    "Span",
    "SpanTracer",
    "BenchReport",
    "RunLedger",
    "ResourceSample",
    "aggregate_usage",
    "append_record",
    "build_report",
    "default_ledger_path",
    "diff_records",
    "format_diff",
    "read_history",
    "sample_resources",
    "usage_between",
    "chrome_trace",
    "load_chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_metrics_csv",
]
