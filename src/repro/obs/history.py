"""Benchmark history: append-only metric trajectories + regression gate.

Every benchmark run appends one manifest-stamped JSONL record to
``benchmarks/results/history.jsonl`` — ``{experiment, run, metrics,
manifest, recorded_unix}`` — so the performance trajectory the ROADMAP
promises ("measurably faster every PR") is a file under version
control, not a memory.  Within one process a record is *upserted* by
``(experiment, run)``: a benchmark that publishes metrics several
times while running updates its line instead of spamming the history.

The regression gate (``repro bench-report``) diffs the latest record
of each experiment against a baseline — the committed history, a
separate baseline file, or the previous record in the same history —
and fails (exit nonzero) when a gated metric drops by more than
``max_regression``.  Gated metrics are the higher-is-better ones:
anything whose name mentions ``throughput``, ``speedup``,
``ticks_per_s`` or ``instr_per_s``.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
import warnings
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Default on-disk location, relative to the repository root.
DEFAULT_HISTORY_PATH = os.path.join("benchmarks", "results", "history.jsonl")

#: Gate threshold: fail when a gated metric drops by more than this.
DEFAULT_MAX_REGRESSION = 0.2

#: A metric gates the build when its name contains one of these —
#: higher is better for all of them.
GATED_METRIC_MARKERS: Tuple[str, ...] = (
    "throughput", "speedup", "ticks_per_s", "instr_per_s",
)


def is_gated_metric(name: str) -> bool:
    """True when the metric participates in the regression gate."""
    lowered = name.lower()
    return any(marker in lowered for marker in GATED_METRIC_MARKERS)


# -- recording -------------------------------------------------------------


#: History files already warned about (one skipped-lines warning per
#: path per process, so a rebuilt report does not spam).
_WARNED_PATHS: Set[str] = set()


def read_history(path: str) -> List[Dict]:
    """Every record in a history file, oldest first.

    Missing files read as empty; torn/corrupt lines are skipped (an
    interrupted append must not poison the whole trajectory) with one
    :class:`RuntimeWarning` per file per process saying how many.
    """
    records: List[Dict] = []
    skipped = 0
    try:
        handle = open(path)
    except OSError:
        return records
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if isinstance(record, dict) and "experiment" in record:
                records.append(record)
    if skipped and path not in _WARNED_PATHS:
        _WARNED_PATHS.add(path)
        warnings.warn(
            f"{path}: skipped {skipped} unparseable line(s) "
            "(torn append or corruption)",
            RuntimeWarning,
            stacklevel=2,
        )
    return records


def _write_history(path: str, records: Sequence[Dict]) -> None:
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".history.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        # mkstemp creates 0600; the history is a shared (often
        # committed) artifact, so give it normal file permissions.
        os.chmod(tmp, 0o644)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def append_record(
    path: str,
    experiment: str,
    metrics: Dict[str, float],
    run: str = "",
    manifest: Optional[Dict] = None,
) -> Dict:
    """Upsert one benchmark record into the history file.

    An existing record with the same ``(experiment, run)`` is replaced
    in place (its metrics merged with the new ones); otherwise the
    record is appended.  Returns the stored record.
    """
    if not experiment:
        raise ValueError("experiment name required")
    clean = {name: float(value) for name, value in metrics.items()}
    records = read_history(path)
    for record in records:
        if record.get("experiment") == experiment and record.get("run") == run:
            record.setdefault("metrics", {}).update(clean)
            record["recorded_unix"] = time.time()
            if manifest is not None:
                record["manifest"] = manifest
            _write_history(path, records)
            return record
    record = {
        "experiment": experiment,
        "run": run,
        "recorded_unix": time.time(),
        "metrics": clean,
    }
    if manifest is not None:
        record["manifest"] = manifest
    records.append(record)
    _write_history(path, records)
    return record


def latest_record(records: Sequence[Dict], experiment: str) -> Optional[Dict]:
    """The newest record for an experiment (file order = age order)."""
    for record in reversed(records):
        if record.get("experiment") == experiment:
            return record
    return None


def experiments(records: Sequence[Dict]) -> List[str]:
    """Experiment names present, in first-appearance order."""
    seen: List[str] = []
    for record in records:
        name = record.get("experiment")
        if name and name not in seen:
            seen.append(name)
    return seen


# -- the gate --------------------------------------------------------------


class MetricDelta:
    """One metric compared across baseline → latest.

    Attributes:
        metric: metric name.
        baseline: baseline value (``None`` when newly added).
        latest: latest value (``None`` when it disappeared).
        change: fractional change vs baseline (``nan`` when not
            computable).
        gated: whether the metric participates in the gate.
        regressed: gate verdict for this metric.
    """

    __slots__ = ("metric", "baseline", "latest", "change", "gated", "regressed")

    def __init__(
        self,
        metric: str,
        baseline: Optional[float],
        latest: Optional[float],
        max_regression: float,
    ) -> None:
        self.metric = metric
        self.baseline = baseline
        self.latest = latest
        self.gated = is_gated_metric(metric)
        if baseline is not None and latest is not None and baseline != 0:
            self.change = (latest - baseline) / abs(baseline)
        else:
            self.change = math.nan
        self.regressed = (
            self.gated
            and baseline is not None
            and latest is not None
            and baseline > 0
            and latest < (1.0 - max_regression) * baseline
        )


def compare_metrics(
    baseline: Dict[str, float],
    latest: Dict[str, float],
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> List[MetricDelta]:
    """Delta rows for the union of both metric sets, sorted by name."""
    if not 0 < max_regression < 1:
        raise ValueError("max_regression must be in (0, 1)")
    names = sorted(set(baseline) | set(latest))
    return [
        MetricDelta(
            name, baseline.get(name), latest.get(name), max_regression
        )
        for name in names
    ]


class BenchReport:
    """The full diff of one history against a baseline history."""

    def __init__(self, max_regression: float = DEFAULT_MAX_REGRESSION) -> None:
        self.max_regression = max_regression
        #: ``[(experiment, deltas, baseline_record, latest_record)]``
        self.sections: List[Tuple[str, List[MetricDelta], Optional[Dict], Dict]] = []

    def add(
        self,
        experiment: str,
        baseline: Optional[Dict],
        latest: Dict,
    ) -> None:
        deltas = compare_metrics(
            (baseline or {}).get("metrics", {}),
            latest.get("metrics", {}),
            self.max_regression,
        )
        self.sections.append((experiment, deltas, baseline, latest))

    @property
    def regressions(self) -> List[Tuple[str, MetricDelta]]:
        """Every failed gate as ``(experiment, delta)``."""
        return [
            (experiment, delta)
            for experiment, deltas, _b, _l in self.sections
            for delta in deltas
            if delta.regressed
        ]

    @property
    def passed(self) -> bool:
        return not self.regressions

    def to_markdown(self) -> str:
        """The report as a markdown document."""
        lines = ["# Benchmark report", ""]
        verdict = "PASS" if self.passed else "FAIL"
        lines.append(
            f"Gate: **{verdict}** "
            f"(max allowed regression on gated metrics: "
            f"{self.max_regression:.0%})"
        )
        lines.append("")
        for experiment, deltas, baseline, latest in self.sections:
            lines.append(f"## {experiment}")
            sha = (latest.get("manifest") or {}).get("git_sha", "unknown")
            base_sha = (
                (baseline or {}).get("manifest") or {}
            ).get("git_sha", "unknown")
            lines.append(
                f"baseline `{base_sha[:12]}` → latest `{sha[:12]}`"
            )
            lines.append("")
            lines.append("| metric | baseline | latest | change | gate |")
            lines.append("|---|---:|---:|---:|---|")
            for delta in deltas:
                base = "—" if delta.baseline is None else f"{delta.baseline:.6g}"
                new = "—" if delta.latest is None else f"{delta.latest:.6g}"
                change = (
                    "—" if math.isnan(delta.change) else f"{delta.change:+.1%}"
                )
                if not delta.gated:
                    gate = ""
                elif delta.regressed:
                    gate = "REGRESSED"
                else:
                    gate = "ok"
                lines.append(
                    f"| {delta.metric} | {base} | {new} | {change} | {gate} |"
                )
            lines.append("")
        if not self.sections:
            lines.append("_No benchmark records found._")
            lines.append("")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """JSON-safe structured form (``nan`` changes become ``None``)."""
        sections = []
        for experiment, deltas, baseline, latest in self.sections:
            sections.append({
                "experiment": experiment,
                "baseline_git_sha": (
                    (baseline or {}).get("manifest") or {}
                ).get("git_sha"),
                "latest_git_sha": (
                    (latest or {}).get("manifest") or {}
                ).get("git_sha"),
                "metrics": [
                    {
                        "metric": delta.metric,
                        "baseline": delta.baseline,
                        "latest": delta.latest,
                        "change": (
                            None if math.isnan(delta.change)
                            else delta.change
                        ),
                        "gated": delta.gated,
                        "regressed": delta.regressed,
                    }
                    for delta in deltas
                ],
            })
        return {
            "passed": self.passed,
            "max_regression": self.max_regression,
            "regressions": [
                {"experiment": experiment, "metric": delta.metric,
                 "baseline": delta.baseline, "latest": delta.latest}
                for experiment, delta in self.regressions
            ],
            "sections": sections,
        }

    def to_json(self) -> str:
        """:meth:`to_dict` as an indented JSON document."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def to_html(self) -> str:
        """The markdown report wrapped in a minimal HTML page.

        Dependency-free: the markdown is shown preformatted, which
        every browser and CI artifact viewer renders legibly.
        """
        body = (
            self.to_markdown()
            .replace("&", "&amp;")
            .replace("<", "&lt;")
            .replace(">", "&gt;")
        )
        color = "#2e7d32" if self.passed else "#c62828"
        return (
            "<!doctype html><html><head><meta charset='utf-8'>"
            "<title>Benchmark report</title></head>"
            f"<body style='font-family:monospace;color:{color}'>"
            f"<pre style='color:#222'>{body}</pre></body></html>\n"
        )


def build_report(
    history_path: str,
    baseline_path: Optional[str] = None,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> BenchReport:
    """Diff the latest record of every experiment against its baseline.

    With ``baseline_path`` the baseline is that file's latest record
    per experiment (the committed-history workflow: compare a fresh
    run against the checked-in trajectory).  Without it, the baseline
    is the *previous* record in the same history file.
    """
    records = read_history(history_path)
    base_records = read_history(baseline_path) if baseline_path else None
    report = BenchReport(max_regression=max_regression)
    for experiment in experiments(records):
        latest = latest_record(records, experiment)
        if latest is None:  # pragma: no cover - experiments() guarantees it
            continue
        if base_records is not None:
            baseline = latest_record(base_records, experiment)
        else:
            earlier = [
                record
                for record in records
                if record.get("experiment") == experiment
                and record is not latest
            ]
            baseline = earlier[-1] if earlier else None
        report.add(experiment, baseline, latest)
    return report
