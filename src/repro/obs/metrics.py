"""Metrics registry: counters, gauges, histograms with labeled series.

Prometheus-flavoured but dependency-free.  A metric is registered once
on a :class:`MetricsRegistry` with a fixed label-name tuple; each
distinct label-value combination owns an independent series::

    registry = MetricsRegistry()
    backups = registry.counter("backups", "committed backups", labels=("platform",))
    backups.labels(platform="nvp").inc()

Gauges may wrap a callback so live values (stored energy, capacitor
voltage) are sampled only when the registry is read, keeping the
simulation hot path untouched.

Label cardinality is capped: a metric holds at most ``max_series``
distinct label combinations (default :data:`DEFAULT_MAX_SERIES`).
Beyond the cap, :meth:`_Metric.labels` warns once (``RuntimeWarning``)
and routes every new combination to one shared *overflow* series that
is excluded from :meth:`_Metric.rows` — an instrumentation bug (say,
labeling by tick) degrades to a warning instead of unbounded memory.
"""

from __future__ import annotations

import math
import warnings
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

LabelValues = Tuple[Tuple[str, str], ...]

#: Maximum labeled series per metric before new combinations are
#: dropped into the shared overflow child.
DEFAULT_MAX_SERIES = 1000

#: Default histogram buckets (seconds-ish / generic magnitudes).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, math.inf
)


def _label_key(label_names: Tuple[str, ...], values: Dict[str, str]) -> LabelValues:
    if set(values) != set(label_names):
        raise ValueError(
            f"expected labels {label_names}, got {tuple(sorted(values))}"
        )
    # Sorted by label name — not registration order — so exported rows
    # and Prometheus exposition are byte-stable however a metric was
    # declared (golden-file tests depend on this).
    return tuple((name, str(values[name])) for name in sorted(label_names))


class _Metric:
    """Shared series bookkeeping for all metric kinds."""

    kind = "metric"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Tuple[str, ...],
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        if not name or not name.replace("_", "").replace(".", "").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        if max_series < 1:
            raise ValueError("max_series must be >= 1")
        self.name = name
        self.help = help
        self.label_names = label_names
        self.max_series = max_series
        self._series: Dict[LabelValues, object] = {}
        #: Shared sink for label combinations beyond ``max_series``
        #: (never exported; ``None`` until the cap is first hit).
        self._overflow = None
        #: ``labels()`` calls routed to the overflow sink.
        self.overflow_count = 0

    def labels(self, **values: str):
        """The child series for one label-value combination.

        Past ``max_series`` distinct combinations, new ones share a
        single overflow series that is dropped from :meth:`rows` (with
        a one-time ``RuntimeWarning``) — updates stay cheap and memory
        stays bounded even if a caller labels by something unbounded.
        """
        if not self.label_names:
            raise ValueError(f"metric {self.name!r} takes no labels")
        key = _label_key(self.label_names, values)
        child = self._series.get(key)
        if child is None:
            if len(self._series) >= self.max_series:
                self.overflow_count += 1
                if self._overflow is None:
                    self._overflow = self._new_child()
                    warnings.warn(
                        f"metric {self.name!r} exceeded {self.max_series} "
                        f"labeled series; further label combinations are "
                        f"dropped into a shared overflow series",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                return self._overflow
            child = self._new_child()
            self._series[key] = child
        return child

    def _default_child(self):
        """The implicit unlabeled series."""
        if self.label_names:
            raise ValueError(f"metric {self.name!r} requires labels {self.label_names}")
        child = self._series.get(())
        if child is None:
            child = self._new_child()
            self._series[()] = child
        return child

    def _new_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def series(self) -> Dict[LabelValues, object]:
        """All label combinations and their series objects."""
        return dict(self._series)

    def rows(self) -> List[Tuple[str, str, str, str, float]]:
        """Flat ``(kind, name, labels, field, value)`` rows."""
        out: List[Tuple[str, str, str, str, float]] = []
        for key, child in sorted(self._series.items()):
            label_text = ",".join(f"{k}={v}" for k, v in key)
            for field, value in child.fields():
                out.append((self.kind, self.name, label_text, field, value))
        return out


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def fields(self) -> List[Tuple[str, float]]:
        return [("value", self.value)]


class Counter(_Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class _GaugeChild:
    __slots__ = ("_value", "_fn")

    def __init__(self, fn: Optional[Callable[[], float]] = None) -> None:
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError("callback gauge cannot be set directly")
        self._value = float(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._fn = fn

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value

    def fields(self) -> List[Tuple[str, float]]:
        return [("value", self.value)]


class Gauge(_Metric):
    """Point-in-time value; optionally computed by a callback."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Tuple[str, ...],
        fn: Optional[Callable[[], float]] = None,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        super().__init__(name, help, label_names, max_series=max_series)
        self._fn = fn
        if fn is not None and not label_names:
            self._series[()] = _GaugeChild(fn)

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._default_child().set_function(fn)

    @property
    def value(self) -> float:
        return self._default_child().value


class _HistogramChild:
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket upper bounds."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for index, n in enumerate(self.counts):
            seen += n
            # The ``n`` guard keeps q=0 (target 0) from matching an
            # empty leading bucket: q=0 means the first *populated* one.
            if n and seen >= target:
                bound = self.buckets[index]
                return bound if math.isfinite(bound) else self.sum / self.count
        return self.buckets[-2] if len(self.buckets) > 1 else 0.0

    def fields(self) -> List[Tuple[str, float]]:
        rows: List[Tuple[str, float]] = [("sum", self.sum), ("count", self.count)]
        cumulative = 0
        for bound, n in zip(self.buckets, self.counts):
            cumulative += n
            label = "le_inf" if math.isinf(bound) else f"le_{bound:g}"
            rows.append((label, cumulative))
        return rows


class Histogram(_Metric):
    """Bucketed distribution of observed values."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Tuple[str, ...],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        super().__init__(name, help, label_names, max_series=max_series)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("need at least one bucket")
        if not math.isinf(bounds[-1]):
            bounds = bounds + (math.inf,)
        self.buckets = bounds

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def count(self) -> int:
        return self._default_child().count

    @property
    def sum(self) -> float:
        return self._default_child().sum


class MetricsRegistry:
    """Owns every metric of one run; the unit the exporters consume.

    Re-registering a name returns the existing metric when the kind
    and labels match (so independent components can share a metric)
    and raises otherwise.

    Args:
        max_series: per-metric labeled-series cap applied to every
            metric registered here (see the module docstring).
    """

    def __init__(self, max_series: int = DEFAULT_MAX_SERIES) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self.max_series = max_series

    def _register(self, metric: _Metric) -> _Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if (
                existing.kind != metric.kind
                or existing.label_names != metric.label_names
            ):
                raise ValueError(
                    f"metric {metric.name!r} already registered as "
                    f"{existing.kind}{existing.label_names}"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> Counter:
        return self._register(
            Counter(name, help, tuple(labels), max_series=self.max_series)
        )  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        return self._register(
            Gauge(name, help, tuple(labels), fn=fn, max_series=self.max_series)
        )  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram(
                name, help, tuple(labels), buckets,
                max_series=self.max_series,
            )
        )  # type: ignore[return-value]

    def get(self, name: str) -> _Metric:
        """Look up a registered metric.

        Raises:
            KeyError: for an unknown name.
        """
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def metrics(self) -> List[_Metric]:
        """Every registered metric, sorted by name (exporter order)."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def rows(self) -> List[Tuple[str, str, str, str, float]]:
        """Every series of every metric as flat CSV-ready rows."""
        out: List[Tuple[str, str, str, str, float]] = []
        for name in sorted(self._metrics):
            out.extend(self._metrics[name].rows())
        return out

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{metric: {"labels|field": value}}`` view for assertions."""
        view: Dict[str, Dict[str, float]] = {}
        for kind, name, labels, field, value in self.rows():
            del kind
            view.setdefault(name, {})[f"{labels}|{field}" if labels else field] = value
        return view
