"""Wall-clock span tracing for the experiment engine.

Simulation-time observability (:mod:`repro.obs.events`) answers "what
did the platform do"; spans answer "where did the *sweep* spend its
wall-clock" — cache lookups, worker simulations, result folding.  A
:class:`SpanTracer` collects named intervals stamped with absolute
Unix time, grouped into logical threads ("runner", one per worker
process), and exports them in the Chrome Trace Event Format, so
``repro sweep --trace out.json`` renders a per-worker timeline with
cache-hit attribution in Perfetto or ``chrome://tracing``.

Worker processes cannot share a tracer object; instead
:func:`repro.exp.runner.execute_run` returns plain span dicts
(``{"name", "start_s", "end_s", "args"}``) in its payload and the
runner imports them with :meth:`SpanTracer.import_worker` under a
``worker-<pid>`` thread.  Absolute timestamps make the merge trivial:
every clock in the trace is the machine's Unix clock.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List

#: The default logical thread: the sweep-coordinating process.
TID_RUNNER = "runner"


class Span:
    """One completed interval.

    Attributes:
        name: span name ("sweep", "run:<label>", "cache.get", ...).
        start_s: absolute Unix start time.
        end_s: absolute Unix end time.
        tid: logical thread name the span belongs to.
        args: attribution payload (cache key, hit flag, status, ...).
    """

    __slots__ = ("name", "start_s", "end_s", "tid", "args")

    def __init__(
        self, name: str, start_s: float, end_s: float, tid: str, args: Dict
    ) -> None:
        self.name = name
        self.start_s = start_s
        self.end_s = end_s
        self.tid = tid
        self.args = args

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms, "
            f"tid={self.tid!r}, {self.args})"
        )


class SpanTracer:
    """Collects spans across the sweep and exports a Chrome trace."""

    def __init__(self) -> None:
        self.spans: List[Span] = []

    def add(
        self,
        name: str,
        start_s: float,
        end_s: float,
        tid: str = TID_RUNNER,
        **args,
    ) -> Span:
        """Record an already-measured interval."""
        span = Span(name, start_s, end_s, tid, dict(args))
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, tid: str = TID_RUNNER, **args):
        """Measure a ``with`` block.

        Yields the args dict, so attribution discovered inside the
        block (a cache hit, a run status) can be added before the span
        closes::

            with tracer.span("cache.get", key=key) as attrs:
                entry = lookup(key)
                attrs["hit"] = entry is not None
        """
        attrs = dict(args)
        start = time.time()
        try:
            yield attrs
        finally:
            self.add(name, start, time.time(), tid=tid, **attrs)

    def import_worker(self, spans: Iterable[Dict], pid: int) -> None:
        """Merge span dicts a worker process returned in its payload."""
        tid = f"worker-{pid}"
        for record in spans:
            self.add(
                record["name"],
                float(record["start_s"]),
                float(record["end_s"]),
                tid=tid,
                **record.get("args", {}),
            )

    # -- queries (used by tests and reports) -------------------------------

    def named(self, name: str) -> List[Span]:
        """Spans with an exact name, in record order."""
        return [span for span in self.spans if span.name == name]

    def threads(self) -> List[str]:
        """Logical thread names, runner first, workers sorted."""
        seen = {span.tid for span in self.spans}
        out = [TID_RUNNER] if TID_RUNNER in seen else []
        out.extend(sorted(seen - {TID_RUNNER}))
        return out

    # -- export ------------------------------------------------------------

    def to_chrome(
        self, process_name: str = "repro sweep", pid: int = 0
    ) -> List[Dict]:
        """The spans as Chrome trace events (``ph: "X"`` durations).

        Timestamps are re-based to the earliest span start so the
        timeline begins at zero.
        """
        out: List[Dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process_name},
            }
        ]
        tids = {name: index for index, name in enumerate(self.threads())}
        for name, tid in tids.items():
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        origin = min((span.start_s for span in self.spans), default=0.0)
        for span in self.spans:
            out.append(
                {
                    "name": span.name,
                    "cat": "span",
                    "ph": "X",
                    "ts": max(0.0, (span.start_s - origin) * 1e6),
                    "dur": span.duration_s * 1e6,
                    "pid": pid,
                    "tid": tids[span.tid],
                    "args": span.args,
                }
            )
        return out

    def write_chrome(
        self, path: str, process_name: str = "repro sweep"
    ) -> int:
        """Write a Chrome trace JSON file; returns the event count."""
        trace = self.to_chrome(process_name=process_name)
        with open(path, "w") as handle:
            json.dump({"traceEvents": trace, "displayTimeUnit": "ms"}, handle)
        return len(trace)
