"""Catalog of nonvolatile-memory technologies used to build NVPs.

Figures are representative, order-of-magnitude values taken from the
published NVP prototypes and device surveys the DATE'17 tutorial draws
on (FeRAM MCUs such as the MSP430FR family and the 3 µs-wake-up
ferroelectric NVP; the 65 nm ReRAM NVP; STT-MRAM NVPs; PCM and NOR
Flash for contrast; FeFET/NCFET latches as the emerging option).  They
are *not* tied to a single datasheet — the experiments only rely on
the relative ordering and magnitudes being right.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

SECONDS_PER_YEAR = 3.15576e7
SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class NVMTechnology:
    """Device-level figures of merit for one memory technology.

    Attributes:
        name: short identifier (``"FeRAM"``, ``"ReRAM"``, ...).
        write_energy_j_per_bit: programming energy per bit at nominal
            retention.
        read_energy_j_per_bit: sensing energy per bit.
        write_latency_s: per-access write latency (one word, all bits
            in parallel).
        read_latency_s: per-access read latency.
        retention_s: nominal retention time.
        endurance_cycles: write endurance.
        wakeup_time_s: time from power-good to execution resuming when
            an NVP's state lives in this technology (restore circuit +
            settling).
        volatile: True only for the SRAM reference row.
        supports_retention_relaxation: whether the write circuit can
            trade retention for write energy (the ISSCC'16 ReRAM NVP's
            adaptive-retention knob; also well studied for STT-MRAM).
    """

    name: str
    write_energy_j_per_bit: float
    read_energy_j_per_bit: float
    write_latency_s: float
    read_latency_s: float
    retention_s: float
    endurance_cycles: float
    wakeup_time_s: float
    volatile: bool = False
    supports_retention_relaxation: bool = False

    def __post_init__(self) -> None:
        for attr in (
            "write_energy_j_per_bit",
            "read_energy_j_per_bit",
            "write_latency_s",
            "read_latency_s",
            "endurance_cycles",
            "wakeup_time_s",
        ):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} cannot be negative")

    # -- backup / restore costs for a state of `bits` bits --------------

    def backup_energy_j(self, bits: int, parallelism: int = 64) -> float:
        """Energy to back up ``bits`` bits of state.

        ``parallelism`` is accepted for signature symmetry with
        :meth:`backup_time_s`; energy is per-bit and does not depend on
        it.
        """
        if bits < 0:
            raise ValueError("bits cannot be negative")
        del parallelism
        return bits * self.write_energy_j_per_bit

    def backup_time_s(self, bits: int, parallelism: int = 64) -> float:
        """Time to back up ``bits`` bits with ``parallelism`` bits/write.

        NVPs use distributed nonvolatile flip-flops, so backup is highly
        parallel; ``parallelism`` is the number of bits written per
        write-latency quantum.
        """
        if bits < 0:
            raise ValueError("bits cannot be negative")
        if parallelism <= 0:
            raise ValueError("parallelism must be positive")
        import math

        return math.ceil(bits / parallelism) * self.write_latency_s

    def restore_energy_j(self, bits: int) -> float:
        """Energy to read ``bits`` bits of state back."""
        if bits < 0:
            raise ValueError("bits cannot be negative")
        return bits * self.read_energy_j_per_bit

    def restore_time_s(self, bits: int, parallelism: int = 64) -> float:
        """Wake-up time plus parallel read-back time for ``bits`` bits."""
        if bits < 0:
            raise ValueError("bits cannot be negative")
        if parallelism <= 0:
            raise ValueError("parallelism must be positive")
        import math

        return self.wakeup_time_s + math.ceil(bits / parallelism) * self.read_latency_s

    def lifetime_s(self, backup_rate_hz: float) -> float:
        """Device lifetime under a sustained backup rate.

        Each backup writes every state cell once, so the cells wear at
        the backup rate and the endurance budget divides through:
        ``lifetime = endurance / rate``.  This is the endurance
        screen that rules low-endurance technologies out of
        high-emergency-rate harvesting environments (and why ReRAM
        NVPs pair adaptive retention with wear-aware design).

        Raises:
            ValueError: if the rate is not positive.
        """
        if backup_rate_hz <= 0:
            raise ValueError("backup rate must be positive")
        return self.endurance_cycles / backup_rate_hz


SRAM_REFERENCE = NVMTechnology(
    name="SRAM",
    write_energy_j_per_bit=0.05e-12,
    read_energy_j_per_bit=0.05e-12,
    write_latency_s=1e-9,
    read_latency_s=1e-9,
    retention_s=0.0,
    endurance_cycles=1e16,
    wakeup_time_s=0.0,
    volatile=True,
)

FERAM = NVMTechnology(
    name="FeRAM",
    write_energy_j_per_bit=0.9e-12,
    read_energy_j_per_bit=0.7e-12,  # destructive read needs restore
    write_latency_s=50e-9,
    read_latency_s=50e-9,
    retention_s=10 * SECONDS_PER_YEAR,
    endurance_cycles=1e14,
    wakeup_time_s=3e-6,
)

RERAM = NVMTechnology(
    name="ReRAM",
    write_energy_j_per_bit=2.0e-12,
    read_energy_j_per_bit=0.3e-12,
    write_latency_s=50e-9,
    read_latency_s=10e-9,
    retention_s=10 * SECONDS_PER_YEAR,
    endurance_cycles=1e8,
    wakeup_time_s=1.5e-6,
    supports_retention_relaxation=True,
)

STT_MRAM = NVMTechnology(
    name="STT-MRAM",
    write_energy_j_per_bit=1.5e-12,
    read_energy_j_per_bit=0.2e-12,
    write_latency_s=10e-9,
    read_latency_s=5e-9,
    retention_s=10 * SECONDS_PER_YEAR,
    endurance_cycles=1e15,
    wakeup_time_s=2e-6,
    supports_retention_relaxation=True,
)

PCM = NVMTechnology(
    name="PCM",
    write_energy_j_per_bit=12.0e-12,
    read_energy_j_per_bit=0.5e-12,
    write_latency_s=150e-9,
    read_latency_s=20e-9,
    retention_s=10 * SECONDS_PER_YEAR,
    endurance_cycles=1e9,
    wakeup_time_s=5e-6,
    supports_retention_relaxation=True,
)

NOR_FLASH = NVMTechnology(
    name="NOR-Flash",
    write_energy_j_per_bit=1.0e-9,
    read_energy_j_per_bit=0.5e-12,
    write_latency_s=10e-6,
    read_latency_s=50e-9,
    retention_s=20 * SECONDS_PER_YEAR,
    endurance_cycles=1e5,
    wakeup_time_s=100e-6,
)

FEFET = NVMTechnology(
    name="FeFET",
    write_energy_j_per_bit=0.1e-12,
    read_energy_j_per_bit=0.05e-12,
    write_latency_s=10e-9,
    read_latency_s=5e-9,
    retention_s=10 * SECONDS_PER_YEAR,
    endurance_cycles=1e10,
    wakeup_time_s=0.5e-6,
)

#: All catalog rows, in presentation order (volatile reference first).
TECHNOLOGIES: Tuple[NVMTechnology, ...] = (
    SRAM_REFERENCE,
    FERAM,
    RERAM,
    STT_MRAM,
    PCM,
    NOR_FLASH,
    FEFET,
)

_BY_NAME: Dict[str, NVMTechnology] = {tech.name.lower(): tech for tech in TECHNOLOGIES}


def technology_by_name(name: str) -> NVMTechnology:
    """Look up a catalog technology by (case-insensitive) name.

    Raises:
        KeyError: if the name is not in the catalog.
    """
    key = name.lower()
    if key not in _BY_NAME:
        known = ", ".join(sorted(tech.name for tech in TECHNOLOGIES))
        raise KeyError(f"unknown NVM technology {name!r}; known: {known}")
    return _BY_NAME[key]
