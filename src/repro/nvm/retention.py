"""Retention-shaping policies and the bit-failure model.

Retention-relaxed backup writes the *lower-significance* bits of each
backed-up word with weaker (cheaper) write pulses: a power outage that
outlasts a bit's retention target leaves that bit in a random state,
which costs output quality rather than correctness of the high-order
bits.  A shaping policy maps bit significance to a retention target;
the three shapes surveyed in the NVP literature (and provided here)
are *linear*, *log* (geometric — most aggressive, suited to
noise-tolerant kernels) and *parabola* (most conservative about the
upper bits).

Failure model: a cell written for retention ``T`` relaxes during an
outage of duration ``d`` with probability ``1 - exp(-d/T)``; a relaxed
cell reads back a uniformly random bit.
"""

from __future__ import annotations

import abc
import math
from typing import List, Optional

import numpy as np

from repro.nvm.sttram import (
    DEFAULT_STT,
    STTParameters,
    write_energy_at_optimum,
)
from repro.nvm.technology import NVMTechnology


class RetentionPolicy(abc.ABC):
    """Maps bit significance to a retention-time target.

    Bit index 0 is the least-significant bit; ``width - 1`` the most
    significant.  Policies must be monotonically non-decreasing in bit
    significance — the MSB is always retained at least as long as any
    lower bit.
    """

    #: short name used in reports; subclasses override.
    name: str = "base"

    @abc.abstractmethod
    def retention_s(self, bit: int, width: int = 16) -> float:
        """Retention target (seconds) for bit ``bit`` of a ``width``-bit word."""

    def retention_profile(self, width: int = 16) -> List[float]:
        """Retention targets for all bits, LSB first."""
        return [self.retention_s(bit, width) for bit in range(width)]

    def validate(self, width: int = 16) -> None:
        """Check monotonicity and positivity of the profile.

        Raises:
            ValueError: if any retention is non-positive or the profile
                decreases with significance.
        """
        profile = self.retention_profile(width)
        for bit, value in enumerate(profile):
            if value <= 0:
                raise ValueError(f"{self.name}: retention for bit {bit} is {value}")
        for low, high in zip(profile, profile[1:]):
            if high < low:
                raise ValueError(f"{self.name}: retention profile not monotonic")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _check_span(t_lsb_s: float, t_msb_s: float) -> None:
    if t_lsb_s <= 0 or t_msb_s <= 0:
        raise ValueError("retention times must be positive")
    if t_msb_s < t_lsb_s:
        raise ValueError("MSB retention must be >= LSB retention")


def _significance(bit: int, width: int) -> float:
    """Normalised significance of a bit: 0.0 for LSB, 1.0 for MSB."""
    if width < 1:
        raise ValueError("width must be at least 1")
    if not 0 <= bit < width:
        raise ValueError(f"bit {bit} out of range for width {width}")
    if width == 1:
        return 1.0
    return bit / (width - 1)


class UniformPolicy(RetentionPolicy):
    """Every bit gets the same retention target (no shaping)."""

    name = "uniform"

    def __init__(self, retention_s: float) -> None:
        if retention_s <= 0:
            raise ValueError("retention must be positive")
        self._retention_s = retention_s

    def retention_s(self, bit: int, width: int = 16) -> float:
        _significance(bit, width)  # validates the arguments
        return self._retention_s

    def __repr__(self) -> str:
        return f"UniformPolicy(retention_s={self._retention_s!r})"


class LinearPolicy(RetentionPolicy):
    """Retention grows linearly with bit significance."""

    name = "linear"

    def __init__(self, t_lsb_s: float, t_msb_s: float) -> None:
        _check_span(t_lsb_s, t_msb_s)
        self._t_lsb_s = t_lsb_s
        self._t_msb_s = t_msb_s

    def retention_s(self, bit: int, width: int = 16) -> float:
        s = _significance(bit, width)
        return self._t_lsb_s + (self._t_msb_s - self._t_lsb_s) * s

    def __repr__(self) -> str:
        return f"LinearPolicy(t_lsb_s={self._t_lsb_s!r}, t_msb_s={self._t_msb_s!r})"


class LogPolicy(RetentionPolicy):
    """Retention grows geometrically with significance (aggressive).

    Low bits get retention close to ``t_lsb_s`` and only the top bits
    approach ``t_msb_s``; because retention enters the failure
    probability exponentially this is the most energy-saving shape and
    fits noise-tolerant kernels.
    """

    name = "log"

    def __init__(self, t_lsb_s: float, t_msb_s: float) -> None:
        _check_span(t_lsb_s, t_msb_s)
        self._t_lsb_s = t_lsb_s
        self._t_msb_s = t_msb_s

    def retention_s(self, bit: int, width: int = 16) -> float:
        s = _significance(bit, width)
        ratio = self._t_msb_s / self._t_lsb_s
        return self._t_lsb_s * math.pow(ratio, s)

    def __repr__(self) -> str:
        return f"LogPolicy(t_lsb_s={self._t_lsb_s!r}, t_msb_s={self._t_msb_s!r})"


class ParabolaPolicy(RetentionPolicy):
    """Retention grows quadratically with significance (conservative).

    Mid-significance bits are kept closer to the LSB target, but the
    top bits climb steeply to ``t_msb_s`` — suited to kernels whose
    quality collapses if upper bits are lost.
    """

    name = "parabola"

    def __init__(self, t_lsb_s: float, t_msb_s: float) -> None:
        _check_span(t_lsb_s, t_msb_s)
        self._t_lsb_s = t_lsb_s
        self._t_msb_s = t_msb_s

    def retention_s(self, bit: int, width: int = 16) -> float:
        s = _significance(bit, width)
        return self._t_lsb_s + (self._t_msb_s - self._t_lsb_s) * s * s

    def __repr__(self) -> str:
        return f"ParabolaPolicy(t_lsb_s={self._t_lsb_s!r}, t_msb_s={self._t_msb_s!r})"


def failure_probability(outage_s: float, retention_s: float) -> float:
    """Probability a cell relaxes during an outage of ``outage_s`` seconds."""
    if outage_s < 0:
        raise ValueError("outage duration cannot be negative")
    if retention_s <= 0:
        raise ValueError("retention must be positive")
    return 1.0 - math.exp(-outage_s / retention_s)


def sample_bit_failures(
    policy: RetentionPolicy,
    outage_s: float,
    width: int,
    rng: np.random.Generator,
) -> int:
    """Sample which bits of a word relax during an outage.

    Returns:
        A bitmask with 1s at relaxed bit positions.
    """
    mask = 0
    for bit in range(width):
        p = failure_probability(outage_s, policy.retention_s(bit, width))
        if rng.random() < p:
            mask |= 1 << bit
    return mask


def corrupt_word(value: int, relaxed_mask: int, rng: np.random.Generator) -> int:
    """Randomise the relaxed bits of a stored word.

    A relaxed cell reads back 0 or 1 with equal probability, so on
    average half the relaxed bits actually flip.
    """
    result = value
    bit = 0
    mask = relaxed_mask
    while mask:
        if mask & 1:
            if rng.random() < 0.5:
                result ^= 1 << bit
        mask >>= 1
        bit += 1
    return result


def policy_backup_energy_j(
    policy: RetentionPolicy,
    technology: NVMTechnology,
    width: int = 16,
    params: Optional[STTParameters] = None,
) -> float:
    """Per-word backup write energy under a retention-shaping policy.

    The Δ²-scaling of the analytic STT model is applied relative to the
    technology's nominal (full-retention) per-bit write energy, so the
    same relative savings apply to any relaxation-capable technology.

    Raises:
        ValueError: if the technology does not support retention
            relaxation and the policy is not uniform at nominal
            retention.
    """
    params = params if params is not None else DEFAULT_STT
    nominal = write_energy_at_optimum(technology.retention_s, params)
    scale = technology.write_energy_j_per_bit / nominal
    if not technology.supports_retention_relaxation:
        profile = policy.retention_profile(width)
        if any(t < technology.retention_s for t in profile):
            raise ValueError(
                f"{technology.name} does not support retention relaxation"
            )
    total = 0.0
    for bit in range(width):
        target = min(policy.retention_s(bit, width), technology.retention_s)
        total += write_energy_at_optimum(target, params) * scale
    return total
