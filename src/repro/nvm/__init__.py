"""Nonvolatile-memory device models.

The DATE'17 tutorial surveys the NVM technologies NVPs are built from —
FeRAM (TI MSP430FR-class MCUs, the 3 µs-wake-up ferroelectric NVP),
ReRAM (the 65 nm ISSCC'16 NVP with adaptive data retention and
self-write-termination), STT-MRAM, PCM, Flash and emerging FeFET
latches.  This package provides:

* a :class:`~repro.nvm.technology.NVMTechnology` catalog with
  write/read energy, latency, retention, endurance and wake-up figures,
* an analytic STT-MRAM retention/write-energy model
  (:mod:`repro.nvm.sttram`) capturing the thermal-stability tradeoff
  that makes retention-relaxed ("approximate") backup profitable,
* retention-shaping policies and a bit-failure model
  (:mod:`repro.nvm.retention`),
* a behavioral NVM array with energy accounting
  (:mod:`repro.nvm.array`), and
* a self-write-termination write-circuit model
  (:mod:`repro.nvm.writecircuit`).
"""

from repro.nvm.technology import (
    FERAM,
    FEFET,
    NOR_FLASH,
    NVMTechnology,
    PCM,
    RERAM,
    SRAM_REFERENCE,
    STT_MRAM,
    TECHNOLOGIES,
    technology_by_name,
)
from repro.nvm.sttram import (
    STTParameters,
    optimal_pulse_width,
    required_delta,
    retention_from_delta,
    write_current,
    write_energy,
    write_energy_at_optimum,
)
from repro.nvm.retention import (
    LinearPolicy,
    LogPolicy,
    ParabolaPolicy,
    RetentionPolicy,
    UniformPolicy,
    failure_probability,
    sample_bit_failures,
)
from repro.nvm.array import NVMArray, WearReport
from repro.nvm.ecc import DecodeStatus, decode as ecc_decode, encode as ecc_encode
from repro.nvm.writecircuit import SelfTerminatingWriteCircuit, WriteCircuitReport

__all__ = [
    "DecodeStatus",
    "FERAM",
    "FEFET",
    "WearReport",
    "ecc_decode",
    "ecc_encode",
    "LinearPolicy",
    "LogPolicy",
    "NOR_FLASH",
    "NVMArray",
    "NVMTechnology",
    "PCM",
    "ParabolaPolicy",
    "RERAM",
    "RetentionPolicy",
    "SRAM_REFERENCE",
    "STTParameters",
    "STT_MRAM",
    "SelfTerminatingWriteCircuit",
    "TECHNOLOGIES",
    "UniformPolicy",
    "WriteCircuitReport",
    "failure_probability",
    "optimal_pulse_width",
    "required_delta",
    "retention_from_delta",
    "sample_bit_failures",
    "technology_by_name",
    "write_current",
    "write_energy",
    "write_energy_at_optimum",
]
