"""Self-write-termination write-circuit model.

The 65 nm ReRAM NVP (ISSCC'16) introduced per-bit adaptive data
retention with self-write-termination: a current-mirror DAC selects
one of a small number of write currents and a high-frequency counter
terminates each bit's write pulse when its (retention-dependent)
target width is reached.  This module models that circuit at the
behavioural level: quantised currents and pulse widths, the resulting
per-word write energy/latency, and the (static) transistor overhead —
so experiments can account for circuit realism rather than assuming
ideal continuous control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.nvm.retention import RetentionPolicy
from repro.nvm.sttram import (
    DEFAULT_STT,
    STTParameters,
    optimal_pulse_width,
    write_current,
)


@dataclass(frozen=True)
class WriteCircuitReport:
    """Per-word write figures produced by the circuit model.

    Attributes:
        bit_current_a: quantised write current per bit, LSB first.
        bit_pulse_s: quantised pulse width per bit, LSB first.
        word_energy_j: total write energy for one word.
        word_latency_s: write latency (bits are written in parallel, so
            this is the longest pulse plus termination overhead).
        overhead_transistors: static transistor count of the write
            module (current mirrors, MUX array, counter, comparators).
    """

    bit_current_a: List[float]
    bit_pulse_s: List[float]
    word_energy_j: float
    word_latency_s: float
    overhead_transistors: int


class SelfTerminatingWriteCircuit:
    """Quantised dynamic-retention write driver.

    Args:
        current_levels: number of selectable mirror output currents.
        counter_bits: width of the pulse-termination counter.
        counter_clock_hz: the high-frequency termination clock; pulse
            widths are quantised to its period.
        params: analytic device parameters.
    """

    def __init__(
        self,
        current_levels: int = 8,
        counter_bits: int = 4,
        counter_clock_hz: float = 2e9,
        params: STTParameters = DEFAULT_STT,
    ) -> None:
        if current_levels < 2:
            raise ValueError("need at least two current levels")
        if counter_bits < 1:
            raise ValueError("counter must have at least one bit")
        if counter_clock_hz <= 0:
            raise ValueError("counter clock must be positive")
        self.current_levels = current_levels
        self.counter_bits = counter_bits
        self.counter_clock_hz = counter_clock_hz
        self.params = params

    @property
    def pulse_quantum_s(self) -> float:
        """Smallest representable pulse width."""
        return 1.0 / self.counter_clock_hz

    @property
    def max_pulse_s(self) -> float:
        """Longest representable pulse width."""
        return ((1 << self.counter_bits) - 1) * self.pulse_quantum_s

    @property
    def overhead_transistors(self) -> int:
        """Static transistor overhead of the write module.

        Current mirror legs (~6 transistors each), the MUX array
        (~4 per level), the termination counter (~8 per bit) and one
        comparator (~10 transistors) per column of an 8-column
        sub-array.  The published figure for this class of circuit is
        "fewer than 200 transistors per sub-array".
        """
        mirrors = 6 * self.current_levels
        muxes = 4 * self.current_levels
        counter = 8 * self.counter_bits
        comparators = 10 * 8
        return mirrors + muxes + counter + comparators

    def _quantise_pulse(self, pulse_s: float) -> float:
        """Round a pulse width up to the counter grid (clamped)."""
        quanta = max(1, -(-pulse_s // self.pulse_quantum_s))  # ceil
        quanta = min(quanta, (1 << self.counter_bits) - 1)
        return quanta * self.pulse_quantum_s

    def _quantise_current(self, current_a: float, currents: List[float]) -> float:
        """Pick the smallest available mirror current >= the request."""
        for level in currents:
            if level >= current_a:
                return level
        return currents[-1]

    def plan_word_write(
        self, policy: RetentionPolicy, word_bits: int = 16
    ) -> WriteCircuitReport:
        """Compute the write plan for one word under a shaping policy.

        Each bit gets the energy-optimal pulse width for its retention
        target, quantised to the counter grid, and the smallest mirror
        current that still meets the target at that pulse width.
        """
        ideal_currents = []
        pulses = []
        for bit in range(word_bits):
            retention = policy.retention_s(bit, word_bits)
            pulse = self._quantise_pulse(optimal_pulse_width(retention, self.params))
            pulses.append(pulse)
            ideal_currents.append(write_current(retention, pulse, self.params))
        # Provision mirror levels across the needed current range.
        lo, hi = min(ideal_currents), max(ideal_currents)
        if hi <= lo:
            levels = [hi] * self.current_levels
        else:
            step = (hi - lo) / (self.current_levels - 1)
            levels = [lo + step * i for i in range(self.current_levels)]
        currents = [self._quantise_current(c, levels) for c in ideal_currents]
        energy = sum(
            current * current * self.params.resistance_ohm * pulse
            for current, pulse in zip(currents, pulses)
        )
        # Parallel bit writes: latency is the longest pulse plus one
        # termination-clock cycle for the comparator to fire.
        latency = max(pulses) + self.pulse_quantum_s
        return WriteCircuitReport(
            bit_current_a=currents,
            bit_pulse_s=pulses,
            word_energy_j=energy,
            word_latency_s=latency,
            overhead_transistors=self.overhead_transistors,
        )
