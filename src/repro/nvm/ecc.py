"""SECDED Hamming code for backup images.

Retention-relaxed backup trades write energy for occasional bit
relaxations; pairing it with a single-error-correct /
double-error-detect (SECDED) code buys most of the energy saving back
while masking the dominant single-bit failures — the standard
reliability pairing in relaxed-retention NVM proposals.

The code is Hamming(21,16) + overall parity: each 16-bit word is
stored as 22 bits (5 parity + 1 overall).  ``decode`` corrects any
single-bit error (data *or* parity) and flags double-bit errors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

DATA_BITS = 16
#: Hamming parity bits for 16 data bits (positions 1,2,4,8,16).
HAMMING_PARITY_BITS = 5
#: Total stored bits: 21 Hamming bits + 1 overall parity.
CODEWORD_BITS = DATA_BITS + HAMMING_PARITY_BITS + 1


class DecodeStatus(enum.Enum):
    """Outcome of decoding a codeword."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    DETECTED = "detected"  # uncorrectable double-bit error


@dataclass(frozen=True)
class DecodeResult:
    """Decoded word plus what the decoder had to do.

    Attributes:
        value: the (possibly corrected) 16-bit data word.
        status: clean / corrected / detected.
    """

    value: int
    status: DecodeStatus


def _data_positions() -> Tuple[int, ...]:
    """Hamming positions (1-based) that carry data bits."""
    return tuple(
        pos for pos in range(1, DATA_BITS + HAMMING_PARITY_BITS + 1)
        if pos & (pos - 1) != 0  # not a power of two
    )


_DATA_POS = _data_positions()
_PARITY_POS = tuple(1 << i for i in range(HAMMING_PARITY_BITS))


def encode(value: int) -> int:
    """Encode a 16-bit word into a 22-bit SECDED codeword.

    Raises:
        ValueError: if the value does not fit in 16 bits.
    """
    if not 0 <= value <= 0xFFFF:
        raise ValueError(f"value {value:#x} does not fit in 16 bits")
    # Place data bits into their Hamming positions.
    bits = [0] * (DATA_BITS + HAMMING_PARITY_BITS + 1)  # 1-based positions
    for index, pos in enumerate(_DATA_POS):
        bits[pos] = (value >> index) & 1
    # Compute Hamming parities.
    for parity_pos in _PARITY_POS:
        parity = 0
        for pos in range(1, DATA_BITS + HAMMING_PARITY_BITS + 1):
            if pos & parity_pos and pos != parity_pos:
                parity ^= bits[pos]
        bits[parity_pos] = parity
    # Pack positions 1..21 into bits 0..20, overall parity into bit 21.
    codeword = 0
    for pos in range(1, DATA_BITS + HAMMING_PARITY_BITS + 1):
        codeword |= bits[pos] << (pos - 1)
    overall = bin(codeword).count("1") & 1
    codeword |= overall << (CODEWORD_BITS - 1)
    return codeword


def decode(codeword: int) -> DecodeResult:
    """Decode a 22-bit codeword, correcting a single-bit error.

    Raises:
        ValueError: if the codeword does not fit in 22 bits.
    """
    if not 0 <= codeword < (1 << CODEWORD_BITS):
        raise ValueError(f"codeword {codeword:#x} does not fit in 22 bits")
    overall_stored = (codeword >> (CODEWORD_BITS - 1)) & 1
    hamming = codeword & ((1 << (CODEWORD_BITS - 1)) - 1)
    bits = [0] * (DATA_BITS + HAMMING_PARITY_BITS + 1)
    for pos in range(1, DATA_BITS + HAMMING_PARITY_BITS + 1):
        bits[pos] = (hamming >> (pos - 1)) & 1
    # Syndrome.
    syndrome = 0
    for parity_pos in _PARITY_POS:
        parity = 0
        for pos in range(1, DATA_BITS + HAMMING_PARITY_BITS + 1):
            if pos & parity_pos:
                parity ^= bits[pos]
        if parity:
            syndrome |= parity_pos
    overall_computed = (bin(hamming).count("1") & 1) ^ overall_stored

    status = DecodeStatus.CLEAN
    if syndrome == 0 and overall_computed == 0:
        status = DecodeStatus.CLEAN
    elif overall_computed == 1:
        # Single-bit error (possibly in the overall parity itself).
        status = DecodeStatus.CORRECTED
        if 1 <= syndrome <= DATA_BITS + HAMMING_PARITY_BITS:
            bits[syndrome] ^= 1
    else:
        # Syndrome nonzero but overall parity consistent: double error.
        status = DecodeStatus.DETECTED

    value = 0
    for index, pos in enumerate(_DATA_POS):
        value |= bits[pos] << index
    return DecodeResult(value=value, status=status)


def overhead_fraction() -> float:
    """Storage/energy overhead of the code: extra bits per data bit."""
    return (CODEWORD_BITS - DATA_BITS) / DATA_BITS


def protect_word(
    value: int, relaxed_mask: int, rng
) -> Tuple[int, DecodeStatus]:
    """Simulate storing ``value`` through an outage with ECC.

    ``relaxed_mask`` marks which of the 22 codeword cells relaxed; each
    relaxed cell reads back randomly.  Returns the decoded value and
    the decoder status.
    """
    codeword = encode(value)
    corrupted = codeword
    for bit in range(CODEWORD_BITS):
        if relaxed_mask & (1 << bit) and rng.random() < 0.5:
            corrupted ^= 1 << bit
    result = decode(corrupted)
    return result.value, result.status
