"""Analytic STT-MRAM retention / write-energy tradeoff model.

The magnetic tunnel junction's retention time grows exponentially with
its thermal-stability factor Δ (``t_ret = tau0 * exp(Δ)``, with
``tau0 ≈ 1 ns``), while the critical switching current — and hence the
write energy — grows roughly linearly with Δ.  Relaxing retention from
a decade to milliseconds therefore cuts write energy severalfold; this
is the device-level lever behind retention-relaxed ("approximate")
backup in NVPs, studied for STT caches by Smullen et al. (HPCA'11) and
Jog et al. (DAC'12) and productized in the self-write-termination
circuit of the ISSCC'16 ReRAM NVP.

The write-current model combines the two switching regimes:

* precessional (short pulses): ``I = Ic(Δ) * (1 + tau_c / tau_p)``
* thermal activation is folded into the Δ requirement itself.

Write energy for a pulse of width ``tau_p`` at current ``I`` through a
junction of resistance ``R`` is ``E = I² R tau_p``, which is minimised
at ``tau_p = tau_c`` — the "best write-energy box".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Attempt period of the thermal activation process, seconds.
TAU0_S = 1e-9


@dataclass(frozen=True)
class STTParameters:
    """Device parameters for the analytic MTJ model.

    Attributes:
        ic_per_delta_a: critical current per unit of thermal stability,
            amperes.  ``Ic(Δ) = ic_per_delta_a * Δ``.  The default puts
            a 10-year-retention write (Δ ≈ 40) at ~0.4 mA and ~0.3 pJ —
            the regime published STT-MRAM macros report.
        tau_c_s: characteristic pulse width of the precessional term.
        resistance_ohm: MTJ resistance in the parallel state.
        min_delta: lowest Δ the write circuit will target (guards the
            model away from the super-paramagnetic limit).
    """

    ic_per_delta_a: float = 5.0e-6
    tau_c_s: float = 1.0e-9
    resistance_ohm: float = 2_000.0
    min_delta: float = 5.0

    def __post_init__(self) -> None:
        if self.ic_per_delta_a <= 0 or self.tau_c_s <= 0 or self.resistance_ohm <= 0:
            raise ValueError("STT parameters must be positive")
        if self.min_delta <= 0:
            raise ValueError("min_delta must be positive")


DEFAULT_STT = STTParameters()


def required_delta(retention_s: float, params: STTParameters = DEFAULT_STT) -> float:
    """Thermal-stability factor needed for a target retention time.

    ``Δ = ln(t_ret / tau0)``, clamped to ``params.min_delta``.

    Raises:
        ValueError: if ``retention_s`` is not positive.
    """
    if retention_s <= 0:
        raise ValueError("retention time must be positive")
    return max(params.min_delta, math.log(retention_s / TAU0_S))


def retention_from_delta(delta: float) -> float:
    """Inverse of :func:`required_delta` (no clamping)."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    return TAU0_S * math.exp(delta)


def write_current(
    retention_s: float,
    pulse_width_s: float,
    params: STTParameters = DEFAULT_STT,
) -> float:
    """Write current (A) for a retention target and write pulse width."""
    if pulse_width_s <= 0:
        raise ValueError("pulse width must be positive")
    delta = required_delta(retention_s, params)
    ic = params.ic_per_delta_a * delta
    return ic * (1.0 + params.tau_c_s / pulse_width_s)


def write_energy(
    retention_s: float,
    pulse_width_s: float,
    params: STTParameters = DEFAULT_STT,
) -> float:
    """Per-bit write energy (J) for a retention target and pulse width."""
    current = write_current(retention_s, pulse_width_s, params)
    return current * current * params.resistance_ohm * pulse_width_s


def optimal_pulse_width(
    retention_s: float, params: STTParameters = DEFAULT_STT
) -> float:
    """Pulse width minimising write energy.

    ``E(tau) = Ic²R (tau + 2 tau_c + tau_c²/tau)`` is minimised at
    ``tau = tau_c`` independent of Δ.
    """
    del retention_s  # the optimum does not depend on the retention target
    return params.tau_c_s


def write_energy_at_optimum(
    retention_s: float, params: STTParameters = DEFAULT_STT
) -> float:
    """Minimum per-bit write energy for a retention target (J)."""
    return write_energy(retention_s, optimal_pulse_width(retention_s, params), params)


def energy_saving_fraction(
    relaxed_retention_s: float,
    nominal_retention_s: float,
    params: STTParameters = DEFAULT_STT,
) -> float:
    """Fractional write-energy saving from relaxing retention.

    Returns ``1 - E(relaxed)/E(nominal)``; e.g. relaxing from one day
    to 10 ms saves roughly 75 % because energy scales with Δ².
    """
    nominal = write_energy_at_optimum(nominal_retention_s, params)
    relaxed = write_energy_at_optimum(relaxed_retention_s, params)
    if nominal <= 0:
        raise ValueError("nominal write energy must be positive")
    return 1.0 - relaxed / nominal
