"""Behavioral NVM array with energy accounting and retention failures.

This is the storage target of the backup controller: a small array of
16-bit words (register file + pipeline state + marked RAM words).  It
charges write/read energy per access according to the attached
technology and retention-shaping policy, and can be aged through a
power outage, which relaxes (randomises) bits whose retention target
was shorter than the outage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.nvm.retention import (
    RetentionPolicy,
    UniformPolicy,
    policy_backup_energy_j,
)
from repro.nvm.sttram import DEFAULT_STT, STTParameters
from repro.nvm.technology import NVMTechnology, FERAM


@dataclass
class ArrayStats:
    """Cumulative accounting for an :class:`NVMArray`."""

    writes: int = 0
    reads: int = 0
    write_energy_j: float = 0.0
    read_energy_j: float = 0.0
    outages: int = 0
    #: writes rejected because the cell's endurance was exhausted
    #: (only with ``enforce_endurance=True``).
    worn_writes: int = 0
    #: retention failures observed per bit index (LSB first).
    bit_failures: List[int] = field(default_factory=list)

    def total_failures(self) -> int:
        return sum(self.bit_failures)


@dataclass(frozen=True)
class WearReport:
    """Endurance snapshot of an array.

    Attributes:
        max_writes: write count of the most-worn word.
        mean_writes: average write count across all words.
        worn_words: words whose write count exceeds the technology's
            endurance.
        endurance_cycles: the technology's endurance budget.
    """

    max_writes: int
    mean_writes: float
    worn_words: int
    endurance_cycles: float

    @property
    def headroom(self) -> float:
        """Remaining endurance fraction of the most-worn word."""
        if self.endurance_cycles <= 0:
            return 0.0
        return max(0.0, 1.0 - self.max_writes / self.endurance_cycles)


class NVMArray:
    """A word-addressed nonvolatile array.

    Args:
        size_words: number of 16-bit words.
        technology: device technology from the catalog.
        policy: retention-shaping policy; defaults to uniform nominal
            retention (precise backup).
        word_bits: bits per word (16 for NV16 state).
        stt_params: analytic device parameters used for the
            retention/energy scaling.
        enforce_endurance: when True, a word written more times than
            the technology's endurance becomes *stuck* — further writes
            are silently dropped (counted in ``stats.worn_writes``),
            modelling worn-out cells.
    """

    def __init__(
        self,
        size_words: int,
        technology: NVMTechnology = FERAM,
        policy: Optional[RetentionPolicy] = None,
        word_bits: int = 16,
        stt_params: Optional[STTParameters] = None,
        enforce_endurance: bool = False,
    ) -> None:
        if size_words <= 0:
            raise ValueError("array must have at least one word")
        if word_bits <= 0 or word_bits > 32:
            raise ValueError("word_bits must be in 1..32")
        self.size_words = size_words
        self.technology = technology
        self.policy = policy if policy is not None else UniformPolicy(
            technology.retention_s
        )
        self.word_bits = word_bits
        self.stt_params = stt_params if stt_params is not None else DEFAULT_STT
        self.enforce_endurance = enforce_endurance
        self._words = np.zeros(size_words, dtype=np.uint32)
        self._valid = np.zeros(size_words, dtype=bool)
        self._write_counts = np.zeros(size_words, dtype=np.int64)
        self.stats = ArrayStats(bit_failures=[0] * word_bits)
        self._word_write_energy_j = policy_backup_energy_j(
            self.policy, technology, word_bits, self.stt_params
        )
        # Failure probability per bit per unit outage is derived lazily
        # from the policy profile.
        self._retention_profile = np.array(
            self.policy.retention_profile(word_bits), dtype=float
        )

    @property
    def word_write_energy_j(self) -> float:
        """Energy charged for one word write under the current policy."""
        return self._word_write_energy_j

    def write(self, address: int, value: int) -> None:
        """Write one word, charging policy-shaped write energy.

        A worn word (with ``enforce_endurance=True``) still costs the
        write energy, but its contents stick at their last value.
        """
        self._check_address(address)
        self.stats.writes += 1
        self.stats.write_energy_j += self._word_write_energy_j
        self._write_counts[address] += 1
        if (
            self.enforce_endurance
            and self._write_counts[address] > self.technology.endurance_cycles
        ):
            self.stats.worn_writes += 1
            return
        mask = (1 << self.word_bits) - 1
        self._words[address] = value & mask
        self._valid[address] = True

    def write_block(self, base: int, values: Sequence[int]) -> None:
        """Write a contiguous block of words."""
        for offset, value in enumerate(values):
            self.write(base + offset, value)

    def read(self, address: int) -> int:
        """Read one word, charging read energy.

        Raises:
            ValueError: if the word was never written (reading
                uninitialised NVM is almost always a harness bug).
        """
        self._check_address(address)
        if not self._valid[address]:
            raise ValueError(f"word {address} has never been written")
        self.stats.reads += 1
        self.stats.read_energy_j += (
            self.technology.read_energy_j_per_bit * self.word_bits
        )
        return int(self._words[address])

    def read_block(self, base: int, count: int) -> List[int]:
        """Read a contiguous block of words."""
        return [self.read(base + offset) for offset in range(count)]

    def power_outage(self, duration_s: float, rng: np.random.Generator) -> int:
        """Age the array through a power outage.

        Every valid word's bits relax independently with probability
        ``1 - exp(-duration / retention(bit))``; relaxed bits read back
        random values.  Returns the number of bits that actually
        flipped.
        """
        if duration_s < 0:
            raise ValueError("outage duration cannot be negative")
        self.stats.outages += 1
        valid_idx = np.flatnonzero(self._valid)
        if len(valid_idx) == 0 or duration_s == 0.0:
            return 0
        p_relax = 1.0 - np.exp(-duration_s / self._retention_profile)
        relaxed = rng.random((len(valid_idx), self.word_bits)) < p_relax
        # A relaxed cell reads back a random bit: it flips with p=0.5.
        flips = relaxed & (rng.random(relaxed.shape) < 0.5)
        for bit in range(self.word_bits):
            self.stats.bit_failures[bit] += int(relaxed[:, bit].sum())
        if not flips.any():
            return 0
        flip_masks = np.zeros(len(valid_idx), dtype=np.uint32)
        for bit in range(self.word_bits):
            flip_masks |= flips[:, bit].astype(np.uint32) << bit
        self._words[valid_idx] ^= flip_masks
        return int(flips.sum())

    def wear_report(self) -> "WearReport":
        """Endurance snapshot (see :class:`WearReport`)."""
        worn = int(
            np.sum(self._write_counts > self.technology.endurance_cycles)
        )
        return WearReport(
            max_writes=int(self._write_counts.max()),
            mean_writes=float(self._write_counts.mean()),
            worn_words=worn,
            endurance_cycles=self.technology.endurance_cycles,
        )

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.size_words:
            raise ValueError(
                f"address {address} outside array of {self.size_words} words"
            )
