"""NV16 instruction-set definition: opcodes, fields, encode/decode.

NV16 is a 16-bit load/store architecture with eight general registers.
``r0`` is hardwired to zero (writes are discarded), ``r6`` is the
conventional link register (``lr``) and ``r7`` the conventional stack
pointer (``sp``).  Instructions are encoded in one 32-bit word:

    [31:26] opcode   (6 bits)
    [25:23] rd       (3 bits)
    [22:20] rs1      (3 bits)
    [19:17] rs2      (3 bits)
    [16:0]  imm      (17 bits, two's complement)

The 17-bit signed immediate covers the full 16-bit unsigned address
space, so absolute branch/jump targets and data addresses always fit in
a single instruction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

WORD_MASK = 0xFFFF
WORD_BITS = 16

IMM_BITS = 17
IMM_MIN = -(1 << (IMM_BITS - 1))
IMM_MAX = (1 << (IMM_BITS - 1)) - 1

NUM_REGISTERS = 8

#: Canonical register names; index == register number.
REGISTER_NAMES = ("r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7")

#: Assembler-visible aliases.
REGISTER_ALIASES = {
    "zero": 0,
    "lr": 6,
    "sp": 7,
}


class Opcode(enum.IntEnum):
    """NV16 opcodes.

    The numeric values are part of the binary encoding and must remain
    stable.
    """

    # Register-register ALU.
    ADD = 0x00
    SUB = 0x01
    AND = 0x02
    OR = 0x03
    XOR = 0x04
    SHL = 0x05
    SHR = 0x06
    SAR = 0x07
    MUL = 0x08
    MULH = 0x09
    DIVU = 0x0A
    REMU = 0x0B
    SLT = 0x0C
    SLTU = 0x0D

    # Register-immediate ALU.
    ADDI = 0x10
    ANDI = 0x11
    ORI = 0x12
    XORI = 0x13
    SHLI = 0x14
    SHRI = 0x15
    SARI = 0x16
    SLTI = 0x17
    SLTIU = 0x18
    LUI = 0x19

    # Memory.
    LD = 0x20
    ST = 0x21

    # Control flow (absolute targets).
    BEQ = 0x28
    BNE = 0x29
    BLT = 0x2A
    BGE = 0x2B
    BLTU = 0x2C
    BGEU = 0x2D
    JAL = 0x2E
    JALR = 0x2F

    # Misc.
    NOP = 0x3E
    HALT = 0x3F


#: Opcodes whose third operand is an immediate rather than rs2.
IMMEDIATE_OPCODES = frozenset(
    {
        Opcode.ADDI,
        Opcode.ANDI,
        Opcode.ORI,
        Opcode.XORI,
        Opcode.SHLI,
        Opcode.SHRI,
        Opcode.SARI,
        Opcode.SLTI,
        Opcode.SLTIU,
        Opcode.LUI,
        Opcode.LD,
        Opcode.ST,
        Opcode.BEQ,
        Opcode.BNE,
        Opcode.BLT,
        Opcode.BGE,
        Opcode.BLTU,
        Opcode.BGEU,
        Opcode.JAL,
        Opcode.JALR,
    }
)

#: Conditional-branch opcodes (rs1, rs2 compared; imm is the target).
BRANCH_OPCODES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU, Opcode.BGEU}
)


@dataclass(frozen=True)
class Instruction:
    """A decoded NV16 instruction.

    Field meaning depends on the opcode:

    * ALU reg-reg: ``rd = rs1 OP rs2``
    * ALU reg-imm: ``rd = rs1 OP imm`` (``LUI``: ``rd = imm << 8``)
    * ``LD``: ``rd = mem[rs1 + imm]``; ``ST``: ``mem[rs1 + imm] = rs2``
    * branches: ``if rs1 CMP rs2: pc = imm``
    * ``JAL``: ``rd = pc + 1; pc = imm``
    * ``JALR``: ``rd = pc + 1; pc = rs1 + imm``
    """

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        for name, reg in (("rd", self.rd), ("rs1", self.rs1), ("rs2", self.rs2)):
            if not 0 <= reg < NUM_REGISTERS:
                raise ValueError(f"{name}={reg} out of range 0..{NUM_REGISTERS - 1}")
        if not IMM_MIN <= self.imm <= IMM_MAX:
            raise ValueError(f"imm={self.imm} out of range {IMM_MIN}..{IMM_MAX}")


def encode(instr: Instruction) -> int:
    """Encode an :class:`Instruction` into its 32-bit machine word."""
    imm_field = instr.imm & ((1 << IMM_BITS) - 1)
    return (
        (int(instr.opcode) << 26)
        | (instr.rd << 23)
        | (instr.rs1 << 20)
        | (instr.rs2 << 17)
        | imm_field
    )


def decode(word: int) -> Instruction:
    """Decode a 32-bit machine word into an :class:`Instruction`.

    Raises:
        ValueError: if the opcode field is not a defined NV16 opcode or
            the word does not fit in 32 bits.
    """
    if not 0 <= word < (1 << 32):
        raise ValueError(f"machine word {word:#x} does not fit in 32 bits")
    opcode_field = (word >> 26) & 0x3F
    try:
        opcode = Opcode(opcode_field)
    except ValueError as exc:
        raise ValueError(f"undefined opcode {opcode_field:#04x}") from exc
    imm_field = word & ((1 << IMM_BITS) - 1)
    if imm_field & (1 << (IMM_BITS - 1)):
        imm_field -= 1 << IMM_BITS
    return Instruction(
        opcode=opcode,
        rd=(word >> 23) & 0x7,
        rs1=(word >> 20) & 0x7,
        rs2=(word >> 17) & 0x7,
        imm=imm_field,
    )


def to_signed(value: int) -> int:
    """Interpret a 16-bit word as a two's-complement signed integer."""
    value &= WORD_MASK
    return value - 0x10000 if value & 0x8000 else value


def to_unsigned(value: int) -> int:
    """Truncate an integer to its 16-bit unsigned representation."""
    return value & WORD_MASK
