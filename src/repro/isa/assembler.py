"""Two-pass assembler for the NV16 ISA.

Supported syntax (one statement per line; ``;``, ``#`` and ``//`` start
comments):

* Sections: ``.text`` (instructions; default) and ``.data`` (data
  image).  Inside ``.data``, ``.org ADDR`` moves the cursor, ``.word
  v1, v2, ...`` emits words, ``.space N [, fill]`` reserves words.
* Labels: ``name:`` — in ``.text`` they resolve to instruction indices,
  in ``.data`` to data-memory addresses.
* Immediates: decimal (``42``, ``-7``), hex (``0x1F``), character
  (``'a'``), a symbol, or ``symbol+N`` / ``symbol-N``.
* Memory operands: ``ld rd, off(rs1)`` and ``st rs2, off(rs1)``.
* Registers: ``r0..r7`` plus aliases ``zero``, ``lr`` (r6), ``sp`` (r7).

Pseudo-instructions::

    li rd, imm       -> addi rd, r0, imm
    mov rd, rs       -> add rd, rs, r0
    jmp label        -> jal r0, label
    call label       -> jal lr, label
    ret              -> jalr r0, lr, 0
    inc rd / dec rd  -> addi rd, rd, +/-1
    not rd, rs       -> xori rd, rs, 0xFFFF
    neg rd, rs       -> sub rd, r0, rs
    beqz/bnez rs, l  -> beq/bne rs, r0, l
    bgt/ble/bgtu/bleu a, b, l -> swapped blt/bge/bltu/bgeu
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import (
    IMMEDIATE_OPCODES,
    IMM_MAX,
    IMM_MIN,
    Instruction,
    Opcode,
    REGISTER_ALIASES,
    REGISTER_NAMES,
    encode,
)
from repro.isa.memory import NVM_BASE

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):")
_SYMBOL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)([+-]\d+)?$")
_MEM_OPERAND_RE = re.compile(r"^(.*)\(\s*([A-Za-z0-9_]+)\s*\)$")


class AssemblerError(Exception):
    """Raised for any syntax or semantic error, with line context."""

    def __init__(self, message: str, line_no: Optional[int] = None) -> None:
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


@dataclass
class Program:
    """An assembled NV16 program.

    Attributes:
        instructions: decoded instruction sequence (instruction memory).
        words: the corresponding encoded 32-bit machine words.
        symbols: label name -> value (instruction index or data address).
        data_image: initial data-memory contents, ``{address: word}``.
        source: the original assembly text.
    """

    instructions: List[Instruction] = field(default_factory=list)
    words: List[int] = field(default_factory=list)
    symbols: Dict[str, int] = field(default_factory=dict)
    data_image: Dict[int, int] = field(default_factory=dict)
    source: str = ""

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass
class _Statement:
    line_no: int
    mnemonic: str
    operands: List[str]


def _strip_comment(line: str) -> str:
    in_char = False
    for idx, char in enumerate(line):
        if char == "'":
            in_char = not in_char
        elif not in_char and (char in ";#" or line[idx : idx + 2] == "//"):
            return line[:idx]
    return line


def _parse_register(token: str, line_no: int) -> int:
    name = token.strip().lower()
    if name in REGISTER_ALIASES:
        return REGISTER_ALIASES[name]
    if name in REGISTER_NAMES:
        return REGISTER_NAMES.index(name)
    raise AssemblerError(f"unknown register {token!r}", line_no)


def _parse_number(token: str) -> Optional[int]:
    token = token.strip()
    if not token:
        return None
    if len(token) == 3 and token[0] == "'" and token[2] == "'":
        return ord(token[1])
    try:
        return int(token, 0)
    except ValueError:
        return None


class _ImmediateResolver:
    """Resolves numeric literals and ``symbol[+/-N]`` expressions."""

    def __init__(self, symbols: Dict[str, int]) -> None:
        self._symbols = symbols

    def resolve(self, token: str, line_no: int) -> int:
        value = _parse_number(token)
        if value is not None:
            return value
        match = _SYMBOL_RE.match(token.strip())
        if match:
            name, offset = match.group(1), match.group(2)
            if name in self._symbols:
                return self._symbols[name] + (int(offset) if offset else 0)
            raise AssemblerError(f"undefined symbol {name!r}", line_no)
        raise AssemblerError(f"cannot parse immediate {token!r}", line_no)


def _split_operands(text: str) -> List[str]:
    if not text.strip():
        return []
    return [part.strip() for part in text.split(",")]


# Pseudo-instruction expansion table: mnemonic -> handler.  Each handler
# returns a (real_mnemonic, operands) tuple.
def _expand_pseudo(stmt: _Statement) -> Tuple[str, List[str]]:
    m, ops = stmt.mnemonic, stmt.operands
    n = stmt.line_no

    def need(count: int) -> None:
        if len(ops) != count:
            raise AssemblerError(f"{m} expects {count} operand(s), got {len(ops)}", n)

    if m == "li":
        need(2)
        return "addi", [ops[0], "r0", ops[1]]
    if m == "mov":
        need(2)
        return "add", [ops[0], ops[1], "r0"]
    if m == "jmp":
        need(1)
        return "jal", ["r0", ops[0]]
    if m == "call":
        need(1)
        return "jal", ["lr", ops[0]]
    if m == "ret":
        need(0)
        return "jalr", ["r0", "lr", "0"]
    if m == "inc":
        need(1)
        return "addi", [ops[0], ops[0], "1"]
    if m == "dec":
        need(1)
        return "addi", [ops[0], ops[0], "-1"]
    if m == "not":
        need(2)
        return "xori", [ops[0], ops[1], "0xFFFF"]
    if m == "neg":
        need(2)
        return "sub", [ops[0], "r0", ops[1]]
    if m == "beqz":
        need(2)
        return "beq", [ops[0], "r0", ops[1]]
    if m == "bnez":
        need(2)
        return "bne", [ops[0], "r0", ops[1]]
    if m in ("bgt", "ble", "bgtu", "bleu"):
        need(3)
        real = {"bgt": "blt", "ble": "bge", "bgtu": "bltu", "bleu": "bgeu"}[m]
        return real, [ops[1], ops[0], ops[2]]
    return m, ops


_PSEUDO_SIZES = {
    "li": 1, "mov": 1, "jmp": 1, "call": 1, "ret": 1, "inc": 1, "dec": 1,
    "not": 1, "neg": 1, "beqz": 1, "bnez": 1, "bgt": 1, "ble": 1,
    "bgtu": 1, "bleu": 1,
}


def assemble(source: str) -> Program:
    """Assemble NV16 source text into a :class:`Program`.

    Raises:
        AssemblerError: on any syntax error, unknown mnemonic, undefined
            symbol, or out-of-range immediate.
    """
    program = Program(source=source)
    statements: List[_Statement] = []
    section = "text"
    text_cursor = 0
    data_cursor = NVM_BASE
    data_items: List[Tuple[int, int, str]] = []  # (line_no, address, token)

    # ---- pass 1: labels, layout --------------------------------------
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        while True:
            match = _LABEL_RE.match(line)
            if not match:
                break
            label = match.group(1)
            if label in program.symbols:
                raise AssemblerError(f"duplicate label {label!r}", line_no)
            program.symbols[label] = text_cursor if section == "text" else data_cursor
            line = line[match.end():].strip()
        if not line:
            continue

        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""

        if mnemonic == ".text":
            section = "text"
            continue
        if mnemonic == ".data":
            section = "data"
            operands = _split_operands(rest)
            if operands:
                origin = _parse_number(operands[0])
                if origin is None:
                    raise AssemblerError(".data origin must be numeric", line_no)
                data_cursor = origin
            continue
        if mnemonic == ".org":
            if section != "data":
                raise AssemblerError(".org is only valid in .data", line_no)
            origin = _parse_number(rest)
            if origin is None:
                raise AssemblerError(".org expects a numeric address", line_no)
            data_cursor = origin
            continue
        if mnemonic == ".word":
            if section != "data":
                raise AssemblerError(".word is only valid in .data", line_no)
            for token in _split_operands(rest):
                data_items.append((line_no, data_cursor, token))
                data_cursor += 1
            continue
        if mnemonic == ".space":
            if section != "data":
                raise AssemblerError(".space is only valid in .data", line_no)
            operands = _split_operands(rest)
            if not operands:
                raise AssemblerError(".space expects a count", line_no)
            count = _parse_number(operands[0])
            if count is None or count < 0:
                raise AssemblerError(".space count must be a non-negative number", line_no)
            fill = 0
            if len(operands) > 1:
                parsed_fill = _parse_number(operands[1])
                if parsed_fill is None:
                    raise AssemblerError(".space fill must be numeric", line_no)
                fill = parsed_fill
            for _ in range(count):
                data_items.append((line_no, data_cursor, str(fill)))
                data_cursor += 1
            continue
        if mnemonic.startswith("."):
            raise AssemblerError(f"unknown directive {mnemonic!r}", line_no)

        if section != "text":
            raise AssemblerError("instructions are only valid in .text", line_no)
        statements.append(_Statement(line_no, mnemonic, _split_operands(rest)))
        text_cursor += _PSEUDO_SIZES.get(mnemonic, 1)

    # ---- pass 2: encode ------------------------------------------------
    resolver = _ImmediateResolver(program.symbols)

    for line_no, address, token in data_items:
        value = resolver.resolve(token, line_no)
        program.data_image[address] = value & 0xFFFF

    for stmt in statements:
        mnemonic, operands = _expand_pseudo(stmt)
        instr = _encode_statement(mnemonic, operands, stmt.line_no, resolver)
        program.instructions.append(instr)
        program.words.append(encode(instr))

    return program


def _encode_statement(
    mnemonic: str,
    operands: List[str],
    line_no: int,
    resolver: _ImmediateResolver,
) -> Instruction:
    try:
        opcode = Opcode[mnemonic.upper()]
    except KeyError:
        raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_no) from None

    def imm_of(token: str) -> int:
        value = resolver.resolve(token, line_no)
        if not IMM_MIN <= value <= IMM_MAX:
            raise AssemblerError(
                f"immediate {value} out of range {IMM_MIN}..{IMM_MAX}", line_no
            )
        return value

    def need(count: int) -> None:
        if len(operands) != count:
            raise AssemblerError(
                f"{mnemonic} expects {count} operand(s), got {len(operands)}", line_no
            )

    if opcode in (Opcode.NOP, Opcode.HALT):
        need(0)
        return Instruction(opcode)

    if opcode is Opcode.LD:
        need(2)
        rd = _parse_register(operands[0], line_no)
        offset, base = _parse_mem_operand(operands[1], line_no, resolver)
        return Instruction(opcode, rd=rd, rs1=base, imm=offset)

    if opcode is Opcode.ST:
        need(2)
        rs2 = _parse_register(operands[0], line_no)
        offset, base = _parse_mem_operand(operands[1], line_no, resolver)
        return Instruction(opcode, rs1=base, rs2=rs2, imm=offset)

    if opcode is Opcode.LUI:
        need(2)
        return Instruction(
            opcode, rd=_parse_register(operands[0], line_no), imm=imm_of(operands[1])
        )

    if opcode is Opcode.JAL:
        need(2)
        return Instruction(
            opcode, rd=_parse_register(operands[0], line_no), imm=imm_of(operands[1])
        )

    if opcode is Opcode.JALR:
        need(3)
        return Instruction(
            opcode,
            rd=_parse_register(operands[0], line_no),
            rs1=_parse_register(operands[1], line_no),
            imm=imm_of(operands[2]),
        )

    if opcode in (
        Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU, Opcode.BGEU
    ):
        need(3)
        return Instruction(
            opcode,
            rs1=_parse_register(operands[0], line_no),
            rs2=_parse_register(operands[1], line_no),
            imm=imm_of(operands[2]),
        )

    if opcode in IMMEDIATE_OPCODES:
        need(3)
        return Instruction(
            opcode,
            rd=_parse_register(operands[0], line_no),
            rs1=_parse_register(operands[1], line_no),
            imm=imm_of(operands[2]),
        )

    # Register-register ALU.
    need(3)
    return Instruction(
        opcode,
        rd=_parse_register(operands[0], line_no),
        rs1=_parse_register(operands[1], line_no),
        rs2=_parse_register(operands[2], line_no),
    )


def _parse_mem_operand(
    token: str, line_no: int, resolver: _ImmediateResolver
) -> Tuple[int, int]:
    """Parse ``offset(base)`` into ``(offset, base_register)``."""
    match = _MEM_OPERAND_RE.match(token.strip())
    if not match:
        raise AssemblerError(
            f"memory operand must look like offset(reg), got {token!r}", line_no
        )
    offset_text = match.group(1).strip() or "0"
    offset = resolver.resolve(offset_text, line_no)
    if not IMM_MIN <= offset <= IMM_MAX:
        raise AssemblerError(f"offset {offset} out of range", line_no)
    base = _parse_register(match.group(2), line_no)
    return offset, base
