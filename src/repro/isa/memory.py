"""Segmented data-memory model for the NV16 core.

The data address space is 64 Ki 16-bit words, split into three regions
mirroring the memory organisation of NVP prototypes:

* ``RAM``  ``0x0000 – 0x7FFF``: volatile SRAM working memory.  Its
  contents are lost on a power failure unless the backup controller
  saves them (register/NVFF state is handled separately by
  :mod:`repro.core`).
* ``NVM``  ``0x8000 – 0xEFFF``: nonvolatile data memory.  Survives
  power loss unconditionally; writes are charged to the attached NVM
  technology model by higher layers.
* ``MMIO`` ``0xF000 – 0xFFFF``: memory-mapped I/O.  Word writes to
  :data:`OUTPUT_PORT` append to the output queue (the moral equivalent
  of the GPIO ports NVP testbenches stream results through).
"""

from __future__ import annotations

from typing import Iterable, List, Mapping

from repro.isa.instructions import WORD_MASK

RAM_BASE = 0x0000
NVM_BASE = 0x8000
MMIO_BASE = 0xF000
ADDRESS_SPACE = 0x10000

#: Writes to this MMIO word are collected in :attr:`MemoryMap.output`.
OUTPUT_PORT = 0xF000
#: Reads from this MMIO word pop from :attr:`MemoryMap.input_queue`
#: (0 when the queue is empty).
INPUT_PORT = 0xF001


class MemoryMap:
    """Word-addressed data memory with RAM/NVM/MMIO segmentation.

    The memory tracks read/write counts per region so energy models can
    charge SRAM and NVM accesses differently.
    """

    def __init__(self) -> None:
        self._words = [0] * ADDRESS_SPACE
        self.output: List[int] = []
        self.input_queue: List[int] = []
        self.ram_reads = 0
        self.ram_writes = 0
        self.nvm_reads = 0
        self.nvm_writes = 0

    @staticmethod
    def region(address: int) -> str:
        """Return ``"ram"``, ``"nvm"`` or ``"mmio"`` for an address."""
        if not 0 <= address < ADDRESS_SPACE:
            raise ValueError(f"address {address:#x} outside 16-bit space")
        if address >= MMIO_BASE:
            return "mmio"
        if address >= NVM_BASE:
            return "nvm"
        return "ram"

    def read(self, address: int) -> int:
        """Read one 16-bit word."""
        region = self.region(address)
        if region == "mmio":
            if address == INPUT_PORT:
                return self.input_queue.pop(0) if self.input_queue else 0
            return self._words[address]
        if region == "nvm":
            self.nvm_reads += 1
        else:
            self.ram_reads += 1
        return self._words[address]

    def write(self, address: int, value: int) -> None:
        """Write one 16-bit word (value truncated to 16 bits)."""
        value &= WORD_MASK
        region = self.region(address)
        if region == "mmio":
            if address == OUTPUT_PORT:
                self.output.append(value)
            else:
                self._words[address] = value
            return
        if region == "nvm":
            self.nvm_writes += 1
        else:
            self.ram_writes += 1
        self._words[address] = value

    # -- bulk access used by the workload harness (not charged) ---------

    def load_words(self, base: int, values: Iterable[int]) -> None:
        """Initialise memory starting at ``base`` without access charges."""
        for offset, value in enumerate(values):
            address = base + offset
            if not 0 <= address < MMIO_BASE:
                raise ValueError(f"bulk load at {address:#x} overflows data memory")
            self._words[address] = value & WORD_MASK

    def load_image(self, image: Mapping[int, int]) -> None:
        """Initialise memory from an ``{address: word}`` mapping."""
        for address, value in image.items():
            if not 0 <= address < MMIO_BASE:
                raise ValueError(f"image word at {address:#x} overflows data memory")
            self._words[address] = value & WORD_MASK

    def dump_words(self, base: int, count: int) -> List[int]:
        """Read ``count`` words starting at ``base`` without charges."""
        if not 0 <= base <= base + count <= ADDRESS_SPACE:
            raise ValueError("dump range outside address space")
        return list(self._words[base : base + count])

    def clear_volatile(self) -> None:
        """Model a power failure: zero all RAM words, keep NVM and MMIO."""
        for address in range(RAM_BASE, NVM_BASE):
            self._words[address] = 0

    def snapshot_ram(self) -> List[int]:
        """Copy of the volatile RAM segment (for checkpointing models)."""
        return list(self._words[RAM_BASE:NVM_BASE])

    def restore_ram(self, snapshot: List[int]) -> None:
        """Restore the volatile RAM segment from :meth:`snapshot_ram`."""
        if len(snapshot) != NVM_BASE - RAM_BASE:
            raise ValueError("RAM snapshot has wrong length")
        self._words[RAM_BASE:NVM_BASE] = snapshot
