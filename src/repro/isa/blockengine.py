"""Block-compiled execution engine for the NV16 core.

:meth:`repro.isa.cpu.CPU.step` pays one Python call, one ``classify``
dict chain and one ``StepInfo`` allocation *per instruction* — the last
scalar-interpreter hot path in the codebase, and the reason real
kernels (FIR, Sobel, CRC, matmul) crawl while abstract workloads fly
through the batched exact kernel.  This module compiles a decoded
program once into basic blocks of specialized register-transfer
closures and executes straight-line runs as fused loops, bit-for-bit
identical to a pure ``step()`` loop.

Compilation
    *Block discovery* finds leaders the classic way: instruction 0,
    every in-range branch/JAL target, and every instruction following
    a control transfer (branch, JAL, JALR, HALT).  Long straight-line
    spans are additionally split every :data:`MAX_BLOCK_LEN`
    instructions so a tick whose budget covers only part of a giant
    unrolled span can still fuse its prefix blocks.  Each block holds
    per-instruction ``(closure, time_s, energy_j, cycles)`` tables,
    classified through the same :func:`~repro.isa.energy.classify` /
    :class:`~repro.isa.energy.EnergyModel` lookups ``step()`` performs
    — evaluated once at compile time instead of once per executed
    instruction.

Closures
    Every instruction compiles to a tiny exec-generated function
    ``fn(regs, memory)`` with all constants folded: ``r0`` reads fold
    to literal ``0`` (matching ``_read_reg``, even against adversarial
    restored states where ``regs[0]`` was forced nonzero), masked
    immediates, shift counts and ``LUI``/link constants are baked in,
    and pure ALU writes to ``r0`` compile to a no-op (``LD r0, ...``
    still performs the read: MMIO pops and region counters are
    architectural side effects).  Terminators return the next PC;
    ``JALR`` reads ``rs1`` before writing the link register, exactly
    as ``_execute`` reads operands before dispatch.

Execution
    :meth:`BlockEngine.run` advances a CPU under
    :meth:`~repro.workloads.base.FunctionalWorkload.advance`'s time
    budget.  Float accounting (``time_used += cycles * cycle_time_s``,
    ``energy += e``, ``cpu.energy_j += e``) is accumulated strictly
    per instruction in program order — never block-bulk — so every
    partial sum equals the scalar interpreter's.  A block is executed
    without per-instruction budget/cap compares only when a
    conservative guard proves every scalar compare would have passed
    (the guard over-approximates float accumulation error; blocks that
    straddle the budget fall back to per-instruction stepping, which
    is still exact).  Mid-block entry — a restore landing between
    leaders, a JALR into a block body, or resumption after a budget
    stop — steps the block tail per instruction and rejoins fused
    execution at the next leader.

The engine is process-wide switchable (``--no-block-engine`` /
``NVPSIM_NO_BLOCK_ENGINE=1``) and counts fused vs. stepped block
executions for ``--profile``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.isa.cpu import ExecutionError
from repro.isa.energy import EnergyModel, classify
from repro.isa.instructions import (
    BRANCH_OPCODES,
    Instruction,
    Opcode,
    to_signed,
)

__all__ = [
    "BlockEngine",
    "SegmentResult",
    "enabled",
    "set_enabled",
    "MAX_BLOCK_LEN",
]

#: Straight-line spans are split into blocks of at most this many
#: instructions so partial-budget ticks still fuse whole prefixes.
MAX_BLOCK_LEN = 128

#: Opcodes that end a basic block (the next instruction is a leader).
_CONTROL_OPCODES = frozenset(BRANCH_OPCODES) | {
    Opcode.JAL,
    Opcode.JALR,
    Opcode.HALT,
}

#: Accumulated-float-error over-approximation per summed term; used by
#: the fused-block budget guard (several times 2**-52, covering both
#: the compile-time block-sum rounding and the runtime accumulation).
_GUARD_EPS = 1.0e-15

_ENV_DISABLE = "NVPSIM_NO_BLOCK_ENGINE"

_enabled = os.environ.get(_ENV_DISABLE, "") in ("", "0")


def enabled() -> bool:
    """Whether compiled workloads drive the block engine."""
    return _enabled


def set_enabled(flag: bool) -> None:
    """Process-wide engine switch (the ``--no-block-engine`` knob).

    Also mirrors the choice into :data:`os.environ` so sweep workers
    spawned after the call inherit it.
    """
    global _enabled
    _enabled = bool(flag)
    if _enabled:
        os.environ.pop(_ENV_DISABLE, None)
    else:
        os.environ[_ENV_DISABLE] = "1"


class SegmentResult:
    """Outcome of one :meth:`BlockEngine.run` segment.

    Attributes:
        executed: instructions retired by the segment.
        energy_j: the caller's energy accumulator after the segment
            (same left-to-right adds the scalar loop performs).
        time_used_s: the caller's time accumulator after the segment.
        capped: the segment retired one instruction past the caller's
            cap (mirroring the scalar ``_unit_retired > max`` raise,
            which fires *after* the offending instruction executes).
        fault: an :class:`~repro.isa.cpu.ExecutionError` the scalar
            interpreter would have raised at this point, or ``None``.
            The CPU counters already include every instruction retired
            before the fault, exactly as chained ``step()`` calls
            would have left them.
    """

    __slots__ = ("executed", "energy_j", "time_used_s", "capped", "fault")

    def __init__(
        self,
        executed: int,
        energy_j: float,
        time_used_s: float,
        capped: bool = False,
        fault: Optional[ExecutionError] = None,
    ) -> None:
        self.executed = executed
        self.energy_j = energy_j
        self.time_used_s = time_used_s
        self.capped = capped
        self.fault = fault


class _Block:
    """One compiled basic block.

    ``ops`` covers the straight-line body (``(fn, time_s, energy_j,
    cycles)`` per instruction, dense from ``start``); ``term`` is the
    compiled control-flow tail at ``limit - 1`` — ``(fn, time_s,
    energy_j, cycles, halts)`` with ``fn(regs, memory) -> next_pc`` —
    or ``None`` for a pure fallthrough block.
    """

    __slots__ = (
        "start",
        "limit",
        "ops",
        "term",
        "n_instructions",
        "body_time_s",
        "guard_factor",
    )

    def __init__(self, start: int, limit: int, ops, term) -> None:
        self.start = start
        self.limit = limit
        self.ops = ops
        self.term = term
        self.n_instructions = len(ops) + (1 if term is not None else 0)
        # Upper bound for the fused-budget guard: the largest partial
        # sum the scalar loop compares against the budget is the one
        # *before* the final instruction, but bounding the full-block
        # sum is simpler and only costs boundary ticks a per-op pass.
        total = 0.0
        for _fn, t, _e, _c in ops:
            total += t
        if term is not None:
            total += term[1]
        self.body_time_s = total
        self.guard_factor = 1.0 + _GUARD_EPS * (self.n_instructions + 4)


def _reg_expr(index: int) -> str:
    """Source for a register read (``_read_reg`` semantics)."""
    return "0" if index == 0 else f"regs[{index}]"


def _compile_fn(source: str, name: str = "fn"):
    """Exec a single-function source string and return the function."""
    namespace: Dict[str, object] = {"ts": to_signed}
    exec(compile(source, "<blockengine>", "exec"), namespace)
    return namespace[name]


def _nop_fn(regs, memory) -> None:
    return None


#: Value-expression templates for the ALU opcodes; ``{a}``/``{b}`` are
#: register reads, immediates are folded by the caller.  Every write
#: goes through ``& 0xFFFF`` (``_write_reg``), and signed views go
#: through the same masked ``to_signed`` helper the interpreter uses —
#: so even non-canonical restored register values (> 16 bits) produce
#: identical results.
_ALU_RR = {
    Opcode.ADD: "({a} + {b})",
    Opcode.SUB: "({a} - {b})",
    Opcode.AND: "({a} & {b})",
    Opcode.OR: "({a} | {b})",
    Opcode.XOR: "({a} ^ {b})",
    Opcode.SHL: "({a} << ({b} % 16))",
    Opcode.SHR: "({a} >> ({b} % 16))",
    Opcode.SAR: "(ts({a}) >> ({b} % 16))",
    Opcode.MUL: "({a} * {b})",
    Opcode.MULH: "(({a} * {b}) >> 16)",
    Opcode.DIVU: "(0xFFFF if {b} == 0 else {a} // {b})",
    Opcode.REMU: "({a} if {b} == 0 else {a} % {b})",
    Opcode.SLT: "(1 if ts({a}) < ts({b}) else 0)",
    Opcode.SLTU: "(1 if {a} < {b} else 0)",
}

_BRANCH_COND = {
    Opcode.BEQ: "{a} == {b}",
    Opcode.BNE: "{a} != {b}",
    Opcode.BLT: "ts({a}) < ts({b})",
    Opcode.BGE: "ts({a}) >= ts({b})",
    Opcode.BLTU: "{a} < {b}",
    Opcode.BGEU: "{a} >= {b}",
}


def _compile_linear(instr: Instruction):
    """Compile a non-control instruction to ``fn(regs, memory)``."""
    op = instr.opcode
    rd = instr.rd
    a = _reg_expr(instr.rs1)
    b = _reg_expr(instr.rs2)
    imm = instr.imm
    if op in _ALU_RR:
        if rd == 0:
            # DIVU/REMU by zero is architecturally defined (no trap),
            # so a discarded ALU result has no observable effect.
            return _nop_fn
        value = _ALU_RR[op].format(a=a, b=b)
    elif op is Opcode.ADDI:
        if rd == 0:
            return _nop_fn
        value = f"({a} + {imm})"
    elif op is Opcode.ANDI:
        if rd == 0:
            return _nop_fn
        value = f"({a} & {imm & 0xFFFF})"
    elif op is Opcode.ORI:
        if rd == 0:
            return _nop_fn
        value = f"({a} | {imm & 0xFFFF})"
    elif op is Opcode.XORI:
        if rd == 0:
            return _nop_fn
        value = f"({a} ^ {imm & 0xFFFF})"
    elif op is Opcode.SHLI:
        if rd == 0:
            return _nop_fn
        value = f"({a} << {imm % 16})"
    elif op is Opcode.SHRI:
        if rd == 0:
            return _nop_fn
        value = f"({a} >> {imm % 16})"
    elif op is Opcode.SARI:
        if rd == 0:
            return _nop_fn
        value = f"(ts({a}) >> {imm % 16})"
    elif op is Opcode.SLTI:
        if rd == 0:
            return _nop_fn
        value = f"(1 if ts({a}) < {imm} else 0)"
    elif op is Opcode.SLTIU:
        if rd == 0:
            return _nop_fn
        value = f"(1 if {a} < {imm & 0xFFFF} else 0)"
    elif op is Opcode.LUI:
        if rd == 0:
            return _nop_fn
        value = str((imm & 0xFF) << 8)
    elif op is Opcode.LD:
        address = f"({a} + {imm}) & 0xFFFF"
        if rd == 0:
            # The read still happens: region counters and the MMIO
            # input-port pop are architectural side effects.
            return _compile_fn(
                f"def fn(regs, memory):\n    memory.read({address})\n"
            )
        return _compile_fn(
            f"def fn(regs, memory):\n"
            f"    regs[{rd}] = memory.read({address}) & 0xFFFF\n"
        )
    elif op is Opcode.ST:
        address = f"({a} + {imm}) & 0xFFFF"
        return _compile_fn(
            f"def fn(regs, memory):\n    memory.write({address}, {b})\n"
        )
    elif op is Opcode.NOP:
        return _nop_fn
    else:  # pragma: no cover - control ops never reach here
        raise ExecutionError(f"unimplemented opcode {op!r}")
    return _compile_fn(
        f"def fn(regs, memory):\n    regs[{rd}] = {value} & 0xFFFF\n"
    )


def _compile_terminator(pc: int, instr: Instruction):
    """Compile a control instruction to ``fn(regs, memory) -> next_pc``."""
    op = instr.opcode
    fallthrough = pc + 1
    a = _reg_expr(instr.rs1)
    b = _reg_expr(instr.rs2)
    imm = instr.imm
    if op in BRANCH_OPCODES:
        cond = _BRANCH_COND[op].format(a=a, b=b)
        target = imm & 0xFFFF
        return _compile_fn(
            f"def fn(regs, memory):\n"
            f"    return {target} if {cond} else {fallthrough}\n"
        )
    if op is Opcode.JAL:
        link = fallthrough & 0xFFFF
        target = imm & 0xFFFF
        if instr.rd == 0:
            return _compile_fn(
                f"def fn(regs, memory):\n    return {target}\n"
            )
        return _compile_fn(
            f"def fn(regs, memory):\n"
            f"    regs[{instr.rd}] = {link}\n"
            f"    return {target}\n"
        )
    if op is Opcode.JALR:
        link = fallthrough & 0xFFFF
        if instr.rd == 0:
            return _compile_fn(
                f"def fn(regs, memory):\n"
                f"    return ({a} + {imm}) & 0xFFFF\n"
            )
        # rs1 is read before the link write, matching ``_execute``'s
        # operand-fetch-then-dispatch order when rd == rs1.
        return _compile_fn(
            f"def fn(regs, memory):\n"
            f"    target = ({a} + {imm}) & 0xFFFF\n"
            f"    regs[{instr.rd}] = {link}\n"
            f"    return target\n"
        )
    if op is Opcode.HALT:
        # Handled structurally: the run loop sets ``halted`` and falls
        # through to pc + 1, exactly as ``_execute`` does.
        return None
    raise ExecutionError(f"unimplemented opcode {op!r}")  # pragma: no cover


class BlockEngine:
    """A program compiled to basic blocks of specialized closures.

    One engine serves every CPU instance a
    :class:`~repro.workloads.base.FunctionalWorkload` creates (the
    per-unit fresh CPUs share the same program and energy model);
    closures capture only compile-time constants and act on the
    ``(regs, memory)`` passed per call.

    Attributes:
        fused_blocks: blocks executed wholesale by the fused loop
            (the profile "hit" count).
        stepped_blocks: block executions that fell back to
            per-instruction stepping — mid-block entries and
            budget/cap boundary straddles (the profile "miss" count).
    """

    def __init__(
        self,
        program: Sequence[Instruction],
        energy_model: EnergyModel,
    ) -> None:
        self.n_instructions = len(program)
        #: Recompile trigger: the operating point the tables were
        #: classified against (``EnergyModel.scaled`` returns copies,
        #: so in practice this never changes for a live workload).
        self.model_signature = (
            energy_model.frequency_hz,
            energy_model.vdd,
            energy_model.static_power_w,
        )
        self.fused_blocks = 0
        self.stepped_blocks = 0
        self._blocks: List[_Block] = []
        #: pc -> owning block, dense over the program.
        self._block_at: List[_Block] = []
        self._compile(program, energy_model)

    # -- compilation -------------------------------------------------------

    def _compile(self, program: Sequence[Instruction], model: EnergyModel) -> None:
        n = len(program)
        if n == 0:
            return
        leaders = {0}
        for pc, instr in enumerate(program):
            op = instr.opcode
            if op in _CONTROL_OPCODES:
                if pc + 1 < n:
                    leaders.add(pc + 1)
                if op is not Opcode.JALR and op is not Opcode.HALT:
                    target = instr.imm & 0xFFFF
                    if target < n:
                        leaders.add(target)
        starts = sorted(leaders)
        cycle_time = model.cycle_time_s
        bounds = []
        for i, start in enumerate(starts):
            limit = starts[i + 1] if i + 1 < len(starts) else n
            # Split giant straight-line spans so partial budgets fuse.
            while limit - start > MAX_BLOCK_LEN:
                bounds.append((start, start + MAX_BLOCK_LEN))
                start += MAX_BLOCK_LEN
            bounds.append((start, limit))
        for start, limit in bounds:
            last = program[limit - 1]
            has_term = last.opcode in _CONTROL_OPCODES
            ops = []
            for pc in range(start, limit - 1 if has_term else limit):
                instr = program[pc]
                cls = classify(instr)
                cycles = model.instruction_cycles(cls)
                ops.append((
                    _compile_linear(instr),
                    cycles * cycle_time,
                    model.instruction_energy(cls),
                    cycles,
                ))
            term = None
            if has_term:
                cls = classify(last)
                cycles = model.instruction_cycles(cls)
                term = (
                    _compile_terminator(limit - 1, last),
                    cycles * cycle_time,
                    model.instruction_energy(cls),
                    cycles,
                    last.opcode is Opcode.HALT,
                )
            block = _Block(start, limit, ops, term)
            self._blocks.append(block)
            self._block_at.extend([block] * (limit - start))

    # -- introspection -----------------------------------------------------

    @property
    def n_blocks(self) -> int:
        """Number of compiled basic blocks."""
        return len(self._blocks)

    def profile_counts(self) -> Dict[str, int]:
        """Fused/stepped block counters (the ``--profile`` report)."""
        return {
            "blocks": self.n_blocks,
            "fused": self.fused_blocks,
            "stepped": self.stepped_blocks,
        }

    # -- execution ---------------------------------------------------------

    def run(
        self,
        cpu,
        budget_s: float,
        time_used_s: float,
        energy_j: float,
        cap_remaining: int,
    ) -> SegmentResult:
        """Execute until the budget, a HALT, the cap, or a fault.

        Semantically identical to the scalar loop::

            while time_used < budget:
                info = cpu.step()                  # may raise
                time_used += info.cycles * cycle_time_s
                energy += info.energy_j
                executed += 1
                if executed > cap_remaining: -> capped
                if cpu.state.halted: -> stop

        Args:
            cpu: the :class:`~repro.isa.cpu.CPU` to advance (its
                program must be the one this engine compiled).
            budget_s: the advance loop's total budget.
            time_used_s: the advance loop's time accumulator on entry.
            energy_j: the advance loop's energy accumulator on entry.
            cap_remaining: instructions the current unit may still
                retire before ``max_instructions_per_unit`` trips.

        Returns:
            A :class:`SegmentResult`; CPU state and counters are
            written back on every exit path.
        """
        state = cpu.state
        if state.halted:
            return SegmentResult(
                0, energy_j, time_used_s,
                fault=ExecutionError("cannot step a halted core"),
            )
        regs = state.regs
        memory = cpu.memory
        pc = state.pc
        n = self.n_instructions
        block_at = self._block_at
        time_used = time_used_s
        energy = energy_j
        cpu_energy = cpu.energy_j
        cycles = 0
        executed = 0
        budget = budget_s
        halted = False
        capped = False
        fault: Optional[ExecutionError] = None
        fused = 0
        stepped = 0

        while time_used < budget:
            if not 0 <= pc < n:
                fault = ExecutionError(
                    f"PC {pc:#06x} outside program of {n} words"
                )
                break
            blk = block_at[pc]
            ops = blk.ops
            term = blk.term
            if (
                pc == blk.start
                and executed + blk.n_instructions <= cap_remaining
                and (time_used + blk.body_time_s) * blk.guard_factor
                < budget
            ):
                # Fused: the guard proves every per-instruction budget
                # compare would pass and the cap cannot trip, so only
                # the architectural work and the (order-preserving)
                # per-instruction accounting remain.
                fused += 1
                for fn, t, e, c in ops:
                    fn(regs, memory)
                    time_used += t
                    energy += e
                    cpu_energy += e
                    cycles += c
                executed += len(ops)
                if term is None:
                    pc = blk.limit
                    continue
                tfn, t, e, c, halts = term
                if halts:
                    pc = blk.limit
                    halted = True
                else:
                    pc = tfn(regs, memory)
                time_used += t
                energy += e
                cpu_energy += e
                cycles += c
                executed += 1
                if halted:
                    break
                continue
            # Per-instruction tail: mid-block entry or a block that
            # straddles the budget/cap boundary.
            stepped += 1
            i = pc - blk.start
            n_lin = len(ops)
            stop = False
            while i < n_lin:
                if time_used >= budget:
                    pc = blk.start + i
                    stop = True
                    break
                fn, t, e, c = ops[i]
                fn(regs, memory)
                time_used += t
                energy += e
                cpu_energy += e
                cycles += c
                executed += 1
                i += 1
                if executed > cap_remaining:
                    pc = blk.start + i
                    capped = True
                    stop = True
                    break
            if stop:
                break
            if term is None:
                pc = blk.limit
                continue
            if time_used >= budget:
                pc = blk.limit - 1
                break
            tfn, t, e, c, halts = term
            if halts:
                pc = blk.limit
                halted = True
            else:
                pc = tfn(regs, memory)
            time_used += t
            energy += e
            cpu_energy += e
            cycles += c
            executed += 1
            if executed > cap_remaining:
                capped = True
                break
            if halted:
                break

        state.pc = pc
        if halted:
            state.halted = True
        cpu.energy_j = cpu_energy
        cpu.cycles += cycles
        cpu.instructions_retired += executed
        self.fused_blocks += fused
        self.stepped_blocks += stepped
        return SegmentResult(executed, energy, time_used, capped, fault)

    def run_count(self, cpu, count: int) -> int:
        """Execute exactly ``count`` instructions (or until HALT).

        The budget-free sibling of :meth:`run`, used by the
        equivalence property tests to land the engine on an arbitrary
        instruction boundary.  Accounting matches ``count`` chained
        :meth:`~repro.isa.cpu.CPU.step` calls bit for bit; raises the
        same :class:`~repro.isa.cpu.ExecutionError` the interpreter
        would — including "cannot step a halted core" when a HALT
        retires before ``count`` is reached (counters already include
        the instructions retired before the fault).

        Returns:
            ``count`` (the HALT-as-last-instruction case included).
        """
        state = cpu.state
        regs = state.regs
        memory = cpu.memory
        pc = state.pc
        n = self.n_instructions
        block_at = self._block_at
        cpu_energy = cpu.energy_j
        cycles = 0
        executed = 0
        halted = False
        fault: Optional[ExecutionError] = None
        while executed < count:
            if state.halted or halted:
                fault = ExecutionError("cannot step a halted core")
                break
            if not 0 <= pc < n:
                fault = ExecutionError(
                    f"PC {pc:#06x} outside program of {n} words"
                )
                break
            blk = block_at[pc]
            ops = blk.ops
            i = pc - blk.start
            if i < len(ops):
                fn, _t, e, c = ops[i]
                fn(regs, memory)
                pc += 1
            else:
                tfn, _t, e, c, halts = blk.term
                if halts:
                    pc = blk.limit
                    halted = True
                else:
                    pc = tfn(regs, memory)
            cpu_energy += e
            cycles += c
            executed += 1
        state.pc = pc
        if halted:
            state.halted = True
        cpu.energy_j = cpu_energy
        cpu.cycles += cycles
        cpu.instructions_retired += executed
        if fault is not None:
            raise fault
        return executed
