"""NV16: the behavioral MCU instruction-set substrate.

Nonvolatile-processor prototypes in the literature are built around
small 8051/MSP430-class cores.  ``repro.isa`` provides an equivalent
behavioral substrate: a compact 16-bit load/store ISA (``NV16``), a
two-pass assembler, a disassembler, a cycle- and energy-accounted CPU
core, and a segmented memory model (RAM / NVM / MMIO).

The ISA is deliberately simple and fully specified so that the rest of
the framework can reason about *instructions committed* (forward
progress) and *energy per instruction* — the quantities NVP papers
report — while remaining easy to write kernels for.
"""

from repro.isa.instructions import (
    Instruction,
    Opcode,
    REGISTER_NAMES,
    decode,
    encode,
)
from repro.isa.assembler import AssemblerError, Program, assemble
from repro.isa.disasm import disassemble, disassemble_program
from repro.isa.memory import (
    MemoryMap,
    MMIO_BASE,
    NVM_BASE,
    OUTPUT_PORT,
    RAM_BASE,
)
from repro.isa.cpu import CPU, CPUState, ExecutionError
from repro.isa.energy import EnergyModel, InstrClass, classify

__all__ = [
    "AssemblerError",
    "CPU",
    "CPUState",
    "EnergyModel",
    "ExecutionError",
    "Instruction",
    "InstrClass",
    "MemoryMap",
    "MMIO_BASE",
    "NVM_BASE",
    "Opcode",
    "OUTPUT_PORT",
    "Program",
    "RAM_BASE",
    "REGISTER_NAMES",
    "assemble",
    "classify",
    "decode",
    "disassemble",
    "disassemble_program",
    "encode",
]
