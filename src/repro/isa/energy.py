"""Cycle and energy accounting for NV16 instructions.

The numbers are calibrated so that a core running at 1 MHz draws about
0.21 mW on a typical instruction mix — the power reported for the
1 MHz NVP prototypes the DATE'17 tutorial surveys.  Dynamic energy per
instruction is frequency-independent (it scales with VDD² only), while
static leakage contributes ``P_static / f`` per cycle, which is what
makes very low clock frequencies inefficient under harvested power.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from repro.isa.instructions import BRANCH_OPCODES, Instruction, Opcode


class InstrClass(enum.Enum):
    """Energy/timing classes for NV16 instructions."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    NOP = "nop"
    HALT = "halt"


_CLASS_BY_OPCODE: Dict[Opcode, InstrClass] = {}
for _op in Opcode:
    if _op in (Opcode.MUL, Opcode.MULH):
        _cls = InstrClass.MUL
    elif _op in (Opcode.DIVU, Opcode.REMU):
        _cls = InstrClass.DIV
    elif _op is Opcode.LD:
        _cls = InstrClass.LOAD
    elif _op is Opcode.ST:
        _cls = InstrClass.STORE
    elif _op in BRANCH_OPCODES:
        _cls = InstrClass.BRANCH
    elif _op in (Opcode.JAL, Opcode.JALR):
        _cls = InstrClass.JUMP
    elif _op is Opcode.NOP:
        _cls = InstrClass.NOP
    elif _op is Opcode.HALT:
        _cls = InstrClass.HALT
    else:
        _cls = InstrClass.ALU
    _CLASS_BY_OPCODE[_op] = _cls


def classify(instr: Instruction) -> InstrClass:
    """Return the energy/timing class of an instruction."""
    return _CLASS_BY_OPCODE[instr.opcode]


#: Cycles per instruction class (simple in-order core, no cache).
DEFAULT_CYCLES: Dict[InstrClass, int] = {
    InstrClass.ALU: 1,
    InstrClass.MUL: 2,
    InstrClass.DIV: 8,
    InstrClass.LOAD: 2,
    InstrClass.STORE: 2,
    InstrClass.BRANCH: 1,
    InstrClass.JUMP: 2,
    InstrClass.NOP: 1,
    InstrClass.HALT: 1,
}

#: Dynamic energy per instruction class, joules, at VDD_NOM.
DEFAULT_DYNAMIC_ENERGY: Dict[InstrClass, float] = {
    InstrClass.ALU: 0.17e-9,
    InstrClass.MUL: 0.34e-9,
    InstrClass.DIV: 1.30e-9,
    InstrClass.LOAD: 0.36e-9,
    InstrClass.STORE: 0.38e-9,
    InstrClass.BRANCH: 0.15e-9,
    InstrClass.JUMP: 0.30e-9,
    InstrClass.NOP: 0.08e-9,
    InstrClass.HALT: 0.05e-9,
}

VDD_NOM = 1.0
DEFAULT_STATIC_POWER = 25e-6  # 25 µW leakage at VDD_NOM.
DEFAULT_FREQUENCY = 1e6  # 1 MHz baseline clock.


@dataclass
class EnergyModel:
    """Per-instruction energy/cycle model with f/VDD scaling.

    Attributes:
        frequency_hz: core clock frequency.
        vdd: supply voltage; dynamic energy scales with ``(vdd/VDD_NOM)²``.
        static_power_w: leakage power, charged per elapsed cycle.
        cycles: cycles per instruction class.
        dynamic_energy_j: dynamic energy per instruction class at
            ``VDD_NOM``.
    """

    frequency_hz: float = DEFAULT_FREQUENCY
    vdd: float = VDD_NOM
    static_power_w: float = DEFAULT_STATIC_POWER
    cycles: Dict[InstrClass, int] = field(
        default_factory=lambda: dict(DEFAULT_CYCLES)
    )
    dynamic_energy_j: Dict[InstrClass, float] = field(
        default_factory=lambda: dict(DEFAULT_DYNAMIC_ENERGY)
    )

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if self.static_power_w < 0:
            raise ValueError("static power cannot be negative")

    @property
    def cycle_time_s(self) -> float:
        """Duration of one clock cycle in seconds."""
        return 1.0 / self.frequency_hz

    def instruction_cycles(self, cls: InstrClass) -> int:
        """Cycles consumed by one instruction of class ``cls``."""
        return self.cycles[cls]

    def instruction_energy(self, cls: InstrClass) -> float:
        """Total (dynamic + leakage) energy for one instruction, joules."""
        scale = (self.vdd / VDD_NOM) ** 2
        dynamic = self.dynamic_energy_j[cls] * scale
        leakage = self.static_power_w * self.cycles[cls] * self.cycle_time_s
        return dynamic + leakage

    def instruction_time(self, cls: InstrClass) -> float:
        """Wall-clock time for one instruction, seconds."""
        return self.cycles[cls] * self.cycle_time_s

    def average_power(self, mix: Dict[InstrClass, float] | None = None) -> float:
        """Average power (W) for an instruction mix.

        Args:
            mix: mapping from class to fraction (should sum to 1).  The
                default is a generic embedded mix dominated by ALU and
                memory operations.
        """
        if mix is None:
            mix = DEFAULT_MIX
        total_energy = 0.0
        total_time = 0.0
        for cls, fraction in mix.items():
            total_energy += fraction * self.instruction_energy(cls)
            total_time += fraction * self.instruction_time(cls)
        if total_time <= 0:
            raise ValueError("instruction mix has zero total time")
        return total_energy / total_time

    def scaled(self, frequency_hz: float | None = None, vdd: float | None = None) -> "EnergyModel":
        """Return a copy with a different operating point."""
        return EnergyModel(
            frequency_hz=self.frequency_hz if frequency_hz is None else frequency_hz,
            vdd=self.vdd if vdd is None else vdd,
            static_power_w=self.static_power_w,
            cycles=dict(self.cycles),
            dynamic_energy_j=dict(self.dynamic_energy_j),
        )


def dvfs_model(
    frequency_hz: float,
    f_ref_hz: float = DEFAULT_FREQUENCY,
    v_min: float = 0.65,
    v_slope: float = 0.35,
    v_alpha: float = 0.8,
    static_power_w: float = DEFAULT_STATIC_POWER,
) -> EnergyModel:
    """Energy model at a DVFS operating point.

    Running faster requires a higher supply voltage (roughly
    ``VDD = v_min + v_slope * (f / f_ref) ** v_alpha``), so dynamic
    energy per instruction grows ~quadratically with clock while
    leakage per instruction shrinks — the tension that gives
    frequency scaling an income-dependent optimum.
    """
    if frequency_hz <= 0 or f_ref_hz <= 0:
        raise ValueError("frequencies must be positive")
    vdd = v_min + v_slope * (frequency_hz / f_ref_hz) ** v_alpha
    # Leakage grows mildly with the supply voltage.
    static = static_power_w * (vdd / VDD_NOM)
    return EnergyModel(
        frequency_hz=frequency_hz, vdd=vdd, static_power_w=static
    )


#: A generic embedded instruction mix (fractions sum to 1.0).
DEFAULT_MIX: Dict[InstrClass, float] = {
    InstrClass.ALU: 0.47,
    InstrClass.MUL: 0.04,
    InstrClass.DIV: 0.01,
    InstrClass.LOAD: 0.20,
    InstrClass.STORE: 0.10,
    InstrClass.BRANCH: 0.13,
    InstrClass.JUMP: 0.04,
    InstrClass.NOP: 0.01,
}
