"""Behavioral NV16 CPU core with cycle and energy accounting.

The core executes one instruction per :meth:`CPU.step` call against a
:class:`~repro.isa.memory.MemoryMap`, charging cycles and joules from
an :class:`~repro.isa.energy.EnergyModel`.  Architectural state is
deliberately tiny (eight registers + PC), matching the MCU-class cores
used in NVP prototypes, and can be snapshotted/restored in O(1) — the
primitive the nonvolatile backup controller in :mod:`repro.core` builds
on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.isa.energy import EnergyModel, InstrClass, classify
from repro.isa.instructions import (
    BRANCH_OPCODES,
    Instruction,
    NUM_REGISTERS,
    Opcode,
    to_signed,
    to_unsigned,
)
from repro.isa.memory import MemoryMap


class ExecutionError(Exception):
    """Raised when the core reaches an invalid architectural situation."""


@dataclass
class CPUState:
    """Snapshot-able architectural state of the NV16 core."""

    regs: List[int] = field(default_factory=lambda: [0] * NUM_REGISTERS)
    pc: int = 0
    halted: bool = False

    def copy(self) -> "CPUState":
        """Deep copy (registers are ints, so a list copy suffices)."""
        return CPUState(regs=list(self.regs), pc=self.pc, halted=self.halted)

    def state_bits(self) -> int:
        """Number of architectural state bits a backup must preserve."""
        return NUM_REGISTERS * 16 + 16 + 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CPUState):
            return NotImplemented
        return (
            self.regs == other.regs
            and self.pc == other.pc
            and self.halted == other.halted
        )


@dataclass(frozen=True)
class StepInfo:
    """Result of executing a single instruction."""

    instruction: Instruction
    instr_class: InstrClass
    cycles: int
    energy_j: float
    pc_before: int
    pc_after: int


class CPU:
    """NV16 behavioral core.

    Args:
        program: decoded instruction sequence (instruction memory).
        memory: data memory; a fresh :class:`MemoryMap` by default.
        energy_model: cycle/energy charging model.
    """

    def __init__(
        self,
        program: Sequence[Instruction],
        memory: Optional[MemoryMap] = None,
        energy_model: Optional[EnergyModel] = None,
    ) -> None:
        self.program = list(program)
        self.memory = memory if memory is not None else MemoryMap()
        self.energy_model = energy_model if energy_model is not None else EnergyModel()
        self.state = CPUState()
        self.instructions_retired = 0
        self.cycles = 0
        self.energy_j = 0.0

    # -- state management -------------------------------------------------

    def reset(self, pc: int = 0) -> None:
        """Reset architectural state (registers cleared, PC set)."""
        self.state = CPUState(pc=pc)

    def snapshot(self) -> CPUState:
        """Capture architectural state (what a hardware backup saves)."""
        return self.state.copy()

    def restore(self, snapshot: CPUState) -> None:
        """Restore architectural state from a snapshot."""
        self.state = snapshot.copy()

    # -- execution ---------------------------------------------------------

    def step(self) -> StepInfo:
        """Execute one instruction and charge its cycles/energy.

        Returns:
            A :class:`StepInfo` describing the retired instruction.

        Raises:
            ExecutionError: if the core is halted or the PC leaves the
                program.
        """
        state = self.state
        if state.halted:
            raise ExecutionError("cannot step a halted core")
        if not 0 <= state.pc < len(self.program):
            raise ExecutionError(
                f"PC {state.pc:#06x} outside program of {len(self.program)} words"
            )
        instr = self.program[state.pc]
        pc_before = state.pc
        self._execute(instr)
        cls = classify(instr)
        cycles = self.energy_model.instruction_cycles(cls)
        energy = self.energy_model.instruction_energy(cls)
        self.instructions_retired += 1
        self.cycles += cycles
        self.energy_j += energy
        return StepInfo(
            instruction=instr,
            instr_class=cls,
            cycles=cycles,
            energy_j=energy,
            pc_before=pc_before,
            pc_after=state.pc,
        )

    def run(self, max_instructions: int = 1_000_000) -> int:
        """Run until HALT or the instruction budget is exhausted.

        Returns:
            The number of instructions executed by this call.
        """
        executed = 0
        while not self.state.halted and executed < max_instructions:
            self.step()
            executed += 1
        return executed

    # -- private helpers ----------------------------------------------------

    def _read_reg(self, index: int) -> int:
        return 0 if index == 0 else self.state.regs[index]

    def _write_reg(self, index: int, value: int) -> None:
        if index != 0:
            self.state.regs[index] = to_unsigned(value)

    def _execute(self, instr: Instruction) -> None:
        op = instr.opcode
        state = self.state
        next_pc = state.pc + 1
        a = self._read_reg(instr.rs1)
        b = self._read_reg(instr.rs2)
        imm = instr.imm

        if op is Opcode.ADD:
            self._write_reg(instr.rd, a + b)
        elif op is Opcode.SUB:
            self._write_reg(instr.rd, a - b)
        elif op is Opcode.AND:
            self._write_reg(instr.rd, a & b)
        elif op is Opcode.OR:
            self._write_reg(instr.rd, a | b)
        elif op is Opcode.XOR:
            self._write_reg(instr.rd, a ^ b)
        elif op is Opcode.SHL:
            self._write_reg(instr.rd, a << (b % 16))
        elif op is Opcode.SHR:
            self._write_reg(instr.rd, a >> (b % 16))
        elif op is Opcode.SAR:
            self._write_reg(instr.rd, to_signed(a) >> (b % 16))
        elif op is Opcode.MUL:
            self._write_reg(instr.rd, a * b)
        elif op is Opcode.MULH:
            self._write_reg(instr.rd, (a * b) >> 16)
        elif op is Opcode.DIVU:
            self._write_reg(instr.rd, 0xFFFF if b == 0 else a // b)
        elif op is Opcode.REMU:
            self._write_reg(instr.rd, a if b == 0 else a % b)
        elif op is Opcode.SLT:
            self._write_reg(instr.rd, 1 if to_signed(a) < to_signed(b) else 0)
        elif op is Opcode.SLTU:
            self._write_reg(instr.rd, 1 if a < b else 0)
        elif op is Opcode.ADDI:
            self._write_reg(instr.rd, a + imm)
        elif op is Opcode.ANDI:
            self._write_reg(instr.rd, a & to_unsigned(imm))
        elif op is Opcode.ORI:
            self._write_reg(instr.rd, a | to_unsigned(imm))
        elif op is Opcode.XORI:
            self._write_reg(instr.rd, a ^ to_unsigned(imm))
        elif op is Opcode.SHLI:
            self._write_reg(instr.rd, a << (imm % 16))
        elif op is Opcode.SHRI:
            self._write_reg(instr.rd, a >> (imm % 16))
        elif op is Opcode.SARI:
            self._write_reg(instr.rd, to_signed(a) >> (imm % 16))
        elif op is Opcode.SLTI:
            self._write_reg(instr.rd, 1 if to_signed(a) < imm else 0)
        elif op is Opcode.SLTIU:
            self._write_reg(instr.rd, 1 if a < to_unsigned(imm) else 0)
        elif op is Opcode.LUI:
            self._write_reg(instr.rd, (imm & 0xFF) << 8)
        elif op is Opcode.LD:
            self._write_reg(instr.rd, self.memory.read(to_unsigned(a + imm)))
        elif op is Opcode.ST:
            self.memory.write(to_unsigned(a + imm), b)
        elif op in BRANCH_OPCODES:
            if self._branch_taken(op, a, b):
                next_pc = to_unsigned(imm)
        elif op is Opcode.JAL:
            self._write_reg(instr.rd, next_pc)
            next_pc = to_unsigned(imm)
        elif op is Opcode.JALR:
            self._write_reg(instr.rd, next_pc)
            next_pc = to_unsigned(a + imm)
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.HALT:
            state.halted = True
        else:  # pragma: no cover - exhaustive over Opcode
            raise ExecutionError(f"unimplemented opcode {op!r}")

        state.pc = next_pc

    @staticmethod
    def _branch_taken(op: Opcode, a: int, b: int) -> bool:
        if op is Opcode.BEQ:
            return a == b
        if op is Opcode.BNE:
            return a != b
        if op is Opcode.BLT:
            return to_signed(a) < to_signed(b)
        if op is Opcode.BGE:
            return to_signed(a) >= to_signed(b)
        if op is Opcode.BLTU:
            return a < b
        return a >= b  # BGEU
