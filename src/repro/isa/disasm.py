"""Disassembler for NV16 instructions (debugging and round-trip tests)."""

from __future__ import annotations

from typing import Iterable, List, Union

from repro.isa.instructions import (
    BRANCH_OPCODES,
    IMMEDIATE_OPCODES,
    Instruction,
    Opcode,
    REGISTER_NAMES,
    decode,
)


def disassemble(item: Union[int, Instruction]) -> str:
    """Render one instruction (or encoded word) as assembly text.

    The output is accepted verbatim by :func:`repro.isa.assemble`, so
    ``assemble(disassemble(i))`` round-trips.
    """
    instr = decode(item) if isinstance(item, int) else item
    op = instr.opcode
    name = op.name.lower()
    rd = REGISTER_NAMES[instr.rd]
    rs1 = REGISTER_NAMES[instr.rs1]
    rs2 = REGISTER_NAMES[instr.rs2]

    if op in (Opcode.NOP, Opcode.HALT):
        return name
    if op is Opcode.LD:
        return f"{name} {rd}, {instr.imm}({rs1})"
    if op is Opcode.ST:
        return f"{name} {rs2}, {instr.imm}({rs1})"
    if op is Opcode.LUI:
        return f"{name} {rd}, {instr.imm}"
    if op is Opcode.JAL:
        return f"{name} {rd}, {instr.imm}"
    if op is Opcode.JALR:
        return f"{name} {rd}, {rs1}, {instr.imm}"
    if op in BRANCH_OPCODES:
        return f"{name} {rs1}, {rs2}, {instr.imm}"
    if op in IMMEDIATE_OPCODES:
        return f"{name} {rd}, {rs1}, {instr.imm}"
    return f"{name} {rd}, {rs1}, {rs2}"


def disassemble_program(items: Iterable[Union[int, Instruction]]) -> List[str]:
    """Disassemble a sequence of instructions/words with PC annotations."""
    lines = []
    for pc, item in enumerate(items):
        lines.append(f"{pc:#06x}: {disassemble(item)}")
    return lines
