"""Command-line interface: quick experiments without writing a script.

Examples::

    python -m repro simulate --platform nvp --source wristwatch --duration 5
    python -m repro simulate --platform nvp --kernel sobel --frames 10
    python -m repro simulate --duration 5 --trace out.json --metrics out.csv
    python -m repro observe --duration 5 --interval 1
    python -m repro compare --duration 5 --seed 3 --jobs 4
    python -m repro sweep spec.json --jobs 4 --results-dir benchmarks/results
    python -m repro sweep spec.json --jobs 4 --trace sweep-trace.json
    python -m repro sweep spec.json --jobs 4 --live
    python -m repro fleet run fleet.json --telemetry-out fleet.jsonl
    python -m repro fleet watch fleet.json
    python -m repro fleet correlate fleet.json --json
    python -m repro runs list --experiment cap-sweep
    python -m repro runs list --devices-min 100
    python -m repro runs diff a1b2c3 d4e5f6
    python -m repro bench-report --baseline baseline-history.jsonl
    python -m repro outages --source wristwatch --duration 10
    python -m repro kernels --verify
    python -m repro techs
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

import numpy as np

from repro.analysis.report import format_table
from repro.core.config import DEFAULT_STATE_BITS
from repro.harvest.outage import DEFAULT_THRESHOLD_W, analyze_outages
from repro.harvest.sources import SOURCE_GENERATORS, hybrid_trace
from repro.nvm.technology import TECHNOLOGIES
from repro.obs.history import DEFAULT_HISTORY_PATH, DEFAULT_MAX_REGRESSION
from repro.system.presets import (
    build_checkpoint,
    build_nvp,
    build_oracle,
    build_wait_compute,
    standard_rectifier,
)
from repro.system.simulator import SystemSimulator
from repro.workloads.base import AbstractWorkload
from repro.workloads.suite import KERNELS, build_kernel, make_functional_workload

PLATFORM_BUILDERS = {
    "nvp": build_nvp,
    "wait": build_wait_compute,
    "checkpoint": build_checkpoint,
    "oracle": build_oracle,
}


def _make_trace(args):
    if args.source == "hybrid":
        trace = hybrid_trace(args.duration, seed=args.seed)
    else:
        trace = SOURCE_GENERATORS[args.source](args.duration, seed=args.seed)
    if args.mean_uw is not None:
        trace = trace.scaled_to_mean(args.mean_uw * 1e-6)
    return trace


def _make_workload(args):
    if args.kernel:
        build = build_kernel(args.kernel)
        return make_functional_workload(build, frames=args.frames), build
    return AbstractWorkload(), None


def _make_observability(args):
    """Build (bus, log, metrics) from the exporter flags (or Nones).

    The recorder subscribes to every event *except* the per-tick
    ``sim.tick`` sample, so an instrumented ``repro simulate`` keeps
    the fast-forward engine (the stream is synthesized from run
    lengths, bit-identical to exact ticking — see
    ``docs/observability.md``).  ``repro observe`` subscribes to
    everything, including ticks, and takes the exact path.
    """
    from repro.obs import EventBus, MetricsRegistry
    from repro.obs import events as ev

    wants_events = bool(
        getattr(args, "trace", None) or getattr(args, "events", None)
    )
    wants_metrics = bool(getattr(args, "metrics", None))
    if not wants_events and not wants_metrics and not getattr(
        args, "manifest", None
    ):
        return None, None, None
    bus = EventBus() if wants_events else None
    log = bus.record(names=ev.NON_TICK_EVENT_NAMES) if bus is not None else None
    metrics = MetricsRegistry() if wants_metrics else None
    return bus, log, metrics


def _write_observability(args, log, metrics, manifest) -> None:
    """Write whichever artifacts the exporter flags requested.

    Raises SystemExit(1) with a clean message on unwritable paths so a
    bad ``--trace``/``--metrics`` destination does not traceback.
    """
    from repro.obs import write_chrome_trace, write_events_jsonl, write_metrics_csv

    try:
        if getattr(args, "trace", None):
            count = write_chrome_trace(log, args.trace)
            print(f"trace   : {args.trace} ({count} trace events)")
        if getattr(args, "events", None):
            count = write_events_jsonl(log, args.events)
            print(f"events  : {args.events} ({count} lines)")
        if getattr(args, "metrics", None):
            count = write_metrics_csv(metrics, args.metrics)
            print(f"metrics : {args.metrics} ({count} series rows)")
        if getattr(args, "manifest", None):
            manifest.finish().write(args.manifest)
            print(f"manifest: {args.manifest}")
    except OSError as exc:
        raise SystemExit(f"error: cannot write artifact: {exc}")


def _profiled_run(simulator, profile_out: Optional[str]):
    """Run one simulation under cProfile (the ``--profile`` flags).

    Prints the top-20 cumulative-time entries to stderr (so ``--json``
    stdout stays clean) and optionally dumps the full stats to
    ``profile_out`` for pstats/snakeviz.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    result = profiler.runcall(simulator.run)
    stats = pstats.Stats(profiler, stream=sys.stderr)
    stats.sort_stats("cumulative")
    print(
        f"profile : top 20 by cumulative time "
        f"(fast-forwarded {simulator.ticks_fast_forwarded} ticks, "
        f"batched {simulator.ticks_batched}, "
        f"exact {simulator.ticks_exact})",
        file=sys.stderr,
    )
    engine = getattr(
        getattr(simulator.platform, "workload", None), "_block_engine", None
    )
    if engine is not None:
        counts = engine.profile_counts()
        print(
            f"blocks  : {counts['blocks']} compiled, "
            f"{counts['fused']} fused block runs, "
            f"{counts['stepped']} stepped (partial-budget) runs",
            file=sys.stderr,
        )
    stats.print_stats(20)
    if profile_out:
        try:
            stats.dump_stats(profile_out)
        except OSError as exc:
            raise SystemExit(f"error: cannot write profile: {exc}")
        print(f"pstats  : {profile_out}", file=sys.stderr)
    return result


def _ledger_append(record) -> Optional[str]:
    """Append to the configured ledger; returns the record id.

    Returns ``None`` when recording is disabled (``REPRO_LEDGER_DIR=""``)
    or the ledger file cannot be written — invocation bookkeeping never
    fails the command it is bookkeeping for.
    """
    from repro.obs.ledger import RunLedger

    ledger = RunLedger.from_env()
    if ledger is None:
        return None
    try:
        ledger.append(record)
    except OSError as exc:
        print(f"note: ledger not written: {exc}", file=sys.stderr)
        return None
    return record["id"]


def cmd_simulate(args) -> int:
    from repro.exp.spec import config_hash
    from repro.obs import RunManifest
    from repro.obs.ledger import OUTCOME_INTERRUPTED, OUTCOME_OK, make_record
    from repro.obs.resources import sample_resources, usage_between

    config = {
        "platform": args.platform,
        "source": args.source,
        "duration_s": args.duration,
        "kernel": args.kernel,
    }
    manifest = RunManifest.collect(
        command="simulate", seed=args.seed, config=config
    )
    if args.sample_stride < 0:
        print("error: --sample-stride must be >= 0", file=sys.stderr)
        return 2
    started = time.time()
    usage_before = sample_resources()
    fingerprint = config_hash({**config, "seed": args.seed})[:16]

    def _ledger(outcome_name: str = OUTCOME_OK) -> Optional[str]:
        return _ledger_append(make_record(
            "simulate",
            outcome_name,
            started,
            time.time(),
            experiment=args.kernel,
            spec_hash=fingerprint,
            resources=usage_between(usage_before, sample_resources()),
            n_devices=1,
        ))

    if getattr(args, "no_block_engine", False):
        from repro.isa import blockengine

        blockengine.set_enabled(False)
    trace = _make_trace(args)
    workload, build = _make_workload(args)
    platform = PLATFORM_BUILDERS[args.platform](workload)
    bus, log, metrics = _make_observability(args)
    simulator = SystemSimulator(
        trace,
        platform,
        rectifier=standard_rectifier(),
        stop_when_finished=args.kernel is not None,
        bus=bus,
        metrics=metrics,
        sample_stride=args.sample_stride,
        use_fast_forward=False if args.no_fast_forward else None,
        use_exact_batch=False if args.no_exact_batch else None,
    )
    try:
        if args.profile or args.profile_out:
            result = _profiled_run(simulator, args.profile_out)
        else:
            result = simulator.run()
    except KeyboardInterrupt:
        _ledger(OUTCOME_INTERRUPTED)
        raise
    if args.json:
        import json

        if log is not None or metrics is not None or args.manifest:
            # Write requested artifacts without polluting the JSON.
            import contextlib
            import io

            with contextlib.redirect_stdout(io.StringIO()):
                _write_observability(args, log, metrics, manifest)
        _ledger()
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    print(f"trace   : {trace}")
    print(f"result  : {result.summary()}")
    _write_observability(args, log, metrics, manifest)
    ledger_id = _ledger()
    if ledger_id:
        print(f"ledger  : {ledger_id}")
    if build is not None:
        outputs = np.array(workload.outputs, dtype=np.uint16)
        per_frame = len(build.expected_output)
        complete = len(outputs) // max(1, per_frame)
        if complete:
            reference = np.tile(build.expected_output, complete)
            exact = np.array_equal(outputs[: len(reference)], reference)
            print(f"outputs : {complete} complete frame(s), "
                  f"{'bit-exact' if exact else 'MISMATCH'}")
        else:
            print("outputs : no complete frame")
    return 0


def cmd_observe(args) -> int:
    """Run one simulation fully instrumented and render a live summary."""
    from repro.obs import EventBus, LiveSummary, MetricsRegistry, RunManifest

    manifest = RunManifest.collect(
        command="observe",
        seed=args.seed,
        config={
            "platform": args.platform,
            "source": args.source,
            "duration_s": args.duration,
            "kernel": args.kernel,
        },
    )
    if args.interval is not None and args.interval <= 0:
        print("error: --interval must be positive", file=sys.stderr)
        return 2
    trace = _make_trace(args)
    workload, _build = _make_workload(args)
    platform = PLATFORM_BUILDERS[args.platform](workload)
    bus = EventBus()
    summary = LiveSummary(interval_s=args.interval).attach(bus)
    log = bus.record() if (args.trace or args.events) else None
    metrics = MetricsRegistry()
    result = SystemSimulator(
        trace,
        platform,
        rectifier=standard_rectifier(),
        stop_when_finished=args.kernel is not None,
        bus=bus,
        metrics=metrics,
    ).run()
    print(f"trace   : {trace}")
    print(f"result  : {result.summary()}")
    print()
    print(summary.render())
    _write_observability(args, log, metrics, manifest)
    return 0


def cmd_compare(args) -> int:
    from repro.exp import SweepInterrupted, SweepRunner
    from repro.obs.ledger import OUTCOME_INTERRUPTED, sweep_record

    trace = _make_trace(args)
    configs = [
        {
            "platform": name,
            "source": args.source,
            "duration_s": args.duration,
            "seed": args.seed,
            "mean_uw": args.mean_uw,
            "label": name,
        }
        for name in PLATFORM_BUILDERS
    ]
    try:
        runner = SweepRunner(jobs=args.jobs)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    started = time.time()
    try:
        outcome = runner.run(configs)
    except SweepInterrupted as exc:
        _ledger_append(sweep_record(
            "compare", "platforms", exc.outcome, started, time.time(),
            forced_outcome=OUTCOME_INTERRUPTED, cache_attached=False,
        ))
        print("compare interrupted", file=sys.stderr)
        return 130
    _ledger_append(sweep_record(
        "compare", "platforms", outcome, started, time.time(),
        cache_attached=False,
    ))
    rows = []
    baseline = None
    for record in outcome:
        if not record.ok:
            print(f"error: {record.label}: {record.error}", file=sys.stderr)
            return 1
        result = record.simulation_result()
        if record.label == "nvp":
            baseline = result.forward_progress
        rows.append(
            [
                record.label,
                result.forward_progress,
                result.backups,
                result.rollbacks,
                f"{result.on_time_fraction:.1%}",
            ]
        )
    print(f"trace: {trace}\n")
    print(format_table(["platform", "FP", "backups", "rollbacks", "on-time"], rows))
    if baseline:
        for row in rows:
            if row[0] == "wait" and row[1]:
                print(f"\nnvp / wait-compute = {baseline / row[1]:.2f}x")
    return 0


def cmd_sweep(args) -> int:
    """Run a declarative experiment spec through the sweep engine."""
    from repro.exp import (
        ExperimentSpec,
        ResultCache,
        SweepInterrupted,
        SweepRunner,
        render_outcome,
        write_results,
    )
    from repro.obs import EventBus
    from repro.obs import events as ev
    from repro.obs.ledger import OUTCOME_INTERRUPTED, sweep_record

    try:
        spec = ExperimentSpec.from_file(args.spec)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot load spec: {exc}")

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir)
        if args.fresh:
            removed = cache.clear()
            print(f"cache   : cleared {removed} entr(y/ies) "
                  f"from {cache.directory}")

    bus = EventBus()
    monitor = None
    if args.live:
        from repro.obs import SweepMonitor

        # In-place redraw on a TTY; one plain progress line per point
        # when stdout is piped (CI logs stay readable).
        monitor = SweepMonitor().attach(bus)
    if not args.quiet and monitor is None:
        def _progress(event) -> None:
            data = event.data
            if event.name == ev.SWEEP_BEGIN:
                print(f"sweep   : {spec.name} — {data['total']} point(s), "
                      f"{data['cached']} cached, jobs={data['jobs']}")
                return
            status = data["status"]
            line = (f"[{data['index'] + 1:>3}/{data['total']}] "
                    f"{status:<6} {data['label']}")
            if status == "failed":
                line += f" — {data.get('error', '?').splitlines()[-1]}"
            else:
                line += (f" FP={data.get('forward_progress')} "
                         f"({data['wall_s']:.2f}s)")
            print(line)

        bus.subscribe(_progress, names=(ev.SWEEP_BEGIN, ev.SWEEP_POINT))

    tracer = None
    if args.trace:
        from repro.obs import SpanTracer

        tracer = SpanTracer()

    try:
        configs = spec.expand()
    except ValueError as exc:
        raise SystemExit(f"error: bad spec: {exc}")
    try:
        runner = SweepRunner(
            jobs=args.jobs, cache=cache, timeout_s=args.timeout, bus=bus,
            tracer=tracer,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    started = time.time()
    interrupted = False
    try:
        outcome = runner.run(configs)
    except SweepInterrupted as exc:
        outcome = exc.outcome
        interrupted = True
    record = sweep_record(
        "sweep", spec.name, outcome, started, time.time(),
        forced_outcome=OUTCOME_INTERRUPTED if interrupted else None,
    )
    ledger_id = _ledger_append(record)
    print()
    print(render_outcome(outcome))
    if ledger_id:
        print(f"ledger  : {ledger_id} ({record['outcome']})")
    if interrupted:
        print("sweep interrupted — partial accounting above",
              file=sys.stderr)
        return 130
    if args.results_dir:
        try:
            if tracer is not None:
                with tracer.span("fold", points=len(outcome.records)):
                    path = write_results(spec, outcome, args.results_dir)
            else:
                path = write_results(spec, outcome, args.results_dir)
        except OSError as exc:
            raise SystemExit(f"error: cannot write results: {exc}")
        print(f"results : {path}")
    if tracer is not None:
        try:
            count = tracer.write_chrome(
                args.trace, process_name=f"repro sweep {spec.name}"
            )
        except OSError as exc:
            raise SystemExit(f"error: cannot write trace: {exc}")
        print(f"trace   : {args.trace} ({count} trace events)")
    return 1 if outcome.failed else 0


def cmd_fleet_run(args) -> int:
    """Run a fleet spec through the batched lockstep kernel.

    Also backs ``repro fleet watch`` (``args.watch``), which attaches
    the live :class:`~repro.obs.summary.FleetMonitor` dashboard and
    always samples telemetry.
    """
    import argparse
    import json

    from repro.exp import ResultCache
    from repro.fleet import (
        FleetSpec,
        FleetTelemetry,
        fleet_summary,
        render_fleet_summary,
        replay_device,
        run_fleet,
        write_fleet_results,
    )
    from repro.obs import EventBus
    from repro.obs import events as ev
    from repro.obs.ledger import OUTCOME_INTERRUPTED, sweep_record

    watch = bool(getattr(args, "watch", False))
    command = "fleet-watch" if watch else "fleet"
    try:
        spec = FleetSpec.from_file(args.spec)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot load fleet spec: {exc}")
    try:
        configs = spec.devices()
    except ValueError as exc:
        raise SystemExit(f"error: bad fleet spec: {exc}")

    # Telemetry is on when asked for (flags or spec cadence) and
    # always under `watch` — the dashboard feeds on fleet.sample.
    every_s = args.telemetry_every
    if every_s is None:
        every_s = spec.telemetry_every_s
    telemetry = None
    if watch or args.telemetry_out is not None or every_s is not None:
        try:
            telemetry = FleetTelemetry(
                every_s=every_s, out=args.telemetry_out
            )
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir)
        if args.fresh:
            removed = cache.clear()
            print(f"cache   : cleared {removed} entr(y/ies) "
                  f"from {cache.directory}")

    bus = EventBus()
    if watch:
        from repro.obs.summary import FleetMonitor

        FleetMonitor().attach(bus)
    elif not args.quiet and not args.json:
        def _progress(event) -> None:
            data = event.data
            if event.name == ev.FLEET_BEGIN:
                print(f"fleet   : {spec.name} — {data['devices']} device(s) "
                      f"in lockstep (dt={data['dt_s'] * 1e3:.3g}ms)")
            else:
                print(f"fleet   : advanced {data['ticks']} tick(s)")

        bus.subscribe(_progress, names=(ev.FLEET_BEGIN, ev.FLEET_END))

    started = time.time()
    try:
        outcome = run_fleet(configs, cache=cache, bus=bus,
                            telemetry=telemetry)
    except KeyboardInterrupt:
        from repro.exp.runner import SweepOutcome

        _ledger_append(sweep_record(
            command, spec.name, SweepOutcome(), started, time.time(),
            forced_outcome=OUTCOME_INTERRUPTED, n_devices=len(configs),
            telemetry=(
                telemetry.summary() if telemetry is not None else None
            ),
        ))
        raise
    telemetry_summary = (
        telemetry.summary() if telemetry is not None else None
    )
    record = sweep_record(
        command, spec.name, outcome, started, time.time(),
        n_devices=len(configs), telemetry=telemetry_summary,
    )
    ledger_id = _ledger_append(record)
    summary = fleet_summary(outcome)
    if telemetry_summary is not None:
        summary["telemetry"] = telemetry_summary
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print()
        print(render_fleet_summary(summary, title=f"fleet {spec.name}"))
        print(f"cache   : {outcome.cached} hit(s), "
              f"{outcome.executed} executed ({outcome.wall_s:.2f}s)")
        if telemetry is not None:
            if telemetry.snapshots:
                line = (f"telemetry: {telemetry.snapshots} snapshot(s) "
                        f"every {telemetry.every_s:.4g}s")
                if telemetry.out:
                    line += f" -> {telemetry.out}"
            else:
                # Telemetry samples the lockstep kernel; a fully
                # cached fleet never runs it.
                line = "telemetry: 0 snapshot(s) (all devices cached)"
            print(line)
        if ledger_id:
            print(f"ledger  : {ledger_id} ({record['outcome']})")
    if args.results_dir:
        try:
            path = write_fleet_results(
                spec, outcome, args.results_dir, command=command,
                telemetry=telemetry_summary,
            )
        except OSError as exc:
            raise SystemExit(f"error: cannot write results: {exc}")
        if not args.json:
            print(f"results : {path}")
    if args.replay_device is not None:
        index = args.replay_device
        if not 0 <= index < len(configs):
            raise SystemExit(
                f"error: --replay-device {index} out of range "
                f"(fleet has {len(configs)} devices)"
            )
        # Drill down: re-run one device through the single-device
        # engine with full observability.  Exact by construction —
        # fleet results are bit-identical to the single engine.
        from repro.obs import RunManifest

        replay_args = argparse.Namespace(
            trace=None, events=args.events, metrics=args.metrics,
            manifest=args.manifest,
        )
        rbus, rlog, rmetrics = _make_observability(replay_args)
        result, _ = replay_device(
            configs[index], bus=rbus, metrics=rmetrics
        )
        identical = result.to_dict() == outcome.records[index].result
        if not args.json:
            print(f"replay  : device {index} — {result.summary()}")
            print(f"replay  : fleet result "
                  f"{'bit-identical' if identical else 'MISMATCH'}")
        manifest = None
        if args.manifest:
            manifest = RunManifest.collect(
                command=f"fleet-replay:{spec.name}",
                config=dict(configs[index]),
                n_devices=len(configs),
                device_index=index,
            )
        _write_observability(replay_args, rlog, rmetrics, manifest)
        if not identical:
            return 1
    return 1 if outcome.failed else 0


def cmd_fleet_correlate(args) -> int:
    """Outage-correlation analysis of a fleet spec (no simulation)."""
    import json

    from repro.fleet import FleetSpec, correlation_report, render_correlation

    try:
        spec = FleetSpec.from_file(args.spec)
        configs = spec.devices()
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot load fleet spec: {exc}")
    try:
        report = correlation_report(
            configs,
            window_s=args.window,
            threshold_w=args.threshold,
            storm_fraction=args.storm_fraction,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    if args.out:
        try:
            with open(args.out, "w") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            raise SystemExit(f"error: cannot write report: {exc}")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_correlation(report))
        if args.out:
            print(f"report  : {args.out}")
    return 0


def cmd_bench_report(args) -> int:
    """Diff the benchmark history against a baseline and gate regressions."""
    from repro.obs.history import build_report, read_history

    if not read_history(args.history):
        print(f"error: no benchmark history at {args.history}", file=sys.stderr)
        return 2
    try:
        report = build_report(
            args.history,
            baseline_path=args.baseline,
            max_regression=args.max_regression,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    text = report.to_markdown()
    try:
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text)
                if not text.endswith("\n"):
                    handle.write("\n")
            print(f"report  : {args.out}", file=sys.stderr)
        if args.html:
            with open(args.html, "w") as handle:
                handle.write(report.to_html())
            print(f"html    : {args.html}", file=sys.stderr)
        if args.json:
            with open(args.json, "w") as handle:
                handle.write(report.to_json())
            print(f"json    : {args.json}", file=sys.stderr)
    except OSError as exc:
        raise SystemExit(f"error: cannot write report: {exc}")
    print(text)
    if not report.passed:
        for experiment, delta in report.regressions:
            print(
                f"REGRESSION: {experiment}: {delta.metric} "
                f"{delta.baseline:.6g} -> {delta.latest:.6g} "
                f"({delta.change:+.1%})",
                file=sys.stderr,
            )
        return 1
    return 0


def _parse_when(value: Optional[str]) -> Optional[float]:
    """``--since``/``--until`` values: unix seconds or local dates."""
    if value is None:
        return None
    try:
        return float(value)
    except ValueError:
        pass
    for fmt in ("%Y-%m-%d %H:%M:%S", "%Y-%m-%d %H:%M", "%Y-%m-%d"):
        try:
            return time.mktime(time.strptime(value, fmt))
        except ValueError:
            continue
    raise SystemExit(
        f"error: cannot parse time {value!r} "
        "(use unix seconds or YYYY-MM-DD [HH:MM[:SS]])"
    )


def _runs_ledger(args):
    """The ledger the ``runs`` subcommands operate on (or exit 2)."""
    from repro.obs.ledger import RunLedger, default_ledger_path

    path = args.ledger or default_ledger_path()
    if not path:
        print("error: the run ledger is disabled (REPRO_LEDGER_DIR "
              "is empty); pass --ledger PATH", file=sys.stderr)
        raise SystemExit(2)
    return RunLedger(path)


def _when(started_unix) -> str:
    try:
        return time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(float(started_unix))
        )
    except (TypeError, ValueError, OverflowError):
        return "?"


def cmd_runs_list(args) -> int:
    """Tabulate (or dump) matching ledger records, oldest first."""
    import json

    ledger = _runs_ledger(args)
    records = ledger.records(
        command=args.command_filter,
        experiment=args.experiment,
        outcome=args.outcome,
        spec=args.spec,
        since=_parse_when(args.since),
        until=_parse_when(args.until),
        devices_min=args.devices_min,
    )
    if args.limit and args.limit > 0:
        records = records[-args.limit:]
    if args.json:
        print(json.dumps(records, indent=2))
        return 0
    if not records:
        print(f"no matching ledger records in {ledger.path}")
        return 0
    rows = []
    for record in records:
        points = record.get("points") or {}
        cache = record.get("cache") or {}
        resources = record.get("resources") or {}
        hit_rate = cache.get("hit_rate")
        rows.append([
            record.get("id", "?"),
            _when(record.get("started_unix")),
            record.get("command", "?"),
            record.get("experiment") or "—",
            record.get("outcome", "?"),
            points.get("total", "—"),
            record.get("n_devices") or "—",
            "—" if hit_rate is None else f"{hit_rate:.0%}",
            f"{record.get('wall_s', 0.0):.2f}",
            f"{resources.get('cpu_s', 0.0):.2f}",
        ])
    print(format_table(
        ["id", "started", "command", "experiment", "outcome",
         "points", "devices", "hit", "wall s", "cpu s"],
        rows,
    ))
    return 0


def _find_record(ledger, id_prefix: str):
    try:
        return ledger.find(id_prefix)
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"error: {exc.args[0]}")


def cmd_runs_show(args) -> int:
    """Render one ledger record in full."""
    import json

    ledger = _runs_ledger(args)
    record = _find_record(ledger, args.id)
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    points = record.get("points") or {}
    cache = record.get("cache") or {}
    resources = record.get("resources") or {}
    print(f"id          : {record.get('id')}")
    print(f"command     : {record.get('command')}")
    print(f"experiment  : {record.get('experiment') or '—'}")
    print(f"outcome     : {record.get('outcome')}")
    print(f"started     : {_when(record.get('started_unix'))}")
    print(f"wall        : {record.get('wall_s', 0.0):.2f} s")
    print(f"spec hash   : {record.get('spec_hash') or '—'}")
    if record.get("n_devices") is not None:
        print(f"devices     : {record['n_devices']}")
    print(f"code version: {record.get('code_version')} "
          f"(git {str(record.get('git_sha', ''))[:12]})")
    if points:
        print(f"points      : {points.get('total')} total — "
              f"{points.get('executed')} executed, "
              f"{points.get('cached')} cached, "
              f"{points.get('failed')} failed, "
              f"{points.get('interrupted', 0)} interrupted")
    if cache:
        print(f"cache       : {cache.get('hits')} hit(s), "
              f"{cache.get('misses')} miss(es) "
              f"({cache.get('hit_rate', 0.0):.0%} hit rate)")
    if resources:
        print(f"resources   : cpu {resources.get('cpu_s', 0.0):.2f} s, "
              f"peak rss {resources.get('peak_rss_kb', 0.0):.0f} KB, "
              f"{resources.get('workers', 0)} worker(s)")
    telemetry = record.get("telemetry") or {}
    if telemetry:
        line = f"telemetry   : {telemetry.get('snapshots', 0)} snapshot(s)"
        if telemetry.get("every_s"):
            line += f" every {telemetry['every_s']:.4g} s"
        if telemetry.get("out"):
            line += f" -> {telemetry['out']}"
        print(line)
    if record.get("error"):
        first_line = str(record["error"]).strip().splitlines()
        print(f"error       : {first_line[-1] if first_line else '?'}")
    runs = record.get("runs") or []
    if runs:
        print()
        rows = [
            [
                run.get("label", "?"),
                run.get("status", "?"),
                f"{run.get('wall_s') or 0.0:.2f}",
                f"{run.get('cpu_s') or 0.0:.2f}",
                f"{run.get('peak_rss_kb') or 0.0:.0f}",
                run.get("pid") if run.get("pid") is not None else "—",
            ]
            for run in runs
        ]
        print(format_table(
            ["point", "status", "wall s", "cpu s", "rss KB", "pid"], rows
        ))
    return 0


def cmd_runs_diff(args) -> int:
    """Compare two ledger records (cache hits, wall, resources)."""
    import json

    from repro.obs.ledger import diff_records, format_diff

    ledger = _runs_ledger(args)
    a = _find_record(ledger, args.a)
    b = _find_record(ledger, args.b)
    diff = diff_records(a, b)
    if args.json:
        print(json.dumps(diff, indent=2, sort_keys=True))
        return 0
    print(format_diff(diff))
    return 0


def cmd_runs_gc(args) -> int:
    """Prune ledger records whose cached results were all evicted."""
    ledger = _runs_ledger(args)
    kept, pruned = ledger.gc(
        cache_root=args.cache_dir, dry_run=args.dry_run
    )
    verb = "would prune" if args.dry_run else "pruned"
    print(f"ledger  : {verb} {pruned} record(s), kept {kept} "
          f"({ledger.path})")
    return 0


def cmd_outages(args) -> int:
    trace = _make_trace(args)
    stats = analyze_outages(trace, DEFAULT_THRESHOLD_W)
    print(f"trace          : {trace}")
    print(f"threshold      : {DEFAULT_THRESHOLD_W * 1e6:.0f} uW")
    print(f"outages        : {stats.count} "
          f"({stats.emergencies_per_second(trace.duration_s):.0f}/s)")
    print(f"mean duration  : {stats.mean_duration_s * 1e3:.2f} ms")
    print(f"max duration   : {stats.max_duration_s * 1e3:.1f} ms")
    print(f"supply duty    : {stats.duty_cycle:.1%}")
    return 0


def cmd_kernels(args) -> int:
    if not args.verify:
        for name in sorted(KERNELS):
            print(name)
        return 0
    from repro.isa.cpu import CPU

    failures = 0
    for name in sorted(KERNELS):
        build = build_kernel(name)
        cpu = CPU(build.program.instructions)
        cpu.memory.load_image(build.program.data_image)
        cpu.run(max_instructions=20_000_000)
        outputs = np.array(cpu.memory.output, dtype=np.uint16)
        ok = cpu.state.halted and np.array_equal(outputs, build.expected_output)
        print(f"{name:12s} {'OK' if ok else 'FAIL'} "
              f"({cpu.instructions_retired} instructions)")
        failures += 0 if ok else 1
    return 1 if failures else 0


def cmd_compile(args) -> int:
    with open(args.file) as handle:
        source = handle.read()
    from repro.lang.codegen import compile_source
    from repro.lang.lint import lint as lint_program

    compiled = compile_source(source, optimize=args.optimize)
    warnings = lint_program(source)
    if args.emit_asm:
        print(compiled.asm)
    else:
        print(
            f"compiled {args.file}: {len(compiled.program.instructions)} "
            f"instructions, {len(compiled.program.data_image)} data words"
        )
    for warning in warnings:
        print(
            f"lint: {warning.function}:{warning.line}: global "
            f"{warning.name!r} is {warning.kind} — not replay-idempotent "
            "on an NVP"
        )
    if args.run:
        from repro.isa.cpu import CPU

        cpu = CPU(compiled.program.instructions)
        cpu.memory.load_image(compiled.program.data_image)
        cpu.run(max_instructions=args.max_instructions)
        status = "halted" if cpu.state.halted else "BUDGET EXCEEDED"
        print(f"run: {cpu.instructions_retired} instructions, {status}")
        print(f"outputs: {cpu.memory.output}")
    return 0


def cmd_profile(args) -> int:
    from repro.analysis.profiler import profile_program

    if args.kernel:
        build = build_kernel(args.kernel)
        program = build.program
        label = args.kernel
    else:
        if not args.file:
            print("profile: need --kernel or --file", file=sys.stderr)
            return 2
        from repro.lang.codegen import compile_source

        with open(args.file) as handle:
            program = compile_source(handle.read()).program
        label = args.file
    metrics = None
    if args.metrics:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
    profile = profile_program(
        program,
        max_instructions=args.max_instructions,
        metrics=metrics,
        label=label,
    )
    print(f"profile of {label}:")
    print(profile.report(top=args.top))
    if metrics is not None:
        from repro.obs import write_metrics_csv

        count = write_metrics_csv(metrics, args.metrics)
        print(f"metrics : {args.metrics} ({count} series rows)")
    return 0


def cmd_techs(args) -> int:
    del args
    rows = []
    for tech in TECHNOLOGIES:
        rows.append(
            [
                tech.name,
                tech.write_energy_j_per_bit * 1e12,
                tech.wakeup_time_s * 1e6,
                f"{tech.endurance_cycles:.1g}",
                tech.backup_energy_j(DEFAULT_STATE_BITS) * 1e12,
            ]
        )
    print(format_table(
        ["technology", "write pJ/bit", "wakeup us", "endurance", "backup pJ"], rows
    ))
    return 0


def _add_trace_arguments(parser) -> None:
    parser.add_argument(
        "--source",
        choices=sorted(SOURCE_GENERATORS) + ["hybrid"],
        default="wristwatch",
        help="harvesting source class",
    )
    parser.add_argument("--duration", type=float, default=5.0,
                        help="simulated seconds")
    parser.add_argument("--seed", type=int, default=7, help="trace RNG seed")
    parser.add_argument("--mean-uw", type=float, default=None,
                        help="rescale the trace to this mean power (uW)")


def _add_export_arguments(parser) -> None:
    parser.add_argument("--trace", default=None, metavar="OUT.json",
                        help="write a Chrome trace-event JSON "
                             "(open in Perfetto / chrome://tracing)")
    parser.add_argument("--events", default=None, metavar="OUT.jsonl",
                        help="write the raw event log as JSON lines")
    parser.add_argument("--metrics", default=None, metavar="OUT.csv",
                        help="write the metrics registry as CSV")
    parser.add_argument("--manifest", default=None, metavar="OUT.json",
                        help="write a reproducibility manifest "
                             "(seed, config, git SHA, durations)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="nvpsim: nonvolatile-processor simulation framework",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser(
        "simulate", aliases=["run"], help="run one platform on one trace"
    )
    _add_trace_arguments(p_sim)
    p_sim.add_argument("--platform", choices=sorted(PLATFORM_BUILDERS),
                       default="nvp")
    p_sim.add_argument("--kernel", choices=sorted(KERNELS), default=None,
                       help="run a real NV16 kernel instead of the abstract mix")
    p_sim.add_argument("--frames", type=int, default=5,
                       help="frames for --kernel workloads")
    p_sim.add_argument("--json", action="store_true",
                       help="emit the full result as JSON")
    p_sim.add_argument("--no-fast-forward", action="store_true",
                       help="force exact per-tick execution "
                            "(disable the steady-state fast path)")
    p_sim.add_argument("--no-exact-batch", action="store_true",
                       help="disable the batched active-tick exact "
                            "kernel (scalar interpreter only)")
    p_sim.add_argument("--no-block-engine", action="store_true",
                       help="execute NV16 kernels instruction by "
                            "instruction through CPU.step (disable the "
                            "block-compiled execution engine)")
    p_sim.add_argument("--sample-stride", type=int, default=0, metavar="N",
                       help="emit a sim.sample event every N ticks "
                            "(0 = off; synthesized on the fast path)")
    p_sim.add_argument("--profile", action="store_true",
                       help="run under cProfile and print the top-20 "
                            "cumulative entries")
    p_sim.add_argument("--profile-out", default=None, metavar="OUT.pstats",
                       help="also dump the full cProfile stats "
                            "(implies --profile; inspect with pstats/snakeviz)")
    _add_export_arguments(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_obs = sub.add_parser(
        "observe",
        help="run one platform fully instrumented and summarise its events",
    )
    _add_trace_arguments(p_obs)
    p_obs.add_argument("--platform", choices=sorted(PLATFORM_BUILDERS),
                       default="nvp")
    p_obs.add_argument("--kernel", choices=sorted(KERNELS), default=None,
                       help="run a real NV16 kernel instead of the abstract mix")
    p_obs.add_argument("--frames", type=int, default=5,
                       help="frames for --kernel workloads")
    p_obs.add_argument("--interval", type=float, default=None,
                       help="print a progress line every N simulated seconds")
    _add_export_arguments(p_obs)
    p_obs.set_defaults(func=cmd_observe)

    p_cmp = sub.add_parser("compare", help="compare all platforms on one trace")
    _add_trace_arguments(p_cmp)
    p_cmp.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = in-process serial)")
    p_cmp.set_defaults(func=cmd_compare)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a declarative experiment spec (parallel, cached, resumable)",
    )
    p_sweep.add_argument("spec", help="experiment spec JSON file "
                                      "(see docs/experiments.md)")
    p_sweep.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1 = in-process serial)")
    p_sweep.add_argument("--timeout", type=float, default=None,
                         help="per-run wall-clock budget in seconds")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="execute every point, read/write no cache")
    p_sweep.add_argument("--fresh", action="store_true",
                         help="clear the cache namespace before running")
    p_sweep.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache root (default: $REPRO_CACHE_DIR "
                              "or .repro-cache)")
    p_sweep.add_argument("--results-dir", default=None, metavar="DIR",
                         help="also write a benchmarks-results JSON here")
    p_sweep.add_argument("--quiet", action="store_true",
                         help="suppress live per-point progress")
    p_sweep.add_argument("--live", action="store_true",
                         help="in-place progress view (done/total, ETA, "
                              "cache-hit rate, worker utilization); "
                              "falls back to plain progress lines when "
                              "stdout is not a TTY")
    p_sweep.add_argument("--trace", default=None, metavar="OUT.json",
                         help="write a Chrome trace of the sweep timeline "
                              "(per-worker spans with cache-hit "
                              "attribution; open in Perfetto)")
    p_sweep.set_defaults(func=cmd_sweep)

    p_fleet = sub.add_parser(
        "fleet",
        help="batched lockstep simulation of device populations",
    )
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)

    def _fleet_common(parser) -> None:
        parser.add_argument("spec", help="fleet spec JSON file "
                                         "(see docs/fleet.md)")
        parser.add_argument("--no-cache", action="store_true",
                            help="simulate every device, read/write no "
                                 "cache")
        parser.add_argument("--fresh", action="store_true",
                            help="clear the cache namespace before running")
        parser.add_argument("--cache-dir", default=None, metavar="DIR",
                            help="cache root (default: $REPRO_CACHE_DIR "
                                 "or .repro-cache)")
        parser.add_argument("--results-dir", default=None, metavar="DIR",
                            help="also write a benchmarks-results JSON here")
        parser.add_argument("--telemetry-out", default=None,
                            metavar="OUT.jsonl",
                            help="append population telemetry snapshots "
                                 "here (JSONL; a Prometheus textfile "
                                 "sibling OUT.jsonl.prom tracks the "
                                 "latest snapshot)")
        parser.add_argument("--telemetry-every", type=float, default=None,
                            metavar="SECONDS",
                            help="telemetry sampling cadence in simulated "
                                 "seconds (default: the spec's "
                                 "telemetry_every_s, else ~50 samples "
                                 "across the longest device)")

    p_fleet_run = fleet_sub.add_parser(
        "run",
        help="advance a fleet spec through the vectorized kernel",
    )
    _fleet_common(p_fleet_run)
    p_fleet_run.add_argument("--quiet", action="store_true",
                             help="suppress fleet progress lines")
    p_fleet_run.add_argument("--json", action="store_true",
                             help="print the fleet summary as JSON")
    p_fleet_run.add_argument("--replay-device", type=int, default=None,
                             metavar="INDEX",
                             help="after the fleet run, re-run one device "
                                  "through the single-device engine "
                                  "(bit-identical) with full observability")
    p_fleet_run.add_argument("--events", default=None, metavar="OUT.jsonl",
                             help="with --replay-device: write the "
                                  "device's event stream here")
    p_fleet_run.add_argument("--metrics", default=None, metavar="OUT.csv",
                             help="with --replay-device: write the "
                                  "device's metrics here")
    p_fleet_run.add_argument("--manifest", default=None, metavar="OUT.json",
                             help="with --replay-device: write a run "
                                  "manifest (stamped with n_devices) here")
    p_fleet_run.set_defaults(func=cmd_fleet_run, watch=False)

    p_fleet_watch = fleet_sub.add_parser(
        "watch",
        help="run a fleet with the live population dashboard "
             "(in-place on a TTY, line-buffered when piped)",
    )
    _fleet_common(p_fleet_watch)
    p_fleet_watch.set_defaults(
        func=cmd_fleet_run, watch=True, quiet=False, json=False,
        replay_device=None, events=None, metrics=None, manifest=None,
    )

    p_fleet_corr = fleet_sub.add_parser(
        "correlate",
        help="cross-device outage correlation from the traces alone "
             "(no simulation)",
    )
    p_fleet_corr.add_argument("spec", help="fleet spec JSON file")
    p_fleet_corr.add_argument("--window", type=float, default=None,
                              metavar="SECONDS",
                              help="co-outage window size (default: "
                                   "~1%% of the longest device trace)")
    p_fleet_corr.add_argument("--threshold", type=float,
                              default=DEFAULT_THRESHOLD_W, metavar="W",
                              help="outage power threshold in watts "
                                   "(default: %(default)s)")
    p_fleet_corr.add_argument("--storm-fraction", type=float, default=0.5,
                              metavar="FRAC",
                              help="fleet outage fraction that counts as "
                                   "a storm (default: %(default)s)")
    p_fleet_corr.add_argument("--json", action="store_true",
                              help="print the correlation report as JSON")
    p_fleet_corr.add_argument("--out", default=None, metavar="OUT.json",
                              help="also write the report here")
    p_fleet_corr.set_defaults(func=cmd_fleet_correlate)

    p_bench = sub.add_parser(
        "bench-report",
        help="diff benchmark history against a baseline and gate regressions",
    )
    p_bench.add_argument(
        "--history",
        default=DEFAULT_HISTORY_PATH,
        metavar="HISTORY.jsonl",
        help="benchmark history to report on "
             f"(default: {DEFAULT_HISTORY_PATH})",
    )
    p_bench.add_argument(
        "--baseline", default=None, metavar="BASELINE.jsonl",
        help="baseline history file (default: the previous record of "
             "each experiment in --history)",
    )
    p_bench.add_argument(
        "--max-regression", type=float, default=DEFAULT_MAX_REGRESSION,
        metavar="FRAC",
        help="fail when a gated (throughput/speedup) metric drops by "
             "more than this fraction (default: %(default)s)",
    )
    p_bench.add_argument("--out", default=None, metavar="OUT.md",
                         help="also write the markdown report here")
    p_bench.add_argument("--html", default=None, metavar="OUT.html",
                         help="also write an HTML report here")
    p_bench.add_argument("--json", default=None, metavar="OUT.json",
                         help="also write the machine-readable report "
                              "here (CI artifact)")
    p_bench.set_defaults(func=cmd_bench_report)

    p_runs = sub.add_parser(
        "runs",
        help="query the run ledger (what ran, when, at what cost)",
    )
    p_runs.add_argument("--ledger", default=None, metavar="LEDGER.jsonl",
                        help="ledger file (default: $REPRO_LEDGER_DIR or "
                             "the cache dir + /ledger.jsonl)")
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)

    p_runs_list = runs_sub.add_parser("list", help="tabulate ledger records")
    p_runs_list.add_argument("--command", dest="command_filter",
                             default=None, metavar="CMD",
                             help="exact command filter (sweep, simulate, "
                                  "compare, bench:<name>, ...)")
    p_runs_list.add_argument("--experiment", default=None,
                             help="exact experiment/spec name filter")
    p_runs_list.add_argument("--outcome", default=None,
                             choices=["ok", "error", "timeout",
                                      "interrupted"],
                             help="outcome filter")
    p_runs_list.add_argument("--spec", default=None, metavar="HASHPREFIX",
                             help="spec-hash prefix filter")
    p_runs_list.add_argument("--since", default=None, metavar="WHEN",
                             help="records started at/after WHEN "
                                  "(unix seconds or YYYY-MM-DD)")
    p_runs_list.add_argument("--until", default=None, metavar="WHEN",
                             help="records started at/before WHEN")
    p_runs_list.add_argument("--devices-min", dest="devices_min", type=int,
                             default=None, metavar="N",
                             help="only records with at least N devices "
                                  "(fleet runs)")
    p_runs_list.add_argument("--limit", type=int, default=None, metavar="N",
                             help="only the newest N matches")
    p_runs_list.add_argument("--json", action="store_true",
                             help="dump matching records as JSON")
    p_runs_list.set_defaults(func=cmd_runs_list)

    p_runs_show = runs_sub.add_parser(
        "show", help="render one ledger record in full"
    )
    p_runs_show.add_argument("id", help="record id (unique prefix ok)")
    p_runs_show.add_argument("--json", action="store_true",
                             help="dump the record as JSON")
    p_runs_show.set_defaults(func=cmd_runs_show)

    p_runs_diff = runs_sub.add_parser(
        "diff",
        help="compare two records (points, cache hits, wall, resources)",
    )
    p_runs_diff.add_argument("a", help="baseline record id (prefix ok)")
    p_runs_diff.add_argument("b", help="comparison record id (prefix ok)")
    p_runs_diff.add_argument("--json", action="store_true",
                             help="dump the structured diff as JSON")
    p_runs_diff.set_defaults(func=cmd_runs_diff)

    p_runs_gc = runs_sub.add_parser(
        "gc",
        help="prune records whose cached results were all evicted",
    )
    p_runs_gc.add_argument("--cache-dir", default=None, metavar="DIR",
                           help="cache root to check against (default: "
                                "$REPRO_CACHE_DIR or .repro-cache)")
    p_runs_gc.add_argument("--dry-run", action="store_true",
                           help="report what would be pruned, touch "
                                "nothing")
    p_runs_gc.set_defaults(func=cmd_runs_gc)

    p_out = sub.add_parser("outages", help="outage statistics of a trace")
    _add_trace_arguments(p_out)
    p_out.set_defaults(func=cmd_outages)

    p_ker = sub.add_parser("kernels", help="list (or verify) the kernel suite")
    p_ker.add_argument("--verify", action="store_true",
                       help="execute every kernel and check its reference")
    p_ker.set_defaults(func=cmd_kernels)

    p_tech = sub.add_parser("techs", help="print the NVM technology table")
    p_tech.set_defaults(func=cmd_techs)

    p_compile = sub.add_parser(
        "compile", help="compile an NVC source file (with intermittency lint)"
    )
    p_compile.add_argument("file", help="NVC source file")
    p_compile.add_argument("--emit-asm", action="store_true",
                           help="print the generated NV16 assembly")
    p_compile.add_argument("--run", action="store_true",
                           help="execute the compiled program")
    p_compile.add_argument("-O", "--optimize", action="store_true",
                           help="constant-fold and prune dead branches")
    p_compile.add_argument("--max-instructions", type=int, default=1_000_000)
    p_compile.set_defaults(func=cmd_compile)

    p_profile = sub.add_parser(
        "profile", help="energy-profile a kernel or NVC source file"
    )
    p_profile.add_argument("--kernel", choices=sorted(KERNELS), default=None)
    p_profile.add_argument("--file", default=None, help="NVC source file")
    p_profile.add_argument("--top", type=int, default=10)
    p_profile.add_argument("--max-instructions", type=int, default=5_000_000)
    p_profile.add_argument("--metrics", default=None, metavar="OUT.csv",
                           help="write the attribution as metrics CSV")
    p_profile.set_defaults(func=cmd_profile)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Conventional SIGINT status, no traceback.  Commands that can
        # do better (sweep) catch SweepInterrupted first, write their
        # ledger record, and return 130 themselves.
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # stdout reader went away (e.g. ``repro bench-report | head``):
        # exit with the conventional SIGPIPE status, no traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
