"""Energy-band dynamic power management.

A greedy NVP drains its capacitor to just above the backup threshold
and executes there — at a low terminal voltage where the front end's
conversion efficiency is poor.  Energy-band DPM instead throttles
execution when stored energy falls below the capacitor's efficient
band, letting the voltage recover toward the converter's optimum, and
runs at full speed inside the band.  The published system-level result
is a net forward-progress gain despite executing fewer ticks at full
speed.
"""

from __future__ import annotations

from typing import Tuple

from repro.storage.capacitor import Capacitor
from repro.system.thresholds import ThresholdPlan


def efficient_band(
    capacitor: Capacitor, lo_frac: float = 0.5, hi_frac: float = 1.2
) -> Tuple[float, float]:
    """Energy band around the converter's optimal capacitor voltage.

    Args:
        capacitor: the storage capacitor (its efficiency curve defines
            the optimal voltage).
        lo_frac / hi_frac: band bounds as multiples of the energy at
            the optimal voltage, clamped to the capacitor's capacity.

    Returns:
        ``(band_lo_j, band_hi_j)``.
    """
    if not 0 < lo_frac < hi_frac:
        raise ValueError("need 0 < lo_frac < hi_frac")
    v_opt = capacitor.efficiency.v_opt_v
    e_opt = 0.5 * capacitor.capacitance_f * v_opt * v_opt
    hi = min(hi_frac * e_opt, capacitor.energy_max_j)
    lo = min(lo_frac * e_opt, hi * 0.99)
    return lo, hi


class EnergyBandGovernor:
    """Execution governor keeping stored energy in the efficient band.

    Implements the :data:`repro.core.nvp.Governor` interface: called
    each tick with the stored energy, it returns the fraction of the
    tick the core may execute.

    Args:
        band_lo_j / band_hi_j: the efficient energy band.
        slowdown: execution fraction used below the band (must stay
            positive so the system cannot stall forever under abundant
            power).
    """

    def __init__(
        self,
        band_lo_j: float,
        band_hi_j: float,
        slowdown: float = 0.2,
        bus=None,
    ) -> None:
        if band_lo_j < 0 or band_hi_j <= band_lo_j:
            raise ValueError("need 0 <= band_lo < band_hi")
        if not 0 < slowdown <= 1:
            raise ValueError("slowdown must be in (0, 1]")
        self.band_lo_j = band_lo_j
        self.band_hi_j = band_hi_j
        self.slowdown = slowdown
        self.bus = bus
        self.throttled_ticks = 0
        self.full_ticks = 0
        self._throttling = False

    @classmethod
    def for_capacitor(
        cls,
        capacitor: Capacitor,
        lo_frac: float = 0.5,
        hi_frac: float = 1.2,
        slowdown: float = 0.2,
        bus=None,
    ) -> "EnergyBandGovernor":
        """Build a governor from a capacitor's efficiency curve."""
        lo, hi = efficient_band(capacitor, lo_frac, hi_frac)
        return cls(lo, hi, slowdown, bus=bus)

    def __call__(self, energy_j: float, plan: ThresholdPlan, dt_s: float) -> float:
        del dt_s
        # Never throttle below the operational floor: the NVP must be
        # able to reach its backup threshold normally.
        floor = max(self.band_lo_j, plan.backup_threshold_j)
        throttle = energy_j < floor
        if throttle != self._throttling:
            # Decision events fire on state changes, not per tick.
            self._throttling = throttle
            if self.bus is not None:
                self.bus.emit(
                    "policy.decision",
                    policy="energy-band",
                    action="throttle" if throttle else "full-speed",
                    fraction=self.slowdown if throttle else 1.0,
                    energy_j=energy_j,
                )
        if throttle:
            self.throttled_ticks += 1
            return self.slowdown
        self.full_ticks += 1
        return 1.0
