"""Clock-frequency scaling under harvested power.

Running faster raises instantaneous power draw (more backup-threshold
crossings under weak income) but amortises static leakage over more
instructions; running slower survives weak income but wastes energy on
leakage.  The best clock is therefore income-dependent — the insight
behind Spendthrift-class frequency/resource scaling.  This module
provides the sweep harness and a trained income→frequency policy.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.harvest.traces import PowerTrace
from repro.system.result import SimulationResult


def frequency_sweep(
    frequencies_hz: Sequence[float],
    evaluate: Callable[[float], SimulationResult],
) -> List[Tuple[float, SimulationResult]]:
    """Evaluate a platform factory across clock frequencies.

    Args:
        frequencies_hz: clocks to test.
        evaluate: ``evaluate(frequency) -> SimulationResult`` — the
            caller builds the workload/platform at that clock and runs
            the simulation.

    Returns:
        ``[(frequency, result), ...]`` in the given order.
    """
    if len(frequencies_hz) == 0:
        raise ValueError("need at least one frequency")
    return [(float(f), evaluate(float(f))) for f in frequencies_hz]


def best_frequency(
    sweep: Sequence[Tuple[float, SimulationResult]],
) -> Tuple[float, SimulationResult]:
    """The sweep entry with the highest forward progress."""
    if len(sweep) == 0:
        raise ValueError("empty sweep")
    return max(sweep, key=lambda entry: entry[1].forward_progress)


class PowerAwareFrequencyPolicy:
    """Maps sampled mean income power to a recommended clock.

    Trained from per-income sweeps: for each training income level the
    winning frequency is recorded; prediction picks the entry whose
    income is nearest (log-scale) to the sample.
    """

    def __init__(self, bus=None) -> None:
        self.bus = bus
        self._incomes_w: List[float] = []
        self._frequencies_hz: List[float] = []

    @property
    def trained(self) -> bool:
        """True once at least one training point exists."""
        return len(self._incomes_w) > 0

    def add_training_point(self, income_w: float, frequency_hz: float) -> None:
        """Record that ``frequency_hz`` won at mean income ``income_w``."""
        if income_w <= 0 or frequency_hz <= 0:
            raise ValueError("income and frequency must be positive")
        self._incomes_w.append(income_w)
        self._frequencies_hz.append(frequency_hz)

    def recommend(self, income_w: float) -> float:
        """Recommended clock for a sampled mean income power.

        Raises:
            RuntimeError: if the policy has no training points.
        """
        if not self.trained:
            raise RuntimeError("policy is not trained")
        if income_w <= 0:
            raise ValueError("income must be positive")
        log_incomes = np.log(np.asarray(self._incomes_w))
        index = int(np.argmin(np.abs(log_incomes - np.log(income_w))))
        chosen = self._frequencies_hz[index]
        if self.bus is not None:
            self.bus.emit(
                "policy.decision",
                policy="freq-scale",
                income_w=income_w,
                frequency_hz=chosen,
            )
        return chosen

    def recommend_for_trace(self, trace: PowerTrace) -> float:
        """Recommended clock for a trace (uses its mean power)."""
        return self.recommend(max(trace.mean_power_w, 1e-12))

    def table(self) -> Dict[float, float]:
        """The trained income → frequency mapping."""
        return dict(zip(self._incomes_w, self._frequencies_hz))
