"""ML-based matching of NVP configuration to power profiles.

Harvested-power profiles differ enough (bursty kinetic vs smooth solar
vs packetised RF) that no single NVP configuration — clock frequency,
backup margin, capacitor size — wins everywhere.  The ICCAD'15-class
approach samples cheap statistics of the incoming power and uses a
trained model to pick the configuration; this module implements the
feature extraction and a k-nearest-neighbour matcher with a
``train_from_sweeps`` helper that labels training traces by exhaustive
evaluation.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro.harvest.outage import DEFAULT_THRESHOLD_W, analyze_outages
from repro.harvest.traces import PowerTrace

#: Names of the extracted features, in vector order.
FEATURE_NAMES = (
    "mean_w",
    "std_w",
    "p95_w",
    "duty_above_threshold",
    "outages_per_s",
    "mean_outage_s",
)


def trace_features(
    trace: PowerTrace, threshold_w: float = DEFAULT_THRESHOLD_W
) -> np.ndarray:
    """Extract the statistics vector an online power monitor can sample."""
    stats = analyze_outages(trace, threshold_w)
    samples = trace.samples_w
    return np.array(
        [
            float(samples.mean()),
            float(samples.std()),
            float(np.percentile(samples, 95)),
            stats.duty_cycle,
            stats.emergencies_per_second(trace.duration_s),
            stats.mean_duration_s,
        ]
    )


class ConfigMatcher:
    """k-NN matcher from power-profile features to configuration index.

    Args:
        k: neighbours consulted per prediction.
    """

    def __init__(self, k: int = 3, bus=None) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.bus = bus
        self._features: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    @property
    def trained(self) -> bool:
        """True once :meth:`fit` has been called."""
        return self._features is not None

    def fit(self, features: Sequence[np.ndarray], labels: Sequence[int]) -> None:
        """Store the training set (features are rescaled per dimension)."""
        if len(features) == 0 or len(features) != len(labels):
            raise ValueError("need equal, nonzero numbers of features and labels")
        matrix = np.vstack(features).astype(float)
        scale = matrix.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        self._features = matrix / scale
        self._labels = np.asarray(labels, dtype=int)

    def predict(self, features: np.ndarray) -> int:
        """Majority label among the k nearest training profiles.

        Raises:
            RuntimeError: if the matcher has not been fitted.
        """
        if self._features is None or self._labels is None or self._scale is None:
            raise RuntimeError("matcher is not trained")
        vector = np.asarray(features, dtype=float) / self._scale
        distances = np.linalg.norm(self._features - vector, axis=1)
        k = min(self.k, len(distances))
        nearest = np.argsort(distances)[:k]
        votes = np.bincount(self._labels[nearest])
        chosen = int(np.argmax(votes))
        if self.bus is not None:
            self.bus.emit(
                "policy.decision",
                policy="ml-match",
                config_index=chosen,
                neighbours=int(k),
            )
        return chosen

    def predict_trace(
        self, trace: PowerTrace, threshold_w: float = DEFAULT_THRESHOLD_W
    ) -> int:
        """Predict the configuration index for a power trace."""
        return self.predict(trace_features(trace, threshold_w))


def train_from_sweeps(
    traces: Sequence[PowerTrace],
    n_configs: int,
    evaluate: Callable[[PowerTrace, int], float],
    k: int = 3,
    threshold_w: float = DEFAULT_THRESHOLD_W,
) -> ConfigMatcher:
    """Label each training trace by exhaustive evaluation and fit a matcher.

    Args:
        traces: training power profiles.
        n_configs: size of the configuration space.
        evaluate: ``evaluate(trace, config_index) -> score`` (higher is
            better, typically forward progress).
        k: matcher neighbourhood size.
        threshold_w: operating threshold for feature extraction.
    """
    if n_configs < 1:
        raise ValueError("need at least one configuration")
    features: List[np.ndarray] = []
    labels: List[int] = []
    for trace in traces:
        scores = [evaluate(trace, index) for index in range(n_configs)]
        features.append(trace_features(trace, threshold_w))
        labels.append(int(np.argmax(scores)))
    matcher = ConfigMatcher(k=k)
    matcher.fit(features, labels)
    return matcher
