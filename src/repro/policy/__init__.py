"""System-level adaptive policies.

The tutorial's system layer covers three adaptation mechanisms built
on NVPs, each re-implemented here:

* **energy-band DPM** (:mod:`repro.policy.dpm`) — keep the storage
  capacitor inside its efficient voltage band instead of greedily
  draining it (TECS'17 class);
* **ML configuration matching** (:mod:`repro.policy.mlmatch`) — map
  sampled power-profile statistics to the best NVP configuration
  (ICCAD'15 class);
* **frequency scaling** (:mod:`repro.policy.freqscale`) — match clock
  frequency (and hence power draw) to harvested income
  (Spendthrift class).
"""

from repro.policy.dpm import EnergyBandGovernor, efficient_band
from repro.policy.mlmatch import ConfigMatcher, trace_features
from repro.policy.freqscale import (
    PowerAwareFrequencyPolicy,
    frequency_sweep,
)

__all__ = [
    "ConfigMatcher",
    "EnergyBandGovernor",
    "PowerAwareFrequencyPolicy",
    "efficient_band",
    "frequency_sweep",
    "trace_features",
]
