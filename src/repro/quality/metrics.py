"""Quality metrics used to grade approximate outputs.

NVP evaluations grade approximate results against a precise reference
with mean squared error (MSE) and peak signal-to-noise ratio (PSNR);
20–40 dB PSNR is conventionally "good".
"""

from __future__ import annotations

import math

import numpy as np


def _aligned(reference, result) -> tuple:
    ref = np.asarray(reference, dtype=float)
    res = np.asarray(result, dtype=float)
    if ref.shape != res.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {res.shape}")
    if ref.size == 0:
        raise ValueError("cannot score empty arrays")
    return ref, res


def mse(reference, result) -> float:
    """Mean squared error between a reference and a result."""
    ref, res = _aligned(reference, result)
    return float(np.mean((ref - res) ** 2))


def mae(reference, result) -> float:
    """Mean absolute error."""
    ref, res = _aligned(reference, result)
    return float(np.mean(np.abs(ref - res)))


def psnr(reference, result, max_value: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (``inf`` for identical arrays).

    Args:
        max_value: the peak representable signal value (255 for 8-bit
            imagery).
    """
    if max_value <= 0:
        raise ValueError("max_value must be positive")
    error = mse(reference, result)
    if error == 0.0:
        return math.inf
    return 10.0 * math.log10(max_value * max_value / error)


def snr_db(reference, result) -> float:
    """Signal-to-noise ratio in dB (``inf`` for identical arrays)."""
    ref, res = _aligned(reference, result)
    noise = float(np.sum((ref - res) ** 2))
    signal = float(np.sum(ref**2))
    if signal == 0.0:
        raise ValueError("reference has zero signal power")
    if noise == 0.0:
        return math.inf
    return 10.0 * math.log10(signal / noise)


def bit_accuracy(reference, result, bits: int = 16) -> float:
    """Fraction of identical bits between two integer arrays."""
    ref = np.asarray(reference, dtype=np.int64)
    res = np.asarray(result, dtype=np.int64)
    if ref.shape != res.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {res.shape}")
    if ref.size == 0:
        raise ValueError("cannot score empty arrays")
    if not 1 <= bits <= 63:
        raise ValueError("bits must be in 1..63")
    mask = (1 << bits) - 1
    diff = (ref ^ res) & mask
    wrong = sum(bin(int(d)).count("1") for d in diff.ravel())
    return 1.0 - wrong / (ref.size * bits)
