"""Output-quality metrics (MSE / PSNR / SNR) for kernel outputs."""

from repro.quality.metrics import (
    bit_accuracy,
    mae,
    mse,
    psnr,
    snr_db,
)

__all__ = ["bit_accuracy", "mae", "mse", "psnr", "snr_db"]
