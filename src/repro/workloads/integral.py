"""Integral image (summed-area table, modulo 2¹⁶).

``ii[y][x] = src[y][x] + ii[y-1][x] + ii[y][x-1] - ii[y-1][x-1]``,
computed with a running row sum.  All arithmetic wraps at 16 bits, as
it does on the real core.  Output stream: the full H×W table in
row-major order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa.memory import OUTPUT_PORT
from repro.workloads.asmkit import KernelBuild, SRC_BASE, assemble_kernel
from repro.workloads.images import test_image


def reference(src: np.ndarray) -> np.ndarray:
    """NumPy reference: row-major summed-area table, mod 65536."""
    img = np.asarray(src, dtype=np.int64)
    if img.ndim != 2:
        raise ValueError("integral needs a 2-D image")
    table = np.cumsum(np.cumsum(img, axis=0), axis=1) % 65536
    return table.astype(np.uint16).ravel()


def assembly(height: int, width: int) -> str:
    """Generate the NV16 integral-image program for an H×W frame."""
    if height < 1 or width < 1:
        raise ValueError("integral needs a non-empty frame")
    src = SRC_BASE
    dst = src + height * width
    w = width
    return f"""
; integral {height}x{width}: src@{src:#x} -> dst@{dst:#x} + output port
.data {src:#x}
src: .space {height * width}
dst: .space {height * width}
.text
main:
    li   r6, dst
    li   r1, 0            ; y
yloop:
    li   r2, 0            ; x
    li   r4, 0            ; row running sum
xloop:
    li   r5, {w}
    mul  r3, r1, r5
    add  r3, r3, r2
    addi r3, r3, src
    ld   r5, 0(r3)
    add  r4, r4, r5       ; rs += src[y][x]
    beqz r1, norow
    ld   r5, {-w}(r6)     ; ii[y-1][x]
    add  r5, r5, r4
    jmp  store
norow:
    mov  r5, r4
store:
    st   r5, 0(r6)
    li   r3, {OUTPUT_PORT}
    st   r5, 0(r3)
    inc  r6
    inc  r2
    li   r5, {w}
    blt  r2, r5, xloop
    inc  r1
    li   r5, {height}
    blt  r1, r5, yloop
    halt
"""


def build(
    image: Optional[np.ndarray] = None, size: int = 16, seed: int = 7
) -> KernelBuild:
    """Build the integral-image kernel for an image (or a synthetic one)."""
    img = test_image(size, seed) if image is None else np.asarray(image)
    height, width = img.shape
    return assemble_kernel(
        name="integral",
        source=assembly(height, width),
        data={SRC_BASE: img},
        expected_output=reference(img),
        params={"height": height, "width": width},
    )
