"""Run-length encoder.

Compresses a byte buffer into ``(value, count)`` pairs — the simplest
on-device compressor for sensor frames.  All state is register-held,
so the kernel is replay-idempotent.  Output stream: the pair sequence.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.isa.memory import OUTPUT_PORT
from repro.workloads.asmkit import KernelBuild, SRC_BASE, assemble_kernel
from repro.workloads.images import test_bytes


def reference(src: np.ndarray) -> np.ndarray:
    """Reference: flattened (value, count) pairs."""
    data = np.asarray(src, dtype=np.int64).ravel()
    if len(data) == 0:
        raise ValueError("RLE needs a non-empty buffer")
    pairs: List[int] = []
    current = int(data[0])
    count = 1
    for value in data[1:]:
        if int(value) == current:
            count += 1
        else:
            pairs.extend((current, count))
            current = int(value)
            count = 1
    pairs.extend((current, count))
    return np.array(pairs, dtype=np.uint16)


def assembly(length: int) -> str:
    """Generate the NV16 RLE program over ``length`` bytes."""
    if length < 1:
        raise ValueError("RLE needs at least one byte")
    src = SRC_BASE
    return f"""
; rle over {length} bytes at {src:#x}
.data {src:#x}
src: .space {length}
.text
main:
    li   r1, 1            ; index
    ld   r2, src(r0)      ; current value
    li   r4, 1            ; run count
loop:
    li   r3, {length}
    bge  r1, r3, flush
    ld   r5, src(r1)
    beq  r5, r2, same
    li   r6, {OUTPUT_PORT}
    st   r2, 0(r6)
    st   r4, 0(r6)
    mov  r2, r5
    li   r4, 1
    jmp  next
same:
    inc  r4
next:
    inc  r1
    jmp  loop
flush:
    li   r6, {OUTPUT_PORT}
    st   r2, 0(r6)
    st   r4, 0(r6)
    halt
"""


def build(
    data: Optional[np.ndarray] = None, length: int = 256, seed: int = 7
) -> KernelBuild:
    """Build the RLE kernel for a buffer (or a synthetic run-heavy one)."""
    buf = test_bytes(length, seed, runs=True) if data is None else np.asarray(data)
    return assemble_kernel(
        name="rle",
        source=assembly(len(buf)),
        data={SRC_BASE: buf},
        expected_output=reference(buf),
        params={"length": len(buf)},
    )
