"""3×3 morphological filters: erosion (min) and dilation (max).

The binary/greyscale morphology pair used in post-sensing cleanup
(specks removal before thresholding, blob growth before counting).
Output stream: the (H-2)×(W-2) filtered map in row-major order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa.memory import OUTPUT_PORT
from repro.workloads.asmkit import KernelBuild, SRC_BASE, assemble_kernel
from repro.workloads.images import test_image


def reference(src: np.ndarray, op: str = "erode") -> np.ndarray:
    """NumPy reference: row-major 3×3 min (erode) or max (dilate) map."""
    img = np.asarray(src, dtype=np.int64)
    if img.ndim != 2 or img.shape[0] < 3 or img.shape[1] < 3:
        raise ValueError("morphology needs a 2-D image at least 3x3")
    if op not in ("erode", "dilate"):
        raise ValueError(f"unknown morphology op {op!r}")
    height, width = img.shape
    out = np.empty((height - 2, width - 2), dtype=np.uint16)
    reducer = np.min if op == "erode" else np.max
    for y in range(1, height - 1):
        for x in range(1, width - 1):
            out[y - 1, x - 1] = int(reducer(img[y - 1 : y + 2, x - 1 : x + 2]))
    return out.ravel()


def assembly(height: int, width: int, op: str = "erode") -> str:
    """Generate the NV16 morphology program for an H×W frame."""
    if height < 3 or width < 3:
        raise ValueError("morphology needs at least a 3x3 frame")
    if op not in ("erode", "dilate"):
        raise ValueError(f"unknown morphology op {op!r}")
    src = SRC_BASE
    dst = src + height * width
    w = width
    # For erode keep the smaller value; for dilate the larger.
    keep_branch = "bleu" if op == "erode" else "bgeu"
    offsets = [-w - 1, -w, -w + 1, -1, 1, w - 1, w, w + 1]
    neighbour_lines = []
    for index, offset in enumerate(offsets):
        neighbour_lines.append(
            f"    ld   r5, {offset}(r3)\n"
            f"    {keep_branch} r4, r5, keep{index}\n"
            f"    mov  r4, r5\n"
            f"keep{index}:"
        )
    body = "\n".join(neighbour_lines)
    return f"""
; {op}3x3 {height}x{width}: src@{src:#x} -> dst@{dst:#x} + output port
.data {src:#x}
src: .space {height * width}
dst: .space {(height - 2) * (width - 2)}
.text
main:
    li   r7, dst
    li   r1, 1            ; y
yloop:
    li   r2, 1            ; x
xloop:
    li   r5, {w}
    mul  r3, r1, r5
    add  r3, r3, r2
    addi r3, r3, src      ; r3 = &src[y][x]
    ld   r4, 0(r3)        ; acc = centre
{body}
    st   r4, 0(r7)
    inc  r7
    li   r5, {OUTPUT_PORT}
    st   r4, 0(r5)
    inc  r2
    li   r5, {w - 1}
    blt  r2, r5, xloop
    inc  r1
    li   r5, {height - 1}
    blt  r1, r5, yloop
    halt
"""


def build(
    image: Optional[np.ndarray] = None,
    size: int = 12,
    op: str = "erode",
    seed: int = 7,
) -> KernelBuild:
    """Build a morphology kernel for an image (or a synthetic one)."""
    img = test_image(size, seed) if image is None else np.asarray(image)
    height, width = img.shape
    return assemble_kernel(
        name=op,
        source=assembly(height, width, op),
        data={SRC_BASE: img},
        expected_output=reference(img, op),
        params={"height": height, "width": width},
    )


def build_erode(image=None, size: int = 12, seed: int = 7) -> KernelBuild:
    """Erosion (3×3 minimum) kernel."""
    return build(image=image, size=size, op="erode", seed=seed)


def build_dilate(image=None, size: int = 12, seed: int = 7) -> KernelBuild:
    """Dilation (3×3 maximum) kernel."""
    return build(image=image, size=size, op="dilate", seed=seed)
