"""8-tap FIR low-pass filter over a 1-D sensor signal.

``y[n] = (Σ_k c[k] · x[n-k]) >> 6`` with a smooth symmetric kernel
(coefficient sum 52, so an 8-bit input cannot overflow 16 bits).
Output stream: ``N - 7`` filtered samples.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.isa.memory import OUTPUT_PORT
from repro.workloads.asmkit import KernelBuild, SRC_BASE, assemble_kernel
from repro.workloads.images import test_signal

#: Default low-pass taps (sum = 52 keeps the accumulator within 16 bits).
DEFAULT_TAPS = (1, 3, 8, 14, 14, 8, 3, 1)
SHIFT = 6


def reference(src: np.ndarray, taps: Sequence[int] = DEFAULT_TAPS) -> np.ndarray:
    """Bit-accurate reference of the fixed-point FIR."""
    signal = np.asarray(src, dtype=np.int64).ravel()
    taps = list(taps)
    n_taps = len(taps)
    if len(signal) < n_taps:
        raise ValueError("signal shorter than the filter")
    out = []
    for n in range(n_taps - 1, len(signal)):
        acc = sum(taps[k] * int(signal[n - k]) for k in range(n_taps)) & 0xFFFF
        out.append(acc >> SHIFT)
    return np.array(out, dtype=np.uint16)


def assembly(length: int, taps: Sequence[int] = DEFAULT_TAPS) -> str:
    """Generate the NV16 FIR program over ``length`` samples."""
    taps = list(taps)
    n_taps = len(taps)
    if length < n_taps:
        raise ValueError("signal shorter than the filter")
    src = SRC_BASE
    coef = src + length
    dst = coef + n_taps
    coef_words = ", ".join(str(t) for t in taps)
    return f"""
; fir {n_taps}-tap over {length} samples at {src:#x}
.data {src:#x}
src:  .space {length}
coef: .word {coef_words}
dst:  .space {length - n_taps + 1}
.text
main:
    li   r7, dst
    li   r1, {n_taps - 1}  ; n
nloop:
    li   r4, 0             ; acc
    li   r2, 0             ; k
kloop:
    mov  r3, r1
    sub  r3, r3, r2
    ld   r5, src(r3)       ; x[n-k]
    ld   r6, coef(r2)      ; c[k]
    mul  r5, r5, r6
    add  r4, r4, r5
    inc  r2
    li   r3, {n_taps}
    blt  r2, r3, kloop
    shri r4, r4, {SHIFT}
    st   r4, 0(r7)
    inc  r7
    li   r3, {OUTPUT_PORT}
    st   r4, 0(r3)
    inc  r1
    li   r3, {length}
    blt  r1, r3, nloop
    halt
"""


def build(
    data: Optional[np.ndarray] = None, length: int = 128, seed: int = 7
) -> KernelBuild:
    """Build the FIR kernel for a signal (or a synthetic one)."""
    signal = test_signal(length, seed) if data is None else np.asarray(data)
    return assemble_kernel(
        name="fir",
        source=assembly(len(signal)),
        data={SRC_BASE: signal},
        expected_output=reference(signal),
        params={"length": len(signal)},
    )
