"""Fixed-point matrix multiply (N×N, 4-bit operands).

``C = A · B`` with 4-bit unsigned operands so the 16-bit accumulator
cannot overflow for N ≤ 16.  Output stream: C in row-major order.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.isa.memory import OUTPUT_PORT
from repro.workloads.asmkit import KernelBuild, SRC_BASE, assemble_kernel


def make_operands(n: int = 8, seed: int = 7) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic pair of N×N 4-bit matrices."""
    if n < 1:
        raise ValueError("matrix size must be positive")
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 16, size=(n, n), dtype=np.int64)
    b = rng.integers(0, 16, size=(n, n), dtype=np.int64)
    return a, b


def reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference: row-major C = A·B mod 65536."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape != b.shape or a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("matmul needs two square matrices of equal size")
    return ((a @ b) % 65536).astype(np.uint16).ravel()


def assembly(n: int) -> str:
    """Generate the NV16 matmul program for N×N matrices."""
    if n < 1 or (n & (n - 1)) != 0:
        raise ValueError("matrix size must be a power of two (shift addressing)")
    shift = n.bit_length() - 1
    a_base = SRC_BASE
    b_base = a_base + n * n
    c_base = b_base + n * n
    return f"""
; matmul {n}x{n}: A@{a_base:#x}, B@{b_base:#x} -> C@{c_base:#x}
.data {a_base:#x}
mata: .space {n * n}
matb: .space {n * n}
matc: .space {n * n}
.text
main:
    li   r1, 0            ; i
iloop:
    li   r2, 0            ; j
jloop:
    li   r4, 0            ; acc
    li   r5, 0            ; k
kloop:
    shli r3, r1, {shift}
    add  r3, r3, r5
    ld   r6, mata(r3)     ; A[i][k]
    shli r3, r5, {shift}
    add  r3, r3, r2
    ld   r7, matb(r3)     ; B[k][j]
    mul  r6, r6, r7
    add  r4, r4, r6
    inc  r5
    li   r3, {n}
    blt  r5, r3, kloop
    shli r3, r1, {shift}
    add  r3, r3, r2
    st   r4, matc(r3)
    li   r3, {OUTPUT_PORT}
    st   r4, 0(r3)
    inc  r2
    li   r3, {n}
    blt  r2, r3, jloop
    inc  r1
    li   r3, {n}
    blt  r1, r3, iloop
    halt
"""


def build(
    operands: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    n: int = 8,
    seed: int = 7,
) -> KernelBuild:
    """Build the matmul kernel (synthetic operands by default)."""
    a, b = make_operands(n, seed) if operands is None else operands
    n = a.shape[0]
    return assemble_kernel(
        name="matmul",
        source=assembly(n),
        data={SRC_BASE: a, SRC_BASE + n * n: b},
        expected_output=reference(a, b),
        params={"n": n},
    )
