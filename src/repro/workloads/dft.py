"""Fixed-point DFT magnitude spectrum (the FFT-class kernel).

Spectrum analysis is the signature workload of gas-sensing and
water-quality IoT nodes.  This kernel computes an O(N²) discrete
Fourier transform with Q5 twiddle factors (scale 32) and an input
pre-shift chosen so the 16-bit accumulators cannot overflow, then
emits ``|re| + |im|`` per bin.  The Python reference reproduces the
16-bit wrap-around arithmetic bit-exactly.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.isa.memory import OUTPUT_PORT
from repro.workloads.asmkit import KernelBuild, SRC_BASE, assemble_kernel
from repro.workloads.images import test_signal

TWIDDLE_SCALE = 32


def _wrap16(value: int) -> int:
    return value & 0xFFFF


def _signed16(value: int) -> int:
    value &= 0xFFFF
    return value - 0x10000 if value & 0x8000 else value


def input_shift(n: int) -> int:
    """Smallest pre-shift keeping ``32 · (255 >> s) · N`` below 2¹⁵."""
    shift = 0
    while TWIDDLE_SCALE * (255 >> shift) * n >= 32768 and shift < 8:
        shift += 1
    return shift


def twiddle_tables(n: int) -> tuple:
    """Q5 cosine/sine tables of length N (as unsigned 16-bit words)."""
    cos_tab = [
        _wrap16(round(TWIDDLE_SCALE * math.cos(2 * math.pi * j / n)))
        for j in range(n)
    ]
    sin_tab = [
        _wrap16(round(TWIDDLE_SCALE * math.sin(2 * math.pi * j / n)))
        for j in range(n)
    ]
    return cos_tab, sin_tab


def reference(src: np.ndarray) -> np.ndarray:
    """Bit-exact reference of the fixed-point DFT magnitude spectrum."""
    signal = np.asarray(src, dtype=np.int64).ravel()
    n = len(signal)
    if n < 2 or (n & (n - 1)) != 0:
        raise ValueError("DFT length must be a power of two >= 2")
    shift = input_shift(n)
    cos_tab, sin_tab = twiddle_tables(n)
    out = []
    for k in range(n):
        re = 0
        im = 0
        for t in range(n):
            idx = (k * t) & (n - 1)
            xv = int(signal[t]) >> shift
            re = _wrap16(re + _wrap16(_signed16(cos_tab[idx]) * xv))
            im = _wrap16(im - _wrap16(_signed16(sin_tab[idx]) * xv))
        mag = abs(_signed16(re)) + abs(_signed16(im))
        out.append(_wrap16(mag))
    return np.array(out, dtype=np.uint16)


def assembly(n: int) -> str:
    """Generate the NV16 DFT program over ``n`` samples."""
    if n < 2 or (n & (n - 1)) != 0:
        raise ValueError("DFT length must be a power of two >= 2")
    shift = input_shift(n)
    cos_tab, sin_tab = twiddle_tables(n)
    src = SRC_BASE
    cos_words = ", ".join(str(v) for v in cos_tab)
    sin_words = ", ".join(str(v) for v in sin_tab)
    return f"""
; dft-{n} (Q5 twiddles, input >> {shift}) at {src:#x}
.data {src:#x}
src:    .space {n}
costab: .word {cos_words}
sintab: .word {sin_words}
.text
main:
    li   r1, 0            ; k (frequency bin)
kloop:
    li   r4, 0            ; re
    li   r6, 0            ; im
    li   r2, 0            ; n (time index)
nloop:
    mul  r3, r1, r2
    andi r3, r3, {n - 1}
    ld   r7, src(r2)
    shri r7, r7, {shift}
    ld   r5, costab(r3)
    mul  r5, r5, r7
    add  r4, r4, r5
    ld   r5, sintab(r3)
    mul  r5, r5, r7
    sub  r6, r6, r5
    inc  r2
    li   r3, {n}
    blt  r2, r3, nloop
    bge  r4, r0, re_pos
    neg  r4, r4
re_pos:
    bge  r6, r0, im_pos
    neg  r6, r6
im_pos:
    add  r4, r4, r6
    li   r3, {OUTPUT_PORT}
    st   r4, 0(r3)
    inc  r1
    li   r3, {n}
    blt  r1, r3, kloop
    halt
"""


def build(
    data: Optional[np.ndarray] = None, length: int = 32, seed: int = 7
) -> KernelBuild:
    """Build the DFT kernel for a signal (or a synthetic one)."""
    signal = test_signal(length, seed) if data is None else np.asarray(data)
    return assemble_kernel(
        name="dft",
        source=assembly(len(signal)),
        data={SRC_BASE: signal},
        expected_output=reference(signal),
        params={"length": len(signal)},
    )
