"""CRC-16/CCITT-FALSE over a byte buffer.

The canonical pattern-matching/integrity kernel: init 0xFFFF,
polynomial 0x1021, MSB-first, no reflection.  The CRC accumulates in a
register (not memory), so the kernel is fully replay-idempotent on an
NVP.  Output stream: the final 16-bit CRC (one word per frame).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa.memory import OUTPUT_PORT
from repro.workloads.asmkit import KernelBuild, SRC_BASE, assemble_kernel
from repro.workloads.images import test_bytes

POLY = 0x1021
INIT = 0xFFFF


def crc16(data) -> int:
    """Bit-accurate CRC-16/CCITT-FALSE of a byte sequence."""
    crc = INIT
    for byte in np.asarray(data, dtype=np.int64).ravel():
        crc ^= (int(byte) & 0xFF) << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def reference(src: np.ndarray) -> np.ndarray:
    """Reference output stream: the single CRC word."""
    return np.array([crc16(src)], dtype=np.uint16)


def assembly(length: int) -> str:
    """Generate the NV16 CRC-16 program over ``length`` bytes."""
    if length < 1:
        raise ValueError("CRC needs at least one byte")
    src = SRC_BASE
    return f"""
; crc16-ccitt over {length} bytes at {src:#x}
.data {src:#x}
src: .space {length}
.text
main:
    li   r1, 0            ; index
    li   r2, {INIT}       ; crc
byteloop:
    ld   r4, src(r1)
    shli r4, r4, 8
    xor  r2, r2, r4
    li   r5, 8
bitloop:
    li   r6, 0x8000
    and  r6, r2, r6
    shli r2, r2, 1
    beqz r6, nofb
    li   r6, {POLY}
    xor  r2, r2, r6
nofb:
    dec  r5
    bnez r5, bitloop
    inc  r1
    li   r3, {length}
    blt  r1, r3, byteloop
    li   r3, {OUTPUT_PORT}
    st   r2, 0(r3)
    halt
"""


def build(
    data: Optional[np.ndarray] = None, length: int = 128, seed: int = 7
) -> KernelBuild:
    """Build the CRC kernel for a byte buffer (or a synthetic one)."""
    buf = test_bytes(length, seed) if data is None else np.asarray(data)
    return assemble_kernel(
        name="crc",
        source=assembly(len(buf)),
        data={SRC_BASE: buf},
        expected_output=reference(buf),
        params={"length": len(buf)},
    )
