"""Shared helpers for NV16 kernel construction.

Kernels follow a common contract:

* all data lives in the NVM region (``0x8000+``) so it survives power
  failures — the volatile RAM segment is never used;
* every computed output value is also streamed to the MMIO output
  port, so the harness can score quality even across frame restarts
  and rollbacks;
* kernels are *replay-idempotent*: they only read their inputs and
  write their outputs, so re-executing a span of instructions after a
  rollback cannot corrupt the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.isa.assembler import Program, assemble
from repro.isa.memory import NVM_BASE, OUTPUT_PORT

#: Conventional base address for kernel inputs.
SRC_BASE = NVM_BASE  # 0x8000


@dataclass
class KernelBuild:
    """A built kernel: program + expected outputs + metadata.

    Attributes:
        name: kernel name.
        program: the assembled NV16 program.
        expected_output: the reference output stream for one frame
            (what the MMIO port should carry, as unsigned 16-bit ints).
        params: generation parameters (image size, buffer length, ...).
    """

    name: str
    program: Program
    expected_output: np.ndarray
    params: Dict[str, int] = field(default_factory=dict)


def assemble_kernel(
    name: str,
    source: str,
    data: Optional[Dict[int, np.ndarray]] = None,
    expected_output: Optional[np.ndarray] = None,
    params: Optional[Dict[str, int]] = None,
) -> KernelBuild:
    """Assemble kernel source and inject input arrays into the image.

    Args:
        name: kernel name.
        source: NV16 assembly text.
        data: mapping ``base_address -> array`` of input words to merge
            into the program's data image (values truncated to 16 bits).
        expected_output: the reference output stream.
        params: generation parameters to record.
    """
    program = assemble(source)
    if data:
        for base, array in data.items():
            flat = np.asarray(array).ravel()
            for offset, value in enumerate(flat):
                program.data_image[base + offset] = int(value) & 0xFFFF
    expected = (
        np.asarray(expected_output, dtype=np.uint16)
        if expected_output is not None
        else np.zeros(0, dtype=np.uint16)
    )
    return KernelBuild(
        name=name,
        program=program,
        expected_output=expected,
        params=dict(params or {}),
    )


def emit_output(value_reg: str, addr_reg: str) -> str:
    """Assembly snippet streaming ``value_reg`` to the output port.

    ``addr_reg`` is clobbered.
    """
    return f"    li {addr_reg}, {OUTPUT_PORT}\n    st {value_reg}, 0({addr_reg})\n"
