"""Deterministic synthetic test imagery.

Stands in for the sensor frames real prototypes capture: gradients,
geometric shapes and texture noise, so that edge detectors, median
filters and integral images all have something meaningful to chew on.
"""

from __future__ import annotations

import numpy as np


def test_image(size: int = 32, seed: int = 7, kind: str = "scene") -> np.ndarray:
    """Generate a deterministic ``size``×``size`` uint8 grayscale image.

    Args:
        size: image side length (>= 4).
        seed: RNG seed (texture noise).
        kind: ``"scene"`` (gradient + shapes + noise), ``"gradient"``,
            ``"noise"``, or ``"edges"`` (high-contrast bars).

    Raises:
        ValueError: for an unknown kind or a too-small size.
    """
    if size < 4:
        raise ValueError("image must be at least 4x4")
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:size, 0:size]

    if kind == "gradient":
        image = (xx + yy) * (255.0 / (2 * (size - 1)))
    elif kind == "noise":
        image = rng.uniform(0, 255, size=(size, size))
    elif kind == "edges":
        image = np.where((xx // max(1, size // 8)) % 2 == 0, 220.0, 30.0)
    elif kind == "scene":
        image = (xx + yy) * (200.0 / (2 * (size - 1))) + 20.0
        # A bright disc and a dark square.
        cy, cx, r = size * 0.35, size * 0.6, size * 0.18
        disc = (yy - cy) ** 2 + (xx - cx) ** 2 <= r * r
        image[disc] = 240.0
        s0, s1 = int(size * 0.6), int(size * 0.85)
        image[s0:s1, s0:s1] = 25.0
        image += rng.normal(0.0, 6.0, size=(size, size))
    else:
        raise ValueError(f"unknown image kind {kind!r}")

    return np.clip(np.round(image), 0, 255).astype(np.uint8)


def test_signal(length: int = 256, seed: int = 7) -> np.ndarray:
    """Deterministic 1-D uint8 sensor signal (two tones + noise)."""
    if length < 8:
        raise ValueError("signal must have at least 8 samples")
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    signal = (
        100.0
        + 70.0 * np.sin(2 * np.pi * t / 32.0)
        + 40.0 * np.sin(2 * np.pi * t / 7.0)
        + rng.normal(0.0, 5.0, size=length)
    )
    return np.clip(np.round(signal), 0, 255).astype(np.uint8)


def test_bytes(length: int = 256, seed: int = 7, runs: bool = True) -> np.ndarray:
    """Deterministic uint8 byte buffer (run-structured for RLE/CRC)."""
    if length < 4:
        raise ValueError("buffer must have at least 4 bytes")
    rng = np.random.default_rng(seed)
    if not runs:
        return rng.integers(0, 256, size=length, dtype=np.uint8).astype(np.uint8)
    out = np.empty(length, dtype=np.uint8)
    i = 0
    while i < length:
        run = int(rng.integers(1, 12))
        value = int(rng.integers(0, 256))
        out[i : i + run] = value
        i += run
    return out
