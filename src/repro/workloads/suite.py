"""Kernel registry and workload factories.

``KERNELS`` maps kernel names to their build functions.  Helpers turn
a :class:`~repro.workloads.asmkit.KernelBuild` into a functional
workload, measure a kernel's instruction mix by direct execution, and
derive a statistics-matched abstract twin for fast sweeps.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.isa.cpu import CPU
from repro.isa.energy import EnergyModel, InstrClass, classify
from repro.isa.memory import MemoryMap
from repro.workloads import crc, dft, fir, histogram, integral, matmul, median
from repro.workloads import morphology, rle, sobel, strsearch
from repro.workloads.asmkit import KernelBuild
from repro.workloads.base import AbstractWorkload, FunctionalWorkload

#: All registered kernels: name -> build function (keyword arguments
#: are kernel-specific; every builder accepts ``seed``).
KERNELS: Dict[str, Callable[..., KernelBuild]] = {
    "sobel": sobel.build,
    "median": median.build,
    "integral": integral.build,
    "crc": crc.build,
    "fir": fir.build,
    "histogram": histogram.build,
    "rle": rle.build,
    "matmul": matmul.build,
    "strsearch": strsearch.build,
    "dft": dft.build,
    "erode": morphology.build_erode,
    "dilate": morphology.build_dilate,
}

#: Keyword each kernel uses for its primary input array (used by the
#: streaming-workload helper; matmul is excluded — it takes a pair).
KERNEL_INPUT_KEYWORD: Dict[str, str] = {
    "sobel": "image",
    "median": "image",
    "integral": "image",
    "erode": "image",
    "dilate": "image",
    "crc": "data",
    "fir": "data",
    "histogram": "data",
    "rle": "data",
    "strsearch": "data",
    "dft": "data",
}


def build_kernel(name: str, **kwargs) -> KernelBuild:
    """Build a registered kernel by name.

    Raises:
        KeyError: for unknown kernel names.
    """
    if name not in KERNELS:
        raise KeyError(f"unknown kernel {name!r}; known: {sorted(KERNELS)}")
    return KERNELS[name](**kwargs)


def make_functional_workload(
    build: KernelBuild,
    frames: int = 1,
    energy_model: Optional[EnergyModel] = None,
) -> FunctionalWorkload:
    """Wrap a built kernel as a frame-structured functional workload."""
    return FunctionalWorkload(build.program, total_units=frames, energy_model=energy_model)


def expected_stream(build: KernelBuild, frames: int = 1) -> np.ndarray:
    """The reference MMIO output stream for ``frames`` repetitions."""
    if frames < 1:
        raise ValueError("frames must be positive")
    return np.tile(build.expected_output, frames)


def measure_kernel(
    build: KernelBuild, energy_model: Optional[EnergyModel] = None
) -> Dict[str, float]:
    """Execute one frame to completion and profile it.

    Returns a dict with ``instructions``, ``cycles``, ``energy_j``,
    ``time_s`` and per-class mix fractions under ``mix_<class>`` keys.
    """
    model = energy_model if energy_model is not None else EnergyModel()
    cpu = CPU(build.program.instructions, MemoryMap(), model)
    cpu.memory.load_image(build.program.data_image)
    class_counts: Dict[InstrClass, int] = {}
    while not cpu.state.halted:
        info = cpu.step()
        class_counts[info.instr_class] = class_counts.get(info.instr_class, 0) + 1
        if cpu.instructions_retired > 20_000_000:
            raise RuntimeError(f"kernel {build.name} did not halt")
    total = cpu.instructions_retired
    profile: Dict[str, float] = {
        "instructions": float(total),
        "cycles": float(cpu.cycles),
        "energy_j": cpu.energy_j,
        "time_s": cpu.cycles * model.cycle_time_s,
    }
    for cls, count in class_counts.items():
        profile[f"mix_{cls.value}"] = count / total
    return profile


def measured_mix(build: KernelBuild) -> Dict[InstrClass, float]:
    """Instruction-class mix of a kernel, measured by execution."""
    profile = measure_kernel(build)
    mix: Dict[InstrClass, float] = {}
    for cls in InstrClass:
        key = f"mix_{cls.value}"
        if key in profile:
            mix[cls] = profile[key]
    return mix


def make_streaming_workload(
    name: str,
    inputs,
    energy_model: Optional[EnergyModel] = None,
    **kwargs,
):
    """A functional workload fed a *different* input per frame.

    Builds the kernel once per input (all inputs must share the first
    input's shape so the program is identical) and returns
    ``(workload, expected_stream)`` where the expected stream is the
    concatenation of each frame's reference output.

    Raises:
        KeyError: for unknown kernels or kernels without a single
            input array (``matmul``).
        ValueError: for empty or shape-mismatched input lists.
    """
    if name not in KERNEL_INPUT_KEYWORD:
        raise KeyError(
            f"kernel {name!r} does not support streaming inputs; "
            f"known: {sorted(KERNEL_INPUT_KEYWORD)}"
        )
    if len(inputs) == 0:
        raise ValueError("need at least one input frame")
    keyword = KERNEL_INPUT_KEYWORD[name]
    builds = []
    first_shape = np.asarray(inputs[0]).shape
    for frame in inputs:
        if np.asarray(frame).shape != first_shape:
            raise ValueError("all streamed frames must share one shape")
        builds.append(build_kernel(name, **{keyword: np.asarray(frame)}, **kwargs))
    workload = FunctionalWorkload(
        builds[0].program,
        total_units=len(builds),
        energy_model=energy_model,
        data_images=[build.program.data_image for build in builds],
    )
    expected = np.concatenate([build.expected_output for build in builds])
    return workload, expected.astype(np.uint16)


def abstract_twin(
    build: KernelBuild,
    frames: Optional[int] = None,
    energy_model: Optional[EnergyModel] = None,
) -> AbstractWorkload:
    """An abstract workload statistically matched to a kernel.

    The twin replays the kernel's measured instruction mix and
    per-frame instruction count — the fast path for long sweeps.
    """
    profile = measure_kernel(build, energy_model)
    mix = {
        cls: profile[f"mix_{cls.value}"]
        for cls in InstrClass
        if f"mix_{cls.value}" in profile
    }
    return AbstractWorkload(
        total_units=frames,
        instructions_per_unit=int(profile["instructions"]),
        energy_model=energy_model,
        mix=mix,
    )
