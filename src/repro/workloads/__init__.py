"""Workloads: the kernels NVP systems process.

Image-processing and pattern-matching kernels dominate the energy
budget of post-sensing IoT analytics, which is why NVP evaluations use
them.  Each kernel here comes in up to three forms:

* a NumPy reference implementation (ground truth),
* an NV16 assembly program (functional execution on the simulated
  core), and
* an instruction-mix descriptor (fast abstract simulation).
"""

from repro.workloads.base import (
    AbstractWorkload,
    AdvanceResult,
    FunctionalWorkload,
    Workload,
)

__all__ = [
    "AbstractWorkload",
    "AdvanceResult",
    "FunctionalWorkload",
    "Workload",
]
