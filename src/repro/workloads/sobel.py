"""Sobel edge detector (3×3 gradient magnitude, |gx| + |gy|, clamped).

The classic post-sensing kernel: for each interior pixel the two Sobel
gradients are computed and their absolute sum is clamped to 255.
Output stream: the (H-2)×(W-2) edge map in row-major order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa.memory import OUTPUT_PORT
from repro.workloads.asmkit import KernelBuild, SRC_BASE, assemble_kernel
from repro.workloads.images import test_image


def reference(src: np.ndarray) -> np.ndarray:
    """NumPy reference: row-major |gx|+|gy| edge map, clamped to 255."""
    img = np.asarray(src, dtype=np.int64)
    if img.ndim != 2 or img.shape[0] < 3 or img.shape[1] < 3:
        raise ValueError("sobel needs a 2-D image at least 3x3")
    gx = (
        img[:-2, 2:] + 2 * img[1:-1, 2:] + img[2:, 2:]
        - img[:-2, :-2] - 2 * img[1:-1, :-2] - img[2:, :-2]
    )
    gy = (
        img[2:, :-2] + 2 * img[2:, 1:-1] + img[2:, 2:]
        - img[:-2, :-2] - 2 * img[:-2, 1:-1] - img[:-2, 2:]
    )
    mag = np.abs(gx) + np.abs(gy)
    return np.minimum(mag, 255).astype(np.uint16).ravel()


def assembly(height: int, width: int) -> str:
    """Generate the NV16 Sobel program for an H×W frame at SRC_BASE."""
    if height < 3 or width < 3:
        raise ValueError("sobel needs at least a 3x3 frame")
    src = SRC_BASE
    dst = SRC_BASE + height * width
    w = width
    return f"""
; sobel {height}x{width}: src@{src:#x} -> dst@{dst:#x} + output port
.data {src:#x}
src: .space {height * width}
dst: .space {(height - 2) * (width - 2)}
.text
main:
    li   r7, dst          ; output pointer
    li   r1, 1            ; y
yloop:
    li   r2, 1            ; x
xloop:
    li   r5, {w}
    mul  r3, r1, r5
    add  r3, r3, r2
    addi r3, r3, src      ; r3 = &src[y][x]
    ; gx = col(x+1) - col(x-1), weights 1,2,1
    ld   r4, {1 - w}(r3)
    ld   r5, 1(r3)
    shli r5, r5, 1
    add  r4, r4, r5
    ld   r5, {1 + w}(r3)
    add  r4, r4, r5
    ld   r5, {-1 - w}(r3)
    sub  r4, r4, r5
    ld   r5, -1(r3)
    shli r5, r5, 1
    sub  r4, r4, r5
    ld   r5, {w - 1}(r3)
    sub  r4, r4, r5
    bge  r4, r0, gx_pos
    neg  r4, r4
gx_pos:
    ; gy = row(y+1) - row(y-1), weights 1,2,1
    ld   r6, {w - 1}(r3)
    ld   r5, {w}(r3)
    shli r5, r5, 1
    add  r6, r6, r5
    ld   r5, {w + 1}(r3)
    add  r6, r6, r5
    ld   r5, {-w - 1}(r3)
    sub  r6, r6, r5
    ld   r5, {-w}(r3)
    shli r5, r5, 1
    sub  r6, r6, r5
    ld   r5, {-w + 1}(r3)
    sub  r6, r6, r5
    bge  r6, r0, gy_pos
    neg  r6, r6
gy_pos:
    add  r4, r4, r6
    li   r5, 255
    ble  r4, r5, noclamp
    mov  r4, r5
noclamp:
    st   r4, 0(r7)
    inc  r7
    li   r5, {OUTPUT_PORT}
    st   r4, 0(r5)
    inc  r2
    li   r5, {w - 1}
    blt  r2, r5, xloop
    inc  r1
    li   r5, {height - 1}
    blt  r1, r5, yloop
    halt
"""


def build(
    image: Optional[np.ndarray] = None, size: int = 16, seed: int = 7
) -> KernelBuild:
    """Build the Sobel kernel for an image (or a synthetic one)."""
    img = test_image(size, seed) if image is None else np.asarray(image)
    height, width = img.shape
    return assemble_kernel(
        name="sobel",
        source=assembly(height, width),
        data={SRC_BASE: img},
        expected_output=reference(img),
        params={"height": height, "width": width},
    )
