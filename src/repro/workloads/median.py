"""3×3 median filter.

For each interior pixel, the nine neighbourhood values are copied to a
scratch buffer, bubble-sorted, and the middle element emitted — the
standard salt-and-pepper denoiser used in NVP evaluations.
Output stream: the (H-2)×(W-2) filtered map in row-major order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa.memory import OUTPUT_PORT
from repro.workloads.asmkit import KernelBuild, SRC_BASE, assemble_kernel
from repro.workloads.images import test_image


def reference(src: np.ndarray) -> np.ndarray:
    """NumPy reference: row-major 3×3 median map."""
    img = np.asarray(src, dtype=np.int64)
    if img.ndim != 2 or img.shape[0] < 3 or img.shape[1] < 3:
        raise ValueError("median needs a 2-D image at least 3x3")
    height, width = img.shape
    out = np.empty((height - 2, width - 2), dtype=np.uint16)
    for y in range(1, height - 1):
        for x in range(1, width - 1):
            window = img[y - 1 : y + 2, x - 1 : x + 2].ravel()
            out[y - 1, x - 1] = int(np.sort(window)[4])
    return out.ravel()


def assembly(height: int, width: int) -> str:
    """Generate the NV16 median program for an H×W frame at SRC_BASE."""
    if height < 3 or width < 3:
        raise ValueError("median needs at least a 3x3 frame")
    src = SRC_BASE
    dst = src + height * width
    scratch = dst + (height - 2) * (width - 2)
    w = width
    offsets = [-w - 1, -w, -w + 1, -1, 0, 1, w - 1, w, w + 1]
    copy_lines = "\n".join(
        f"    ld   r5, {off}(r3)\n    st   r5, {scratch + k}(r0)"
        for k, off in enumerate(offsets)
    )
    return f"""
; median3x3 {height}x{width}: src@{src:#x} -> dst@{dst:#x}, scratch@{scratch:#x}
.data {src:#x}
src: .space {height * width}
dst: .space {(height - 2) * (width - 2)}
buf: .space 10
.text
main:
    li   r7, dst
    li   r1, 1            ; y
yloop:
    li   r2, 1            ; x
xloop:
    li   r5, {w}
    mul  r3, r1, r5
    add  r3, r3, r2
    addi r3, r3, src      ; r3 = &src[y][x]
{copy_lines}
    ; bubble sort: 8 passes over buf[0..8]
    li   r3, 8
    st   r3, {scratch + 9}(r0)
pass:
    li   r4, 0
inner:
    li   r3, {scratch}
    add  r3, r3, r4
    ld   r5, 0(r3)
    ld   r6, 1(r3)
    bleu r5, r6, noswap
    st   r6, 0(r3)
    st   r5, 1(r3)
noswap:
    inc  r4
    li   r3, 8
    blt  r4, r3, inner
    ld   r3, {scratch + 9}(r0)
    dec  r3
    st   r3, {scratch + 9}(r0)
    bnez r3, pass
    ld   r4, {scratch + 4}(r0)
    st   r4, 0(r7)
    inc  r7
    li   r5, {OUTPUT_PORT}
    st   r4, 0(r5)
    inc  r2
    li   r5, {w - 1}
    blt  r2, r5, xloop
    inc  r1
    li   r5, {height - 1}
    blt  r1, r5, yloop
    halt
"""


def build(
    image: Optional[np.ndarray] = None, size: int = 12, seed: int = 7
) -> KernelBuild:
    """Build the median kernel for an image (or a synthetic one)."""
    img = test_image(size, seed) if image is None else np.asarray(image)
    height, width = img.shape
    return assemble_kernel(
        name="median",
        source=assembly(height, width),
        data={SRC_BASE: img},
        expected_output=reference(img),
        params={"height": height, "width": width},
    )
