"""Naive pattern search (count occurrences of a 4-byte needle).

The pattern-matching representative: scans a buffer and counts every
(possibly overlapping) occurrence of a fixed 4-byte pattern.  Output
stream: the single match count.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.isa.memory import OUTPUT_PORT
from repro.workloads.asmkit import KernelBuild, SRC_BASE, assemble_kernel

DEFAULT_PATTERN = (0xDE, 0xAD, 0xBE, 0xEF)


def make_haystack(
    length: int = 256,
    pattern: Tuple[int, ...] = DEFAULT_PATTERN,
    plant: int = 5,
    seed: int = 7,
) -> np.ndarray:
    """Random buffer with ``plant`` non-overlapping planted needles."""
    if length < len(pattern) * (plant + 1):
        raise ValueError("buffer too short for the requested plants")
    rng = np.random.default_rng(seed)
    buf = rng.integers(0, 256, size=length, dtype=np.int64)
    positions = rng.choice(
        np.arange(0, length - len(pattern), len(pattern) * 2),
        size=plant,
        replace=False,
    )
    for pos in positions:
        buf[pos : pos + len(pattern)] = pattern
    return buf.astype(np.uint8)


def reference(
    src: np.ndarray, pattern: Tuple[int, ...] = DEFAULT_PATTERN
) -> np.ndarray:
    """Reference: count of (overlapping) pattern occurrences."""
    data = np.asarray(src, dtype=np.int64).ravel()
    needle = list(pattern)
    count = sum(
        1
        for pos in range(len(data) - len(needle) + 1)
        if list(data[pos : pos + len(needle)]) == needle
    )
    return np.array([count], dtype=np.uint16)


def assembly(length: int, pattern_len: int = 4) -> str:
    """Generate the NV16 search program over ``length`` bytes."""
    if length < pattern_len:
        raise ValueError("buffer shorter than the pattern")
    src = SRC_BASE
    pat = src + length
    return f"""
; strsearch: count {pattern_len}-byte needle in {length} bytes at {src:#x}
.data {src:#x}
src: .space {length}
pat: .space {pattern_len}
.text
main:
    li   r1, 0            ; position
    li   r2, 0            ; match count
posloop:
    li   r3, {length - pattern_len + 1}
    bge  r1, r3, done
    li   r4, 0            ; k
cmploop:
    mov  r3, r1
    add  r3, r3, r4
    ld   r5, src(r3)
    ld   r6, pat(r4)
    bne  r5, r6, nomatch
    inc  r4
    li   r3, {pattern_len}
    blt  r4, r3, cmploop
    inc  r2
nomatch:
    inc  r1
    jmp  posloop
done:
    li   r3, {OUTPUT_PORT}
    st   r2, 0(r3)
    halt
"""


def build(
    data: Optional[np.ndarray] = None,
    length: int = 256,
    pattern: Tuple[int, ...] = DEFAULT_PATTERN,
    seed: int = 7,
) -> KernelBuild:
    """Build the search kernel (synthetic haystack by default)."""
    buf = make_haystack(length, pattern, seed=seed) if data is None else np.asarray(data)
    return assemble_kernel(
        name="strsearch",
        source=assembly(len(buf), len(pattern)),
        data={SRC_BASE: buf, SRC_BASE + len(buf): np.array(pattern)},
        expected_output=reference(buf, pattern),
        params={"length": len(buf), "pattern_len": len(pattern)},
    )
