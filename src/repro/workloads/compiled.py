"""Kernels written in NVC and compiled to NV16.

Demonstrates the compiler path end-to-end: the same sensing kernels
the assembly suite provides, expressed in the high-level language,
compiled, and packaged as :class:`~repro.workloads.asmkit.KernelBuild`
objects with bit-exact NumPy references.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.lang.codegen import compile_source
from repro.workloads.asmkit import KernelBuild
from repro.workloads.images import test_image, test_signal


def _int_list(values) -> str:
    return ", ".join(str(int(v) & 0xFFFF) for v in np.asarray(values).ravel())


# ---- moving average ---------------------------------------------------------


def moving_average_reference(signal: np.ndarray, window: int = 4) -> np.ndarray:
    """Reference: truncated mean over a sliding window."""
    data = np.asarray(signal, dtype=np.int64).ravel()
    if len(data) < window:
        raise ValueError("signal shorter than the window")
    out = [
        int(data[i : i + window].sum()) // window
        for i in range(len(data) - window + 1)
    ]
    return np.array(out, dtype=np.uint16)


def moving_average_source(signal: np.ndarray, window: int = 4) -> str:
    """NVC source for the moving-average kernel over ``signal``."""
    n = len(np.asarray(signal).ravel())
    return f"""
int sig[{n}] = {{{_int_list(signal)}}};

func main() {{
    int i; int k; int acc;
    for (i = 0; i <= {n - window}; i = i + 1) {{
        acc = 0;
        for (k = 0; k < {window}; k = k + 1) {{ acc = acc + sig[i + k]; }}
        out(acc / {window});
    }}
}}
"""


def build_moving_average(
    signal: Optional[np.ndarray] = None, length: int = 64, seed: int = 7
) -> KernelBuild:
    """Compile the moving-average kernel for a signal."""
    data = test_signal(length, seed) if signal is None else np.asarray(signal)
    compiled = compile_source(moving_average_source(data))
    return KernelBuild(
        name="nvc-moving-average",
        program=compiled.program,
        expected_output=moving_average_reference(data),
        params={"length": len(data)},
    )


# ---- sobel ---------------------------------------------------------------------


def sobel_source(image: np.ndarray) -> str:
    """NVC source for the Sobel kernel (flat row-major image)."""
    height, width = image.shape
    return f"""
int img[{height * width}] = {{{_int_list(image)}}};

func absval(v) {{
    if (v < 0) {{ return 0 - v; }}   // comparisons are signed
    return v;
}}

func main() {{
    int y; int x; int gx; int gy; int mag; int p;
    for (y = 1; y < {height - 1}; y = y + 1) {{
        for (x = 1; x < {width - 1}; x = x + 1) {{
            p = y * {width} + x;
            gx = img[p - {width} + 1] + 2 * img[p + 1] + img[p + {width} + 1]
               - img[p - {width} - 1] - 2 * img[p - 1] - img[p + {width} - 1];
            gy = img[p + {width} - 1] + 2 * img[p + {width}] + img[p + {width} + 1]
               - img[p - {width} - 1] - 2 * img[p - {width}] - img[p - {width} + 1];
            mag = absval(gx) + absval(gy);
            if (mag > 255) {{ mag = 255; }}
            out(mag);
        }}
    }}
}}
"""


def build_sobel(
    image: Optional[np.ndarray] = None, size: int = 12, seed: int = 7
) -> KernelBuild:
    """Compile the NVC Sobel kernel for an image."""
    from repro.workloads.sobel import reference

    img = test_image(size, seed) if image is None else np.asarray(image)
    compiled = compile_source(sobel_source(img))
    return KernelBuild(
        name="nvc-sobel",
        program=compiled.program,
        expected_output=reference(img),
        params={"height": img.shape[0], "width": img.shape[1]},
    )


# ---- threshold count ----------------------------------------------------------


def threshold_count_reference(image: np.ndarray, threshold: int = 128) -> np.ndarray:
    """Reference: number of pixels strictly above the threshold."""
    data = np.asarray(image, dtype=np.int64).ravel()
    return np.array([int((data > threshold).sum())], dtype=np.uint16)


def threshold_count_source(image: np.ndarray, threshold: int = 128) -> str:
    """NVC source counting pixels above a threshold."""
    flat = np.asarray(image).ravel()
    return f"""
int img[{len(flat)}] = {{{_int_list(flat)}}};

func main() {{
    int i; int count;
    count = 0;
    for (i = 0; i < {len(flat)}; i = i + 1) {{
        if (img[i] > {threshold}) {{ count = count + 1; }}
    }}
    out(count);
}}
"""


def build_threshold_count(
    image: Optional[np.ndarray] = None,
    size: int = 16,
    threshold: int = 128,
    seed: int = 7,
) -> KernelBuild:
    """Compile the threshold-count kernel for an image."""
    img = test_image(size, seed) if image is None else np.asarray(image)
    compiled = compile_source(threshold_count_source(img, threshold))
    return KernelBuild(
        name="nvc-threshold-count",
        program=compiled.program,
        expected_output=threshold_count_reference(img, threshold),
        params={"size": img.size, "threshold": threshold},
    )


#: Compiled-kernel registry (parallel to the hand-written-assembly one).
NVC_KERNELS = {
    "nvc-moving-average": build_moving_average,
    "nvc-sobel": build_sobel,
    "nvc-threshold-count": build_threshold_count,
}
