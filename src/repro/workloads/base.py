"""Workload abstraction shared by all platforms.

Two execution modes implement the same interface:

* :class:`FunctionalWorkload` runs a real NV16 binary instruction by
  instruction (used when output values/quality matter);
* :class:`AbstractWorkload` replays an instruction-mix descriptor
  (used for long parameter sweeps where only instruction counts and
  energies matter — this mirrors how the published methodology couples
  a system-level simulator to a slower functional/RTL simulator).

Both are *unit-structured*: work is divided into units ("frames"), the
natural commit granularity for wait-and-compute baselines and the
restart granularity after data loss.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.isa import blockengine
from repro.isa.cpu import CPU
from repro.isa.energy import DEFAULT_MIX, EnergyModel, InstrClass
from repro.isa.memory import MemoryMap


@dataclass(frozen=True)
class AdvanceResult:
    """Outcome of advancing a workload within a tick.

    Attributes:
        instructions: instructions retired.
        energy_j: energy consumed.
        time_s: execution time consumed.
    """

    instructions: int
    energy_j: float
    time_s: float


class Workload(abc.ABC):
    """A resumable, snapshot-able computation."""

    @property
    def supports_exact_batch(self) -> Optional[str]:
        """Batchable-advance capability, or ``None``.

        The batched exact kernel (:mod:`repro.system.exactkernel`)
        can consume runs of predictable ticks only when it knows what
        ``advance`` will do.  Workloads advertise that through this
        capability protocol:

        * ``"recurrence"`` — ``advance`` is the closed-form
          time-credit recurrence of :class:`AbstractWorkload`; the
          kernel replays it in a fused loop without calling the
          workload at all.
        * ``"isa"`` — ``advance`` executes a real NV16 program with
          :class:`FunctionalWorkload`'s budget envelope; the kernel
          drives ``advance`` per tick (through the block-compiled
          engine) and bounds its behaviour with
          :meth:`FunctionalWorkload.advance_bounds`.
        * ``None`` — unbatchable; every tick runs on the scalar path.

        Subclasses that override ``advance`` (or ``finished``) lose
        the capability automatically — the base implementations check
        that the methods are unoverridden, so a subclass never gets
        batched against semantics it changed.
        """
        return None

    @property
    @abc.abstractmethod
    def finished(self) -> bool:
        """True when all work units are complete."""

    @property
    @abc.abstractmethod
    def progress_instructions(self) -> int:
        """Instructions retired since construction (monotonic)."""

    @property
    @abc.abstractmethod
    def units_completed(self) -> int:
        """Completed work units (frames)."""

    @property
    @abc.abstractmethod
    def unit_instructions(self) -> int:
        """Approximate instructions per work unit (for planning)."""

    @abc.abstractmethod
    def advance(self, time_budget_s: float) -> AdvanceResult:
        """Execute for up to ``time_budget_s`` of core time."""

    @abc.abstractmethod
    def snapshot(self) -> Any:
        """Capture resumable state (the payload of a backup)."""

    @abc.abstractmethod
    def restore(self, snap: Any) -> None:
        """Resume from a snapshot."""

    @abc.abstractmethod
    def restart_unit(self) -> None:
        """Drop volatile progress back to the start of the current unit."""

    def clear_volatile(self) -> None:
        """Model power loss: volatile (RAM) state is wiped.

        Registers are handled separately by the platform (backed up or
        lost); nonvolatile data memory persists.  The default is a
        no-op (abstract workloads carry no memory state).
        """

    def snapshot_words(self, snap: Any) -> list:
        """Data-register words of a snapshot, as 16-bit ints.

        These are the words an approximate (retention-relaxed) backup
        may corrupt; control state (PC, pipeline) is always stored
        precisely.  Abstract workloads have none.
        """
        del snap
        return []

    def apply_snapshot_words(self, snap: Any, words: list) -> Any:
        """Return a copy of ``snap`` with its data-register words replaced."""
        del words
        return snap

    @abc.abstractmethod
    def mean_instruction_energy_j(self) -> float:
        """Average energy per instruction (for threshold planning)."""

    @abc.abstractmethod
    def mean_instruction_time_s(self) -> float:
        """Average time per instruction (for threshold planning)."""

    def run_power_w(self) -> float:
        """Average active-execution power."""
        return self.mean_instruction_energy_j() / self.mean_instruction_time_s()


class AbstractWorkload(Workload):
    """Instruction-mix workload for fast system-level sweeps.

    Args:
        total_units: number of work units; ``None`` for unbounded.
        instructions_per_unit: instructions per unit.
        energy_model: charging model (clock frequency matters).
        mix: instruction-class mix; defaults to the generic embedded mix.
    """

    def __init__(
        self,
        total_units: Optional[int] = None,
        instructions_per_unit: int = 10_000,
        energy_model: Optional[EnergyModel] = None,
        mix: Optional[Dict[InstrClass, float]] = None,
    ) -> None:
        if instructions_per_unit <= 0:
            raise ValueError("instructions_per_unit must be positive")
        if total_units is not None and total_units <= 0:
            raise ValueError("total_units must be positive or None")
        self.total_units = total_units
        self.instructions_per_unit = instructions_per_unit
        self.energy_model = energy_model if energy_model is not None else EnergyModel()
        self.mix = dict(mix) if mix is not None else dict(DEFAULT_MIX)
        total_fraction = sum(self.mix.values())
        if total_fraction <= 0:
            raise ValueError("instruction mix must have positive total weight")
        self._energy_per_instr = sum(
            frac / total_fraction * self.energy_model.instruction_energy(cls)
            for cls, frac in self.mix.items()
        )
        self._time_per_instr = sum(
            frac / total_fraction * self.energy_model.instruction_time(cls)
            for cls, frac in self.mix.items()
        )
        self._retired = 0
        self._time_credit_s = 0.0

    # -- Workload interface ------------------------------------------------

    @property
    def supports_exact_batch(self) -> Optional[str]:
        """``"recurrence"`` unless ``advance``/``finished`` is overridden.

        A subclass that overrides neither inherits the exact
        time-credit recurrence the batched kernel replicates, so it
        keeps the capability (and the speedup); overriding either
        drops it back to scalar ticking.
        """
        cls = type(self)
        if (
            cls.advance is AbstractWorkload.advance
            and cls.finished is AbstractWorkload.finished
        ):
            return "recurrence"
        return None

    @property
    def finished(self) -> bool:
        if self.total_units is None:
            return False
        return self._retired >= self.total_units * self.instructions_per_unit

    @property
    def progress_instructions(self) -> int:
        return self._retired

    @property
    def units_completed(self) -> int:
        return self._retired // self.instructions_per_unit

    @property
    def unit_instructions(self) -> int:
        return self.instructions_per_unit

    def advance(self, time_budget_s: float) -> AdvanceResult:
        if time_budget_s < 0:
            raise ValueError("time budget cannot be negative")
        if self.finished:
            return AdvanceResult(0, 0.0, 0.0)
        budget = time_budget_s + self._time_credit_s
        count = int(budget / self._time_per_instr)
        if self.total_units is not None:
            remaining = self.total_units * self.instructions_per_unit - self._retired
            count = min(count, remaining)
        time_used = count * self._time_per_instr
        self._time_credit_s = min(budget - time_used, self._time_per_instr)
        self._retired += count
        return AdvanceResult(count, count * self._energy_per_instr, time_used)

    def snapshot(self) -> int:
        return self._retired

    def restore(self, snap: Any) -> None:
        if not isinstance(snap, int) or snap < 0:
            raise ValueError("abstract workload snapshot must be a non-negative int")
        self._retired = snap

    def restart_unit(self) -> None:
        self._retired = self.units_completed * self.instructions_per_unit

    def mean_instruction_energy_j(self) -> float:
        return self._energy_per_instr

    def mean_instruction_time_s(self) -> float:
        return self._time_per_instr

    def snapshot_words(self, snap: Any) -> list:
        """Pseudo register-file contents derived from the snapshot.

        The abstract workload has no real registers, but the register
        file physically exists and its backup must be costed (and may
        be retention-relaxed).  Deterministic pseudo-contents keyed on
        progress give compare-and-write strategies realistic churn.
        """
        state = (int(snap) * 2654435761) & 0xFFFFFFFF
        words = []
        for _ in range(8):
            state = (1103515245 * state + 12345) & 0x7FFFFFFF
            words.append(state & 0xFFFF)
        words[0] = 0  # r0 is hardwired zero
        return words

    def apply_snapshot_words(self, snap: Any, words: list) -> Any:
        """Bit flips in pseudo registers do not alter abstract progress."""
        del words
        return snap


class FunctionalWorkload(Workload):
    """Runs a real NV16 program, one unit per program run.

    The same program is executed ``total_units`` times (one "frame"
    per run), with the data image reloaded between frames.  Programs
    should keep their working data in the NVM region (``0x8000+``) —
    volatile RAM contents are *not* part of an NVP hardware backup.

    Args:
        program: an assembled :class:`~repro.isa.assembler.Program`.
        total_units: number of frames to process.
        energy_model: cycle/energy charging model.
        max_instructions_per_unit: safety valve against runaway
            programs.
        data_images: optional per-frame data-image overlays (cycled by
            frame index) — this is how a streaming sensor feeds a new
            frame into the same program each unit.
    """

    def __init__(
        self,
        program,
        total_units: int = 1,
        energy_model: Optional[EnergyModel] = None,
        max_instructions_per_unit: int = 5_000_000,
        data_images=None,
    ) -> None:
        if total_units <= 0:
            raise ValueError("total_units must be positive")
        if data_images is not None and len(data_images) == 0:
            raise ValueError("data_images cannot be empty when given")
        self.program = program
        self.total_units = total_units
        self.energy_model = energy_model if energy_model is not None else EnergyModel()
        self.max_instructions_per_unit = max_instructions_per_unit
        self.data_images = list(data_images) if data_images is not None else None
        self._units_done = 0
        self._retired = 0
        self._unit_retired = 0
        self._time_credit_s = 0.0
        self.cpu = self._fresh_cpu()
        # Planning estimates, refined after the first completed unit.
        self._estimated_unit_instructions: Optional[int] = None
        # Lazily compiled block engine (shared by every per-unit CPU;
        # its closures act only on the (regs, memory) passed per call).
        self._block_engine = None
        self._advance_bounds: Optional[tuple] = None

    def _fresh_cpu(self) -> CPU:
        cpu = CPU(self.program.instructions, MemoryMap(), self.energy_model)
        cpu.memory.load_image(self.program.data_image)
        if self.data_images is not None:
            frame = self._units_done % len(self.data_images)
            cpu.memory.load_image(self.data_images[frame])
        return cpu

    def _engine(self):
        """The compiled block engine, or ``None`` when disabled."""
        if not blockengine.enabled():
            return None
        engine = self._block_engine
        model = self.energy_model
        signature = (model.frequency_hz, model.vdd, model.static_power_w)
        if engine is None or engine.model_signature != signature:
            engine = blockengine.BlockEngine(self.program.instructions, model)
            self._block_engine = engine
        return engine

    # -- Workload interface ------------------------------------------------

    @property
    def supports_exact_batch(self) -> Optional[str]:
        """``"isa"`` unless ``advance``/``finished`` is overridden."""
        cls = type(self)
        if (
            cls.advance is FunctionalWorkload.advance
            and cls.finished is FunctionalWorkload.finished
        ):
            return "isa"
        return None

    @property
    def finished(self) -> bool:
        return self._units_done >= self.total_units

    @property
    def progress_instructions(self) -> int:
        return self._retired

    @property
    def units_completed(self) -> int:
        return self._units_done

    @property
    def unit_instructions(self) -> int:
        if self._estimated_unit_instructions is not None:
            return self._estimated_unit_instructions
        # Pre-completion estimate: instructions retired so far in the
        # unit, or a generic default.
        return max(self._unit_retired, 10_000)

    @property
    def outputs(self):
        """MMIO output stream produced so far (current CPU instance)."""
        return self.cpu.memory.output

    def advance(self, time_budget_s: float) -> AdvanceResult:
        if time_budget_s < 0:
            raise ValueError("time budget cannot be negative")
        budget = time_budget_s + self._time_credit_s
        min_step_s = self.energy_model.cycle_time_s
        if budget < min_step_s or self.finished:
            self._time_credit_s = budget if not self.finished else 0.0
            return AdvanceResult(0, 0.0, 0.0)
        executed = 0
        energy = 0.0
        time_used = 0.0
        engine = self._engine()
        if engine is not None:
            while not self.finished and time_used < budget:
                if self.cpu.state.halted:
                    self._complete_unit()
                    continue
                segment = engine.run(
                    self.cpu, budget, time_used, energy,
                    self.max_instructions_per_unit - self._unit_retired,
                )
                executed += segment.executed
                energy = segment.energy_j
                time_used = segment.time_used_s
                self._unit_retired += segment.executed
                if segment.fault is not None:
                    raise segment.fault
                if segment.capped:
                    raise RuntimeError(
                        "unit exceeded max_instructions_per_unit; "
                        "program is likely stuck"
                    )
                if self.cpu.state.halted:
                    self._complete_unit()
            self._retired += executed
            self._time_credit_s = max(0.0, budget - time_used)
            return AdvanceResult(executed, energy, min(time_used, budget))
        while not self.finished and time_used < budget:
            if self.cpu.state.halted:
                self._complete_unit()
                continue
            info = self.cpu.step()
            step_time = info.cycles * self.energy_model.cycle_time_s
            # The instruction has architecturally executed (behavioral
            # model steps are atomic), so it is always charged even if
            # it overshoots the budget slightly.
            executed += 1
            energy += info.energy_j
            time_used += step_time
            self._unit_retired += 1
            if self._unit_retired > self.max_instructions_per_unit:
                raise RuntimeError(
                    "unit exceeded max_instructions_per_unit; "
                    "program is likely stuck"
                )
            if self.cpu.state.halted:
                self._complete_unit()
        self._retired += executed
        self._time_credit_s = max(0.0, budget - time_used)
        return AdvanceResult(executed, energy, min(time_used, budget))

    def _complete_unit(self) -> None:
        self._estimated_unit_instructions = max(self._unit_retired, 1)
        self._units_done += 1
        self._unit_retired = 0
        if not self.finished:
            outputs = self.cpu.memory.output
            self.cpu = self._fresh_cpu()
            self.cpu.memory.output.extend(outputs)

    def snapshot(self) -> Any:
        return (
            self.cpu.snapshot(),
            self._units_done,
            self._unit_retired,
            list(self.cpu.memory.output),
        )

    def restore(self, snap: Any) -> None:
        state, units_done, unit_retired, outputs = snap
        self.cpu.restore(state)
        self._units_done = units_done
        self._unit_retired = unit_retired
        self.cpu.memory.output[:] = outputs

    def restart_unit(self) -> None:
        outputs = list(self.cpu.memory.output)
        self.cpu = self._fresh_cpu()
        self.cpu.memory.output.extend(outputs)
        self._unit_retired = 0

    def clear_volatile(self) -> None:
        """Wipe the volatile RAM segment (power failed).

        NV16 kernels keep their working data in the NVM region, so a
        correctly written kernel survives this; a kernel that stashes
        state in RAM will produce wrong results after an unbacked-up
        power failure — exactly the intermittent-consistency hazard the
        tutorial calls out.
        """
        self.cpu.memory.clear_volatile()

    def snapshot_words(self, snap: Any) -> list:
        """The eight data-register words of the snapshotted CPU state."""
        state = snap[0]
        return list(state.regs)

    def apply_snapshot_words(self, snap: Any, words: list) -> Any:
        """Replace the snapshot's register words (r0 stays hardwired 0)."""
        state, units_done, unit_retired, outputs = snap
        if len(words) != len(state.regs):
            raise ValueError("register word count mismatch")
        new_state = state.copy()
        new_state.regs = [words[0] & 0xFFFF] + [w & 0xFFFF for w in words[1:]]
        new_state.regs[0] = 0
        return (new_state, units_done, unit_retired, outputs)

    def mean_instruction_energy_j(self) -> float:
        if self.cpu.instructions_retired > 0:
            return self.cpu.energy_j / self.cpu.instructions_retired
        # Fall back to the generic mix estimate before any execution.
        model = self.energy_model
        return sum(
            frac * model.instruction_energy(cls) for cls, frac in DEFAULT_MIX.items()
        )

    def mean_instruction_time_s(self) -> float:
        if self.cpu.instructions_retired > 0:
            return (
                self.cpu.cycles * self.energy_model.cycle_time_s
            ) / self.cpu.instructions_retired
        model = self.energy_model
        return sum(
            frac * model.instruction_time(cls) for cls, frac in DEFAULT_MIX.items()
        )

    def advance_bounds(self) -> tuple:
        """Worst-case ``(min_time, max_time, max_power)`` per instruction.

        The batched exact kernel uses these to bound what one
        ``advance(budget)`` call can do without executing it: no tick
        can retire more than ``budget / min_time + 1`` instructions,
        nor draw more than ``(budget + max_time) * max_power`` joules
        (every instruction's energy is at most its execution time times
        the worst energy-per-second over the nine instruction classes,
        and the last instruction may overshoot the budget by at most
        ``max_time``).  All three are fixed properties of the energy
        model, so they are computed once.
        """
        bounds = self._advance_bounds
        if bounds is None:
            model = self.energy_model
            times = {cls: model.instruction_time(cls) for cls in InstrClass}
            bounds = (
                min(times.values()),
                max(times.values()),
                max(
                    model.instruction_energy(cls) / times[cls]
                    for cls in InstrClass
                ),
            )
            self._advance_bounds = bounds
        return bounds
