"""16-bin histogram of an 8-bit buffer.

Bins live in nonvolatile memory and are updated read-modify-write,
which makes this kernel deliberately **not replay-idempotent**: if an
NVP rolls back past bin increments that already reached NVM, those
increments are double-counted.  The suite uses it both as a workload
and as a demonstration of the intermittent-consistency hazard the
tutorial highlights.  Output stream: the 16 bin counts.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa.memory import OUTPUT_PORT
from repro.workloads.asmkit import KernelBuild, SRC_BASE, assemble_kernel
from repro.workloads.images import test_bytes

N_BINS = 16


def reference(src: np.ndarray) -> np.ndarray:
    """Reference: counts of values per 16-wide bucket (value >> 4)."""
    data = np.asarray(src, dtype=np.int64).ravel()
    counts = np.bincount(data >> 4, minlength=N_BINS)[:N_BINS]
    return counts.astype(np.uint16)


def assembly(length: int) -> str:
    """Generate the NV16 histogram program over ``length`` bytes."""
    if length < 1:
        raise ValueError("histogram needs at least one sample")
    src = SRC_BASE
    bins = src + length
    return f"""
; histogram(16 bins) over {length} bytes at {src:#x}; bins at {bins:#x}
.data {src:#x}
src:  .space {length}
bins: .space {N_BINS}
.text
main:
    ; zero the bins (the data image already is, but an explicit clear
    ; keeps repeated frames well-defined)
    li   r1, 0
zloop:
    li   r3, bins
    add  r3, r3, r1
    st   r0, 0(r3)
    inc  r1
    li   r3, {N_BINS}
    blt  r1, r3, zloop
    li   r1, 0            ; index
hloop:
    ld   r4, src(r1)
    shri r4, r4, 4        ; bucket
    li   r3, bins
    add  r3, r3, r4
    ld   r5, 0(r3)
    inc  r5
    st   r5, 0(r3)
    inc  r1
    li   r3, {length}
    blt  r1, r3, hloop
    ; stream the bins
    li   r1, 0
outl:
    ld   r4, bins(r1)
    li   r3, {OUTPUT_PORT}
    st   r4, 0(r3)
    inc  r1
    li   r3, {N_BINS}
    blt  r1, r3, outl
    halt
"""


def build(
    data: Optional[np.ndarray] = None, length: int = 256, seed: int = 7
) -> KernelBuild:
    """Build the histogram kernel for a buffer (or a synthetic one)."""
    buf = test_bytes(length, seed, runs=False) if data is None else np.asarray(data)
    return assemble_kernel(
        name="histogram",
        source=assembly(len(buf)),
        data={SRC_BASE: buf},
        expected_output=reference(buf),
        params={"length": len(buf)},
    )
