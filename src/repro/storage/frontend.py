"""Front-end channel architectures.

A *single-channel* front end routes all harvested energy through the
storage element: every joule pays the conversion-efficiency toll twice
(in and out).  A *dual-channel* front end (Sheng et al., NVMSA'14)
adds a bypass path that feeds the load directly from the harvester
when the load is active, touching the capacitor only for the surplus
or shortfall — substantially improving end-to-end efficiency under
µW-level harvesting.

Both classes wrap a storage element and expose a single
``step(p_in_w, p_load_w, dt_s)`` returning the energy actually
delivered to the load this tick plus a deficit flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.storage.capacitor import StorageStep


@runtime_checkable
class _Storage(Protocol):
    energy_j: float

    def step(self, p_in_w: float, p_load_w: float, dt_s: float) -> StorageStep: ...


@dataclass(frozen=True)
class FrontEndStep:
    """Outcome of one front-end tick.

    Attributes:
        delivered_j: energy delivered to the load.
        deficit: True if the load could not be fully supplied.
        bypassed_j: energy that flowed directly from harvester to load
            (dual-channel only; zero for single-channel).
    """

    delivered_j: float
    deficit: bool
    bypassed_j: float = 0.0


class _StorageFacade:
    """Storage-interface passthroughs so a front end can stand in for
    its storage element inside any platform (``energy_j`` / ``draw`` /
    ``set_energy`` delegate to the wrapped store)."""

    storage: _Storage

    @property
    def energy_j(self) -> float:
        """Stored energy of the wrapped element."""
        return self.storage.energy_j

    @property
    def energy_max_j(self) -> float:
        """Capacity of the wrapped element."""
        return self.storage.energy_max_j  # type: ignore[attr-defined]

    def draw(self, energy_j: float) -> float:
        """Immediate withdrawal from the wrapped element."""
        return self.storage.draw(energy_j)  # type: ignore[attr-defined]

    def set_energy(self, energy_j: float) -> None:
        """Force the wrapped element's stored energy (test helper)."""
        self.storage.set_energy(energy_j)  # type: ignore[attr-defined]


class SingleChannelFrontEnd(_StorageFacade):
    """All harvested power flows through the storage element."""

    def __init__(self, storage: _Storage) -> None:
        self.storage = storage

    def step(self, p_in_w: float, p_load_w: float, dt_s: float) -> FrontEndStep:
        """Charge the store from the harvester, then draw the load from it."""
        result = self.storage.step(p_in_w, p_load_w, dt_s)
        return FrontEndStep(delivered_j=result.delivered_j, deficit=result.deficit)


class DualChannelFrontEnd(_StorageFacade):
    """Harvester feeds the load directly when it is active.

    Args:
        storage: the storage element for surplus/shortfall.
        bypass_efficiency: efficiency of the direct harvester-to-load
            path (typically much better than the double conversion
            through the capacitor).
    """

    def __init__(self, storage: _Storage, bypass_efficiency: float = 0.95) -> None:
        if not 0 < bypass_efficiency <= 1:
            raise ValueError("bypass efficiency must be in (0, 1]")
        self.storage = storage
        self.bypass_efficiency = bypass_efficiency
        self.total_bypassed_j = 0.0

    def step(self, p_in_w: float, p_load_w: float, dt_s: float) -> FrontEndStep:
        """Feed the load from the bypass first, then settle with the store."""
        if p_in_w < 0 or p_load_w < 0:
            raise ValueError("powers cannot be negative")
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        if p_load_w == 0.0:
            # Idle load: everything goes to storage.
            result = self.storage.step(p_in_w, 0.0, dt_s)
            return FrontEndStep(delivered_j=0.0, deficit=result.deficit)

        direct_w = min(p_in_w * self.bypass_efficiency, p_load_w)
        bypassed_j = direct_w * dt_s
        self.total_bypassed_j += bypassed_j
        # Surplus harvest charges the store; shortfall is drawn from it.
        surplus_in_w = max(0.0, p_in_w - direct_w / self.bypass_efficiency)
        shortfall_w = p_load_w - direct_w
        result = self.storage.step(surplus_in_w, shortfall_w, dt_s)
        return FrontEndStep(
            delivered_j=bypassed_j + result.delivered_j,
            deficit=result.deficit,
            bypassed_j=bypassed_j,
        )
