"""Idealised energy store: no leakage, perfect conversion.

Used as a reference to separate architectural effects (backup/restore
overheads) from storage losses, and as the upper bound in the
capacitor-sizing experiment.
"""

from __future__ import annotations

import math

from repro.storage.capacitor import StorageStep


class IdealStorage:
    """Loss-free, efficiency-1.0 energy store with a capacity bound.

    Implements the same ``step``/``draw``/``energy_j`` interface as
    :class:`~repro.storage.capacitor.Capacitor`.
    """

    def __init__(self, capacity_j: float, initial_j: float = 0.0) -> None:
        if capacity_j <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= initial_j <= capacity_j:
            raise ValueError("initial energy outside [0, capacity]")
        self.capacity_j = capacity_j
        self._energy_j = initial_j
        self.total_charged_j = 0.0
        self.total_delivered_j = 0.0
        self.total_leaked_j = 0.0
        self.total_wasted_j = 0.0

    @property
    def energy_j(self) -> float:
        """Stored energy, joules."""
        return self._energy_j

    @property
    def energy_max_j(self) -> float:
        """Capacity, joules."""
        return self.capacity_j

    @property
    def state_of_charge(self) -> float:
        """Stored energy as a fraction of capacity."""
        return self._energy_j / self.capacity_j

    @property
    def voltage_v(self) -> float:
        """Nominal rail voltage (constant 1.0 for the ideal store)."""
        return 1.0

    def set_energy(self, energy_j: float) -> None:
        """Force the stored energy (test/benchmark setup helper)."""
        if not 0 <= energy_j <= self.capacity_j:
            raise ValueError("energy outside [0, capacity]")
        self._energy_j = energy_j

    def step(self, p_in_w: float, p_load_w: float, dt_s: float) -> StorageStep:
        """Advance one tick with perfect charging and no leakage."""
        if p_in_w < 0 or p_load_w < 0:
            raise ValueError("powers cannot be negative")
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        charged = p_in_w * dt_s
        wasted = 0.0
        headroom = self.capacity_j - self._energy_j
        if charged > headroom:
            wasted = charged - headroom
            charged = headroom
        self._energy_j += charged

        demand = p_load_w * dt_s
        delivered = min(demand, self._energy_j)
        self._energy_j -= delivered

        self.total_charged_j += charged
        self.total_delivered_j += delivered
        self.total_wasted_j += wasted
        return StorageStep(
            delivered_j=delivered,
            charged_j=charged,
            leaked_j=0.0,
            wasted_j=wasted,
            deficit=delivered < demand - 1e-18,
        )

    def draw(self, energy_j: float) -> float:
        """Withdraw up to ``energy_j`` immediately; returns the amount drawn."""
        if energy_j < 0:
            raise ValueError("cannot draw negative energy")
        drawn = min(energy_j, self._energy_j)
        self._energy_j -= drawn
        self.total_delivered_j += drawn
        return drawn

    def charge_many(self, p_in_w, start, stop, dt_s, stop_energy_j=None):
        """Bulk zero-load charging, bit-identical to per-tick ``step``.

        Same contract as
        :meth:`repro.storage.capacitor.Capacitor.charge_many`:
        consumes ``p_in_w[start:stop]`` with no load attached, stops
        after the tick on which energy reaches ``stop_energy_j``, and
        returns ``(ticks_consumed, crossed)``.
        """
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        energy = self._energy_j
        capacity = self.capacity_j
        total_charged = self.total_charged_j
        total_wasted = self.total_wasted_j
        target = float("inf") if stop_energy_j is None else stop_energy_j
        index = start
        crossed = False
        while index < stop:
            charged = p_in_w[index] * dt_s
            index += 1
            wasted = 0.0
            headroom = capacity - energy
            if charged > headroom:
                wasted = charged - headroom
                charged = headroom
            energy += charged
            total_charged += charged
            total_wasted += wasted
            if energy >= target:
                crossed = True
                break
        self._energy_j = energy
        self.total_charged_j = total_charged
        self.total_wasted_j = total_wasted
        return index - start, crossed

    # -- fleet struct-of-arrays contract -------------------------------------

    def soa_params(self) -> dict:
        """Capacitor-equivalent parameters for the fleet SoA kernel.

        The vectorized kernel always evaluates the full capacitor
        chain; with ``C = 1``, a flat unit-efficiency curve, infinite
        leak resistance and no minimum charge current every extra
        operation is an exact float identity (``x * 1.0``, ``x + 0.0``,
        ``max(1.0, y <= 1.0)``), so the ideal store's
        :meth:`charge_many` is reproduced bit for bit.
        """
        return {
            "capacitance_f": 1.0,
            "capacity_j": self.capacity_j,
            "leak_ohm": math.inf,
            "min_current_a": 0.0,
            "eta_peak": 1.0,
            "eta_floor": 1.0,
            "v_opt_v": 0.0,
            "v_span_v": 1.0,
        }

    def soa_state(self):
        """``(energy, charged, leaked, wasted)`` for the fleet kernel."""
        return (
            self._energy_j,
            self.total_charged_j,
            self.total_leaked_j,
            self.total_wasted_j,
        )

    def soa_restore(
        self,
        energy_j: float,
        charged_j: float,
        leaked_j: float,
        wasted_j: float,
    ) -> None:
        """Adopt state evolved by the fleet SoA kernel (bit-exact)."""
        self._energy_j = energy_j
        self.total_charged_j = charged_j
        self.total_leaked_j = leaked_j
        self.total_wasted_j = wasted_j

    def __repr__(self) -> str:
        return f"IdealStorage(E={self._energy_j * 1e6:.3g}/{self.capacity_j * 1e6:.3g}uJ)"
