"""Storage-capacitor model.

Energy is the primary state variable; voltage follows from
``E = C V² / 2``.  The model captures the three loss mechanisms that
penalise capacitor-centric ("wait-and-compute") harvesting systems:

* **conversion efficiency** that depends on the capacitor voltage —
  charging far from the converter's optimal point wastes energy, which
  is what energy-band power management (TECS'17) exploits;
* **leakage**, modelled as a parallel resistance;
* **minimum charging current** — real charger ICs cannot harvest into
  the capacitor below a minimum current (e.g. ~20 µA for cap-XX
  GZ-series supercapacitors).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ChargeEfficiency:
    """Voltage-dependent conversion-efficiency curve.

    ``eta(v) = max(eta_floor, eta_peak * (1 - ((v - v_opt)/v_span)²))``

    Attributes:
        eta_peak: efficiency at the optimal capacitor voltage.
        eta_floor: lower bound far from the optimum.
        v_opt_v: optimal capacitor voltage.
        v_span_v: voltage distance at which the parabola reaches zero
            (before flooring).
    """

    eta_peak: float = 0.90
    eta_floor: float = 0.40
    v_opt_v: float = 2.0
    v_span_v: float = 2.0

    def __post_init__(self) -> None:
        if not 0 < self.eta_peak <= 1:
            raise ValueError("eta_peak must be in (0, 1]")
        if not 0 <= self.eta_floor <= self.eta_peak:
            raise ValueError("eta_floor must be in [0, eta_peak]")
        if self.v_span_v <= 0:
            raise ValueError("v_span must be positive")

    def __call__(self, voltage_v: float) -> float:
        if voltage_v < 0:
            raise ValueError("voltage cannot be negative")
        offset = (voltage_v - self.v_opt_v) / self.v_span_v
        return max(self.eta_floor, self.eta_peak * (1.0 - offset * offset))


#: Flat-efficiency curve for experiments isolating other effects.
FLAT_EFFICIENCY = ChargeEfficiency(
    eta_peak=0.9, eta_floor=0.9, v_opt_v=0.0, v_span_v=1.0
)


@dataclass(frozen=True)
class StorageStep:
    """Outcome of one storage tick.

    Attributes:
        delivered_j: energy actually delivered to the load.
        charged_j: energy stored into the capacitor (after efficiency).
        leaked_j: energy lost to leakage.
        wasted_j: harvested energy that could not be used (conversion
            loss, overflow when full, or below minimum charge current).
        deficit: True if the load demanded more than could be supplied
            (a brownout tick).
    """

    delivered_j: float
    charged_j: float
    leaked_j: float
    wasted_j: float
    deficit: bool


class Capacitor:
    """A storage capacitor with losses.

    Args:
        capacitance_f: capacitance in farads.
        v_max_v: maximum (rated) voltage.
        v_initial_v: starting voltage.
        leak_resistance_ohm: parallel leakage resistance (``inf`` for a
            leak-free capacitor).
        efficiency: charging-efficiency curve.
        min_charge_current_a: below this input current the charger
            cannot harvest (input energy is wasted).
    """

    def __init__(
        self,
        capacitance_f: float,
        v_max_v: float = 3.3,
        v_initial_v: float = 0.0,
        leak_resistance_ohm: float = 50e6,
        efficiency: ChargeEfficiency = FLAT_EFFICIENCY,
        min_charge_current_a: float = 0.0,
    ) -> None:
        if capacitance_f <= 0:
            raise ValueError("capacitance must be positive")
        if v_max_v <= 0:
            raise ValueError("maximum voltage must be positive")
        if not 0 <= v_initial_v <= v_max_v:
            raise ValueError("initial voltage outside [0, v_max]")
        if leak_resistance_ohm <= 0:
            raise ValueError("leak resistance must be positive")
        if min_charge_current_a < 0:
            raise ValueError("minimum charge current cannot be negative")
        self.capacitance_f = capacitance_f
        self.v_max_v = v_max_v
        self.leak_resistance_ohm = leak_resistance_ohm
        self.efficiency = efficiency
        self.min_charge_current_a = min_charge_current_a
        self._energy_j = 0.5 * capacitance_f * v_initial_v * v_initial_v
        # Cumulative accounting.
        self.total_charged_j = 0.0
        self.total_delivered_j = 0.0
        self.total_leaked_j = 0.0
        self.total_wasted_j = 0.0

    # -- state -------------------------------------------------------------

    @property
    def energy_j(self) -> float:
        """Stored energy, joules."""
        return self._energy_j

    @property
    def energy_max_j(self) -> float:
        """Capacity at rated voltage."""
        return 0.5 * self.capacitance_f * self.v_max_v * self.v_max_v

    @property
    def voltage_v(self) -> float:
        """Terminal voltage implied by the stored energy."""
        return math.sqrt(2.0 * self._energy_j / self.capacitance_f)

    @property
    def state_of_charge(self) -> float:
        """Stored energy as a fraction of capacity."""
        return self._energy_j / self.energy_max_j

    def set_energy(self, energy_j: float) -> None:
        """Force the stored energy (test/benchmark setup helper)."""
        if not 0 <= energy_j <= self.energy_max_j + 1e-15:
            raise ValueError("energy outside [0, capacity]")
        self._energy_j = min(energy_j, self.energy_max_j)

    # -- dynamics ------------------------------------------------------------

    def step(self, p_in_w: float, p_load_w: float, dt_s: float) -> StorageStep:
        """Advance one tick: charge from the harvester, leak, feed the load.

        Ordering within a tick: input charging first, then leakage,
        then load draw.  If the load cannot be fully supplied the step
        reports ``deficit=True`` and delivers what was available.
        """
        if p_in_w < 0 or p_load_w < 0:
            raise ValueError("powers cannot be negative")
        if dt_s <= 0:
            raise ValueError("dt must be positive")

        wasted = 0.0

        # -- charge ------------------------------------------------------
        voltage = self.voltage_v
        input_energy = p_in_w * dt_s
        blocked = (
            self.min_charge_current_a > 0.0
            and voltage > 0.0
            and p_in_w < self.min_charge_current_a * voltage
        )
        if blocked or input_energy == 0.0:
            charged = 0.0
            wasted += input_energy
        else:
            eta = self.efficiency(voltage)
            charged = input_energy * eta
            wasted += input_energy - charged
            headroom = self.energy_max_j - self._energy_j
            if charged > headroom:
                wasted += charged - headroom
                charged = headroom
            self._energy_j += charged

        # -- leak ---------------------------------------------------------
        voltage = self.voltage_v
        leaked = min(
            self._energy_j, voltage * voltage / self.leak_resistance_ohm * dt_s
        )
        self._energy_j -= leaked

        # -- load -----------------------------------------------------------
        demand = p_load_w * dt_s
        delivered = min(demand, self._energy_j)
        self._energy_j -= delivered
        deficit = delivered < demand - 1e-18

        self.total_charged_j += charged
        self.total_delivered_j += delivered
        self.total_leaked_j += leaked
        self.total_wasted_j += wasted
        return StorageStep(
            delivered_j=delivered,
            charged_j=charged,
            leaked_j=leaked,
            wasted_j=wasted,
            deficit=deficit,
        )

    def draw(self, energy_j: float) -> float:
        """Withdraw up to ``energy_j`` immediately; returns the amount drawn."""
        if energy_j < 0:
            raise ValueError("cannot draw negative energy")
        drawn = min(energy_j, self._energy_j)
        self._energy_j -= drawn
        self.total_delivered_j += drawn
        return drawn

    def charge_many(
        self,
        p_in_w,
        start: int,
        stop: int,
        dt_s: float,
        stop_energy_j: Optional[float] = None,
    ):
        """Bulk zero-load charging: the fast-forward primitive.

        Steps through ``p_in_w[start:stop]`` exactly as repeated
        ``step(p, 0.0, dt_s)`` calls would — the same IEEE-754
        operations in the same order, so the stored energy and the
        cumulative ledger stay bit-identical to the per-tick path —
        but in one tight loop with no :class:`StorageStep` allocation
        or attribute traffic.

        Stops *after* the first tick on which the stored energy
        reaches ``stop_energy_j`` (the threshold-crossing tick is
        consumed, matching the platform state machines, which charge
        first and test the threshold second).  Returns
        ``(ticks_consumed, crossed)``.
        """
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        energy = self._energy_j
        capacity = 0.5 * self.capacitance_f * self.v_max_v * self.v_max_v
        capacitance = self.capacitance_f
        min_current = self.min_charge_current_a
        leak_ohm = self.leak_resistance_ohm
        curve = self.efficiency
        eta_peak = curve.eta_peak
        eta_floor = curve.eta_floor
        v_opt = curve.v_opt_v
        v_span = curve.v_span_v
        # A flat curve (eta_floor == eta_peak) is voltage-independent:
        # max(eta, eta_peak * (1 - x**2)) == eta exactly, so hoisting
        # it out of the loop cannot change a single bit.
        flat_eta = eta_peak if eta_floor == eta_peak else None
        total_charged = self.total_charged_j
        total_leaked = self.total_leaked_j
        total_wasted = self.total_wasted_j
        target = math.inf if stop_energy_j is None else stop_energy_j
        sqrt = math.sqrt
        index = start
        crossed = False
        while index < stop:
            p_in = p_in_w[index]
            index += 1
            wasted = 0.0
            voltage = sqrt(2.0 * energy / capacitance)
            input_energy = p_in * dt_s
            blocked = (
                min_current > 0.0
                and voltage > 0.0
                and p_in < min_current * voltage
            )
            if blocked or input_energy == 0.0:
                charged = 0.0
                wasted += input_energy
            else:
                if flat_eta is not None:
                    eta = flat_eta
                else:
                    offset = (voltage - v_opt) / v_span
                    eta = eta_peak * (1.0 - offset * offset)
                    if eta < eta_floor:
                        eta = eta_floor
                charged = input_energy * eta
                wasted += input_energy - charged
                headroom = capacity - energy
                if charged > headroom:
                    wasted += charged - headroom
                    charged = headroom
                energy += charged
            voltage = sqrt(2.0 * energy / capacitance)
            leaked = voltage * voltage / leak_ohm * dt_s
            if leaked > energy:
                leaked = energy
            energy -= leaked
            total_charged += charged
            total_leaked += leaked
            total_wasted += wasted
            if energy >= target:
                crossed = True
                break
        self._energy_j = energy
        self.total_charged_j = total_charged
        self.total_leaked_j = total_leaked
        self.total_wasted_j = total_wasted
        return index - start, crossed

    # -- fleet struct-of-arrays contract -------------------------------------

    def soa_params(self) -> dict:
        """Scalar parameters for the fleet SoA charge kernel.

        The vectorized kernel (:mod:`repro.fleet.soa`) evaluates the
        same per-tick float chain as :meth:`charge_many` — sqrt, the
        efficiency parabola, headroom clip, leak — elementwise across
        many devices, so these must be exactly the values the scalar
        loop hoists.  ``capacity_j`` in particular is the same
        ``0.5 * C * v_max²`` product :meth:`charge_many` computes.
        """
        curve = self.efficiency
        return {
            "capacitance_f": self.capacitance_f,
            "capacity_j": 0.5 * self.capacitance_f * self.v_max_v * self.v_max_v,
            "leak_ohm": self.leak_resistance_ohm,
            "min_current_a": self.min_charge_current_a,
            "eta_peak": curve.eta_peak,
            "eta_floor": curve.eta_floor,
            "v_opt_v": curve.v_opt_v,
            "v_span_v": curve.v_span_v,
        }

    def soa_state(self):
        """``(energy, charged, leaked, wasted)`` for the fleet kernel."""
        return (
            self._energy_j,
            self.total_charged_j,
            self.total_leaked_j,
            self.total_wasted_j,
        )

    def soa_restore(
        self,
        energy_j: float,
        charged_j: float,
        leaked_j: float,
        wasted_j: float,
    ) -> None:
        """Adopt state evolved by the fleet SoA kernel.

        The kernel's arithmetic is bit-identical to
        :meth:`charge_many`, so this is a plain assignment — no
        clamping, which would break the bit-for-bit guarantee.
        """
        self._energy_j = energy_j
        self.total_charged_j = charged_j
        self.total_leaked_j = leaked_j
        self.total_wasted_j = wasted_j

    # -- observability -------------------------------------------------------

    def bind_gauges(self, registry, platform: str = "storage") -> None:
        """Register callback gauges on a metrics registry.

        The gauges sample this capacitor lazily when the registry is
        read — the simulation hot path is untouched.  Covers the live
        state (energy, voltage, state of charge) and the cumulative
        energy ledger (charged / delivered / leaked / wasted).
        """
        live = {
            "storage_energy_j": lambda: self._energy_j,
            "storage_voltage_v": lambda: self.voltage_v,
            "storage_state_of_charge": lambda: self.state_of_charge,
            "storage_charged_total_j": lambda: self.total_charged_j,
            "storage_delivered_total_j": lambda: self.total_delivered_j,
            "storage_leaked_total_j": lambda: self.total_leaked_j,
            "storage_wasted_total_j": lambda: self.total_wasted_j,
        }
        for name, fn in live.items():
            gauge = registry.gauge(
                name, f"capacitor {name}", labels=("platform",)
            )
            gauge.labels(platform=platform).set_function(fn)

    def __repr__(self) -> str:
        return (
            f"Capacitor(C={self.capacitance_f * 1e6:.3g}uF, "
            f"V={self.voltage_v:.3g}/{self.v_max_v:.3g}V, "
            f"E={self._energy_j * 1e6:.3g}uJ)"
        )
