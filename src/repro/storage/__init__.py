"""Energy-storage devices and front-end channels.

The key system-level tradeoff the DATE'17 tutorial identifies is
between (a) trickle-charging a large storage capacitor — paying
leakage, conversion losses, and long wait times — and (b) running an
NVP off a small backup-sized capacitor — paying frequent backup and
restore overheads.  This package models the storage side: a capacitor
with voltage-dependent conversion efficiency, leakage, and minimum
charging current; an idealised storage reference; and single- versus
dual-channel front-end architectures.
"""

from repro.storage.capacitor import Capacitor, ChargeEfficiency, StorageStep
from repro.storage.ideal import IdealStorage
from repro.storage.frontend import DualChannelFrontEnd, SingleChannelFrontEnd
from repro.storage.tiered import TieredStorage

__all__ = [
    "Capacitor",
    "ChargeEfficiency",
    "DualChannelFrontEnd",
    "IdealStorage",
    "SingleChannelFrontEnd",
    "StorageStep",
    "TieredStorage",
]
