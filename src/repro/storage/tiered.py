"""Two-tier energy storage: backup capacitor + overflow reservoir.

A lone backup-sized capacitor wastes every joule that arrives while it
is full — and kinetic harvesters deliver much of their energy in
2000 µW spikes that a 150 nF capacitor cannot absorb.  The two-tier
pattern keeps the small, low-loss capacitor as the NVP's working
supply and spills surplus into a larger reservoir, refilling the
primary from it (through a lossy transfer path) during droughts.

The class implements the standard storage interface
(``step``/``draw``/``energy_j``), so platforms use it exactly like a
single capacitor; thresholds see the *primary* energy, which is what
the NVP's rail actually offers.
"""

from __future__ import annotations

from repro.storage.capacitor import Capacitor, StorageStep


class TieredStorage:
    """A primary capacitor backed by an overflow reservoir.

    Args:
        primary: the small working capacitor (the NVP's rail).
        reservoir: the larger spill-over store.
        transfer_efficiency: efficiency of moving energy between tiers.
        transfer_power_w: maximum refill power from the reservoir into
            the primary.
        refill_fraction: refill whenever primary energy is below this
            fraction of its capacity.
    """

    def __init__(
        self,
        primary: Capacitor,
        reservoir: Capacitor,
        transfer_efficiency: float = 0.85,
        transfer_power_w: float = 500e-6,
        refill_fraction: float = 0.7,
    ) -> None:
        if not 0 < transfer_efficiency <= 1:
            raise ValueError("transfer efficiency must be in (0, 1]")
        if transfer_power_w <= 0:
            raise ValueError("transfer power must be positive")
        if not 0 < refill_fraction <= 1:
            raise ValueError("refill fraction must be in (0, 1]")
        self.primary = primary
        self.reservoir = reservoir
        self.transfer_efficiency = transfer_efficiency
        self.transfer_power_w = transfer_power_w
        self.refill_fraction = refill_fraction
        self.total_spilled_j = 0.0
        self.total_refilled_j = 0.0

    # -- storage interface --------------------------------------------------

    @property
    def energy_j(self) -> float:
        """Energy the NVP's rail can draw on immediately (primary)."""
        return self.primary.energy_j

    @property
    def total_energy_j(self) -> float:
        """Energy across both tiers."""
        return self.primary.energy_j + self.reservoir.energy_j

    @property
    def energy_max_j(self) -> float:
        """Primary capacity (what thresholds are planned against)."""
        return self.primary.energy_max_j

    @property
    def voltage_v(self) -> float:
        """Primary terminal voltage."""
        return self.primary.voltage_v

    def set_energy(self, energy_j: float) -> None:
        """Force the primary's stored energy (test helper)."""
        self.primary.set_energy(energy_j)

    def step(self, p_in_w: float, p_load_w: float, dt_s: float) -> StorageStep:
        """Advance one tick.

        Income charges the primary; whatever the primary cannot accept
        (it is full, or the conversion wasted it while full) spills to
        the reservoir.  When the primary is below the refill level, the
        reservoir pushes up to ``transfer_power_w`` back into it.
        """
        if p_in_w < 0 or p_load_w < 0:
            raise ValueError("powers cannot be negative")
        if dt_s <= 0:
            raise ValueError("dt must be positive")

        headroom = self.primary.energy_max_j - self.primary.energy_j
        # Split income: what the primary can physically hold this tick
        # goes there; the remainder spills toward the reservoir.
        income_j = p_in_w * dt_s
        to_primary_w = min(p_in_w, headroom / dt_s if dt_s > 0 else 0.0)
        spill_w = p_in_w - to_primary_w

        result = self.primary.step(to_primary_w, p_load_w, dt_s)

        if spill_w > 0:
            spill_result = self.reservoir.step(
                spill_w * self.transfer_efficiency, 0.0, dt_s
            )
            self.total_spilled_j += spill_result.charged_j
        del income_j

        # Refill during droughts.
        if (
            self.primary.energy_j
            < self.refill_fraction * self.primary.energy_max_j
            and self.reservoir.energy_j > 0
        ):
            want_j = min(
                self.transfer_power_w * dt_s,
                self.primary.energy_max_j - self.primary.energy_j,
            )
            drawn = self.reservoir.draw(want_j / self.transfer_efficiency)
            refill = drawn * self.transfer_efficiency
            self.primary.set_energy(
                min(self.primary.energy_j + refill, self.primary.energy_max_j)
            )
            self.total_refilled_j += refill

        return result

    def draw(self, energy_j: float) -> float:
        """Withdraw immediately: primary first, then the reservoir."""
        if energy_j < 0:
            raise ValueError("cannot draw negative energy")
        got = self.primary.draw(energy_j)
        if got < energy_j and self.reservoir.energy_j > 0:
            deficit = energy_j - got
            drawn = self.reservoir.draw(deficit / self.transfer_efficiency)
            got += drawn * self.transfer_efficiency
        return min(got, energy_j)

    def __repr__(self) -> str:
        return (
            f"TieredStorage(primary={self.primary.energy_j * 1e6:.3g}uJ, "
            f"reservoir={self.reservoir.energy_j * 1e6:.3g}uJ)"
        )
