"""F15 (extension) — the peripheral-state re-initialisation tax.

The tutorial's open-challenge list: NVFF backup preserves the core,
not the peripherals.  Every wake-up must re-configure the analog
front-end, so at wristwatch emergency rates the recurring tax grows
with peripheral complexity and erodes the NVP's advantage.
"""

from repro.core.config import NVPConfig
from repro.core.nvp import NVPPlatform
from repro.system.peripherals import (
    ADC_10BIT,
    IMAGE_SENSOR,
    PeripheralSet,
    RADIO_TRX,
)
from repro.system.presets import nvp_capacitor
from repro.workloads.base import AbstractWorkload

from common import publish_table, print_header, profiles, simulate

CONFIGS = [
    ("none", []),
    ("adc", [ADC_10BIT]),
    ("adc+sensor", [ADC_10BIT, IMAGE_SENSOR]),
    ("adc+sensor+radio", [ADC_10BIT, IMAGE_SENSOR, RADIO_TRX]),
]


def run_experiment():
    trace = profiles()[0]
    rows = []
    for name, devices in CONFIGS:
        periphs = PeripheralSet(devices)
        platform = NVPPlatform(
            AbstractWorkload(),
            # 2.2 uF: sized so even the full peripheral stack's wake-up
            # cost (re-init energy is part of the start threshold) fits.
            nvp_capacitor(2.2e-6),
            NVPConfig(label=f"nvp+{name}"),
            seed=0,
            peripherals=periphs,
        )
        rows.append((name, simulate(trace, platform), periphs))
    return rows


def test_f15_peripheral_reinit_tax(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_header("F15", "peripheral re-initialisation tax (profile-1)")
    baseline = rows[0][1].forward_progress
    table = []
    for name, result, periphs in rows:
        table.append(
            [
                name,
                result.forward_progress,
                f"{result.forward_progress / baseline:.2f}x",
                periphs.reinits,
                result.restores,
            ]
        )
    publish_table(
        ["peripherals", "FP", "vs bare", "reinits", "restores"], table
    )
    progress = [result.forward_progress for _, result, _ in rows]
    # Shape: each added peripheral class costs forward progress, and
    # the full stack loses a substantial share.
    assert all(a >= b for a, b in zip(progress, progress[1:]))
    assert progress[-1] < 0.9 * progress[0]
