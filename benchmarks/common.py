"""Shared fixtures and helpers for the experiment benchmarks.

Every ``bench_*.py`` file regenerates one table/figure of the
reconstructed evaluation (see DESIGN.md).  Benchmarks print the same
rows/series the figure would show; run with ``-s`` to see them, e.g.::

    pytest benchmarks/ --benchmark-only -s

``NVPSIM_BENCH_DURATION`` (seconds, default 6) scales the simulated
trace length if you want quicker smoke runs or longer, smoother stats.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import List

from repro.harvest.sources import standard_profiles
from repro.harvest.traces import PowerTrace
from repro.system.presets import standard_rectifier
from repro.system.simulator import SystemSimulator

#: Simulated seconds per trace (the published methodology uses 10 s).
BENCH_DURATION_S = float(os.environ.get("NVPSIM_BENCH_DURATION", "6"))

#: Seed shared by every benchmark for reproducibility.
BENCH_SEED = 2017


@lru_cache(maxsize=1)
def profiles() -> tuple:
    """The five standard wristwatch power profiles (cached)."""
    return tuple(standard_profiles(duration_s=BENCH_DURATION_S, seed=BENCH_SEED))


def simulate(trace: PowerTrace, platform, stop_when_finished=False):
    """Run one platform over one trace through the standard front end."""
    return SystemSimulator(
        trace,
        platform,
        rectifier=standard_rectifier(),
        stop_when_finished=stop_when_finished,
    ).run()


def print_header(experiment: str, description: str) -> None:
    """Banner so ``-s`` output reads like the paper's figure list."""
    print()
    print("=" * 72)
    print(f"{experiment}: {description}")
    print("=" * 72)
