"""Shared fixtures and helpers for the experiment benchmarks.

Every ``bench_*.py`` file regenerates one table/figure of the
reconstructed evaluation (see DESIGN.md).  Benchmarks print the same
rows/series the figure would show; run with ``-s`` to see them, e.g.::

    pytest benchmarks/ --benchmark-only -s

``NVPSIM_BENCH_DURATION`` (seconds, default 6) scales the simulated
trace length if you want quicker smoke runs or longer, smoother stats.
"""

from __future__ import annotations

import json
import os
import time
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from repro.exp import ExperimentSpec, ResultCache, SweepRunner
from repro.harvest.sources import standard_profiles
from repro.harvest.traces import PowerTrace
from repro.obs.history import append_record
from repro.obs.manifest import RunManifest
from repro.system.presets import standard_rectifier
from repro.system.simulator import SystemSimulator

#: Simulated seconds per trace (the published methodology uses 10 s).
BENCH_DURATION_S = float(os.environ.get("NVPSIM_BENCH_DURATION", "6"))

#: Seed shared by every benchmark for reproducibility.
BENCH_SEED = 2017

#: Worker processes for engine-backed benchmarks (1 = in-process).
BENCH_JOBS = int(os.environ.get("NVPSIM_BENCH_JOBS", "1"))

#: Set NVPSIM_BENCH_CACHE=1 to reuse the sweep-engine result cache
#: across benchmark runs (off by default so benchmarks always measure
#: fresh simulations).
BENCH_CACHE = os.environ.get("NVPSIM_BENCH_CACHE", "") not in ("", "0")

#: Where machine-readable benchmark results land (one JSON per
#: experiment, rows + run manifest) — the benchmark trajectory.
RESULTS_DIR = os.environ.get(
    "NVPSIM_BENCH_RESULTS",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "results"),
)

#: Benchmark metric history (JSONL trajectory + regression gate input;
#: see :mod:`repro.obs.history` and ``repro bench-report``).
HISTORY_PATH = os.environ.get(
    "NVPSIM_BENCH_HISTORY", os.path.join(RESULTS_DIR, "history.jsonl")
)

#: Per-process accumulation: experiment id -> result payload.
_RESULTS: Dict[str, Dict] = {}
_CURRENT: List[str] = []

#: One history record per (experiment, process run): repeated
#: publishes within one benchmark process upsert a single line.
_RUN_TOKEN = f"{os.getpid():x}-{int(time.time() * 1000):x}"


@lru_cache(maxsize=1)
def profiles() -> tuple:
    """The five standard wristwatch power profiles (cached)."""
    return tuple(standard_profiles(duration_s=BENCH_DURATION_S, seed=BENCH_SEED))


def simulate(trace: PowerTrace, platform, stop_when_finished=False):
    """Run one platform over one trace through the standard front end."""
    return SystemSimulator(
        trace,
        platform,
        rectifier=standard_rectifier(),
        stop_when_finished=stop_when_finished,
    ).run()


def bench_base(**overrides) -> Dict:
    """Engine run-config base shared by the benchmarks.

    Defaults to profile-1 of the standard evaluation set at the
    benchmark duration/seed, through the standard rectifier — the
    exact trace :func:`profiles` returns and :func:`simulate` runs.
    """
    base: Dict = {
        "source": "profile",
        "profile_index": 0,
        "duration_s": BENCH_DURATION_S,
        "seed": BENCH_SEED,
    }
    base.update(overrides)
    return base


def engine_sweep(name, axes, base=None, mode="grid", jobs=None, cache=None):
    """Run a declarative sweep through :mod:`repro.exp` and hydrate it.

    Benchmarks describe their experiment as (base, axes) instead of
    hand-rolled loops; the engine executes it (in parallel when
    ``NVPSIM_BENCH_JOBS`` > 1, cached when ``NVPSIM_BENCH_CACHE`` is
    set) and any failed point raises.

    Returns ``(outcome, results)`` where ``results`` is the
    :class:`~repro.system.result.SimulationResult` list in sweep
    order.
    """
    from repro.obs.ledger import RunLedger, sweep_record

    spec = ExperimentSpec(name=name, base=base or bench_base(), axes=axes,
                          mode=mode)
    if cache is None and BENCH_CACHE:
        cache = ResultCache()
    runner = SweepRunner(jobs=BENCH_JOBS if jobs is None else jobs,
                         cache=cache)
    started = time.time()
    outcome = runner.run(spec.expand())
    ledger = RunLedger.from_env()
    if ledger is not None:
        try:
            ledger.append(sweep_record(
                f"bench:{name}", name, outcome, started, time.time(),
                cache_attached=cache is not None,
            ))
        except OSError:
            pass  # bookkeeping never fails a benchmark
    outcome.raise_on_failure()
    return outcome, outcome.simulation_results()


def print_header(
    experiment: str, description: str, config: Optional[Dict] = None
) -> None:
    """Banner so ``-s`` output reads like the paper's figure list.

    Also opens the experiment's machine-readable result: subsequent
    :func:`publish_table` calls attach their rows to it.  ``config``
    overrides the manifest's run-config record for benchmarks that do
    not use the shared ``NVPSIM_BENCH_DURATION`` knob.
    """
    print()
    print("=" * 72)
    print(f"{experiment}: {description}")
    print("=" * 72)
    _CURRENT[:] = [experiment]
    manifest = RunManifest.collect(
        command=f"benchmark:{experiment}",
        seed=BENCH_SEED,
        config=config if config is not None
        else {"duration_s": BENCH_DURATION_S},
    )
    _RESULTS[experiment] = {
        "experiment": experiment,
        "description": description,
        "tables": [],
        "manifest": manifest.to_dict(),
    }


def _plain(value):
    """Coerce numpy scalars (and anything else) to JSON-safe values."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (ValueError, TypeError):
            pass
    return str(value)


def publish_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Print a table and record it in the experiment's JSON result.

    Drop-in replacement for ``print(format_table(headers, rows))``:
    returns the rendered text after printing it, and appends
    ``{columns, rows}`` to the result opened by the enclosing
    :func:`print_header` call, then (re)writes
    ``<RESULTS_DIR>/<experiment>.json`` with a completed manifest.
    """
    from repro.analysis.report import format_table

    text = format_table(list(headers), [list(row) for row in rows])
    print(text)
    if not _CURRENT:
        return text
    experiment = _CURRENT[0]
    payload = _RESULTS[experiment]
    payload["tables"].append(
        {
            "title": title,
            "columns": [str(h) for h in headers],
            "rows": [[_plain(cell) for cell in row] for row in rows],
        }
    )
    _flush(experiment)
    return text


def _flush(experiment: str) -> None:
    """(Re)write ``<RESULTS_DIR>/<experiment>.json`` with a finished
    manifest."""
    payload = _RESULTS[experiment]
    manifest = RunManifest(**{
        k: v for k, v in payload["manifest"].items()
    })
    payload["manifest"] = manifest.finish().to_dict()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def publish_metrics(metrics: Dict[str, float]) -> Dict[str, float]:
    """Record scalar metrics for the open experiment.

    Merges the values into the experiment's JSON result *and* upserts
    one manifest-stamped record in the benchmark history
    (``HISTORY_PATH``), keyed by ``(experiment, run token)`` so
    repeated publishes from one process update a single line.  The
    history is what ``repro bench-report`` diffs and gates on.

    Returns the experiment's accumulated metrics.
    """
    clean = {name: float(value) for name, value in metrics.items()}
    if not _CURRENT:
        return clean
    experiment = _CURRENT[0]
    payload = _RESULTS[experiment]
    payload.setdefault("metrics", {}).update(clean)
    _flush(experiment)
    append_record(
        HISTORY_PATH,
        experiment,
        payload["metrics"],
        run=_RUN_TOKEN,
        manifest=payload["manifest"],
    )
    return dict(payload["metrics"])
