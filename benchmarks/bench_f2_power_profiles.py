"""F2 — harvested power profiles per source class.

Reconstructs the "power profiles of a watch in daily life" figure:
five 0.1 ms-sampled wristwatch profiles plus one trace per source
class, characterised by mean/peak power and variability.
"""

from repro.harvest.outage import analyze_outages
from repro.harvest.sources import SOURCE_GENERATORS

from common import publish_table, BENCH_DURATION_S, BENCH_SEED, print_header, profiles


def build_rows():
    rows = []
    for trace in profiles():
        stats = analyze_outages(trace)
        rows.append(
            [
                trace.source,
                trace.mean_power_w * 1e6,
                trace.peak_power_w * 1e6,
                float(trace.samples_w.std() / trace.mean_power_w),
                stats.count,
            ]
        )
    for name, generator in sorted(SOURCE_GENERATORS.items()):
        trace = generator(BENCH_DURATION_S, seed=BENCH_SEED)
        stats = analyze_outages(trace)
        rows.append(
            [
                f"src:{name}",
                trace.mean_power_w * 1e6,
                trace.peak_power_w * 1e6,
                float(trace.samples_w.std() / trace.mean_power_w),
                stats.count,
            ]
        )
    return rows


def test_f2_power_profiles(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print_header("F2", "harvested power profiles (0.1 ms sampling)")
    publish_table(
            ["profile", "mean uW", "peak uW", "cv", "emergencies"], rows
        )
    watch_rows = rows[:5]
    # Published envelope: 10-40 uW mean, swings up to ~2000 uW.
    for row in watch_rows:
        assert 8 <= row[1] <= 45
        assert row[2] <= 2000 + 1e-9
    # The wristwatch class is far burstier than thermal.
    by_name = {row[0]: row for row in rows}
    assert by_name["src:wristwatch"][3] > 3 * by_name["src:thermal"][3]
