"""F11 — retention-relaxed ("approximate") backup.

Reconstructs the adaptive-retention result (ISSCC'16 knob,
STT-relaxation literature): shaping per-bit retention to the observed
outage durations cuts backup write energy substantially (log < parabola
< linear < precise), improves forward progress, and costs only
low-order-bit retention failures.
"""

from repro.core.config import NVPConfig
from repro.core.nvp import NVPPlatform
from repro.nvm.retention import LinearPolicy, LogPolicy, ParabolaPolicy
from repro.nvm.sttram import energy_saving_fraction
from repro.nvm.technology import SECONDS_PER_DAY, STT_MRAM
from repro.system.presets import nvp_capacitor
from repro.workloads.base import AbstractWorkload

from common import publish_table, print_header, profiles, simulate

T_LSB = 10e-3  # most outages are milliseconds
T_MSB = STT_MRAM.retention_s

POLICIES = [
    ("precise", None, False),
    ("linear", LinearPolicy(T_LSB, T_MSB), False),
    ("log", LogPolicy(T_LSB, T_MSB), False),
    ("parabola", ParabolaPolicy(T_LSB, T_MSB), False),
    ("log+ecc", LogPolicy(T_LSB, T_MSB), True),
]


def run_experiment():
    trace = profiles()[0]
    rows = []
    for name, policy, ecc in POLICIES:
        # A 1K-word SRAM working set is saved on every backup, which is
        # what puts backup energy in the published 20-30% income share.
        config = NVPConfig(
            technology=STT_MRAM,
            retention_policy=policy,
            sram_backup_words=1024,
            ecc=ecc,
            label=f"nvp-{name}",
        )
        platform = NVPPlatform(AbstractWorkload(), nvp_capacitor(), config, seed=0)
        result = simulate(trace, platform)
        rows.append((name, result))
    return rows


def test_f11_retention_relaxed_backup(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_header("F11", "retention-shaped backup on STT-MRAM (profile-1)")
    device_saving = energy_saving_fraction(10e-3, SECONDS_PER_DAY)
    print(
        f"device-level saving, 1 day -> 10 ms retention: {device_saving:.0%} "
        "(published: 77%)\n"
    )
    table = []
    metrics = {}
    for name, result in rows:
        per_backup_nj = result.backup_energy_j / max(1, result.backups) * 1e9
        flips = result.extras.get("flipped_bits", 0.0)
        corrected = result.extras.get("ecc_corrected", 0.0)
        metrics[name] = (per_backup_nj, result.forward_progress, flips)
        table.append(
            [
                name, result.forward_progress, result.backups, per_backup_nj,
                int(flips), int(corrected),
            ]
        )
    publish_table(
        [
            "policy", "FP", "backups", "nJ/backup", "retention failures",
            "ecc corrected",
        ],
        table,
    )
    fp_gain = metrics["log"][1] / metrics["precise"][1]
    print(f"\nlog-policy FP gain over precise backup: {fp_gain:.2f}x")
    benchmark.extra_info["log_fp_gain"] = round(fp_gain, 3)

    # Shapes: log cheapest; every relaxed policy beats precise on energy;
    # only relaxed policies show retention failures; the freed backup
    # energy turns into extra forward progress.
    assert metrics["log"][0] < metrics["linear"][0] < metrics["precise"][0]
    assert metrics["parabola"][0] < metrics["precise"][0]
    assert metrics["precise"][2] == 0
    assert metrics["log"][2] > 0
    assert fp_gain > 1.02
    assert 0.70 <= device_saving <= 0.80
    # ECC pairing: costs more than bare log but still beats precise,
    # and it actively corrects relaxations on restore.
    assert metrics["log"][0] < metrics["log+ecc"][0] < metrics["precise"][0]
