"""F11 — retention-relaxed ("approximate") backup.

Reconstructs the adaptive-retention result (ISSCC'16 knob,
STT-relaxation literature): shaping per-bit retention to the observed
outage durations cuts backup write energy substantially (log < parabola
< linear < precise), improves forward progress, and costs only
low-order-bit retention failures.
"""

from repro.nvm.sttram import energy_saving_fraction
from repro.nvm.technology import SECONDS_PER_DAY, STT_MRAM

from common import bench_base, engine_sweep, publish_table, print_header

T_LSB = 10e-3  # most outages are milliseconds
T_MSB = STT_MRAM.retention_s


def _shaped(kind):
    return {"kind": kind, "t_lsb_s": T_LSB, "t_msb_s": T_MSB}


POLICIES = [
    ("precise", None, False),
    ("linear", _shaped("linear"), False),
    ("log", _shaped("log"), False),
    ("parabola", _shaped("parabola"), False),
    ("log+ecc", _shaped("log"), True),
]


def run_experiment():
    # A 1K-word SRAM working set is saved on every backup, which is
    # what puts backup energy in the published 20-30% income share.
    _, results = engine_sweep(
        "f11_retention",
        base=bench_base(
            nvp={"technology": "STT-MRAM", "sram_backup_words": 1024}
        ),
        axes={
            "nvp.retention_policy": [policy for _, policy, _ in POLICIES],
            "nvp.ecc": [ecc for _, _, ecc in POLICIES],
        },
        mode="zip",
    )
    return [(name, result)
            for (name, _, _), result in zip(POLICIES, results)]


def test_f11_retention_relaxed_backup(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_header("F11", "retention-shaped backup on STT-MRAM (profile-1)")
    device_saving = energy_saving_fraction(10e-3, SECONDS_PER_DAY)
    print(
        f"device-level saving, 1 day -> 10 ms retention: {device_saving:.0%} "
        "(published: 77%)\n"
    )
    table = []
    metrics = {}
    for name, result in rows:
        per_backup_nj = result.backup_energy_j / max(1, result.backups) * 1e9
        flips = result.extras.get("flipped_bits", 0.0)
        corrected = result.extras.get("ecc_corrected", 0.0)
        metrics[name] = (per_backup_nj, result.forward_progress, flips)
        table.append(
            [
                name, result.forward_progress, result.backups, per_backup_nj,
                int(flips), int(corrected),
            ]
        )
    publish_table(
        [
            "policy", "FP", "backups", "nJ/backup", "retention failures",
            "ecc corrected",
        ],
        table,
    )
    fp_gain = metrics["log"][1] / metrics["precise"][1]
    print(f"\nlog-policy FP gain over precise backup: {fp_gain:.2f}x")
    benchmark.extra_info["log_fp_gain"] = round(fp_gain, 3)

    # Shapes: log cheapest; every relaxed policy beats precise on energy;
    # only relaxed policies show retention failures; the freed backup
    # energy turns into extra forward progress.
    assert metrics["log"][0] < metrics["linear"][0] < metrics["precise"][0]
    assert metrics["parabola"][0] < metrics["precise"][0]
    assert metrics["precise"][2] == 0
    assert metrics["log"][2] > 0
    assert fp_gain > 1.02
    assert 0.70 <= device_saving <= 0.80
    # ECC pairing: costs more than bare log but still beats precise,
    # and it actively corrects relaxations on restore.
    assert metrics["log"][0] < metrics["log+ecc"][0] < metrics["precise"][0]
