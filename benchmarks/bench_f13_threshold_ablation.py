"""F13 — ablation: backup-threshold safety margin.

The design-choice ablation DESIGN.md calls out: the backup threshold
must reserve enough energy to complete a backup under a collapsing
supply.  Too little margin loses volatile work to failed backups and
brownouts; too much margin wastes income on reserve that never runs.
"""

from repro.core.config import NVPConfig
from repro.core.nvp import NVPPlatform
from repro.system.presets import nvp_capacitor
from repro.workloads.base import AbstractWorkload

from common import publish_table, print_header, profiles, simulate

MARGINS = [1.0, 1.2, 1.5, 2.0, 4.0, 8.0]


class UnderestimatingWorkload(AbstractWorkload):
    """Reports 60% of its true run power to the threshold planner.

    Real platforms plan thresholds from *estimated* run power; actual
    instruction mixes can draw more.  The margin exists to absorb
    exactly this estimation error.
    """

    def mean_instruction_energy_j(self) -> float:
        return 0.6 * super().mean_instruction_energy_j()


def run_experiment():
    trace = profiles()[1]
    rows = []
    for margin in MARGINS:
        workload = UnderestimatingWorkload()
        config = NVPConfig(backup_margin=margin, label=f"m={margin:g}")
        platform = NVPPlatform(workload, nvp_capacitor(), config, seed=0)
        rows.append((f"{margin:g}", simulate(trace, platform)))
    # Closed-loop margin control starting from the bare margin.
    adaptive = NVPPlatform(
        UnderestimatingWorkload(),
        nvp_capacitor(),
        NVPConfig(backup_margin=1.0, label="adaptive"),
        seed=0,
        adaptive_margin=True,
    )
    rows.append(("adaptive(1.0)", simulate(trace, adaptive)))
    return rows


def test_f13_backup_margin_ablation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_header("F13", "backup-margin ablation (profile-2, heavy mix)")
    table = [
        [
            label,
            result.forward_progress,
            result.failed_backups,
            result.rollbacks,
            result.lost_instructions,
            result.backups,
        ]
        for label, result in rows
    ]
    publish_table(
        ["margin", "FP", "failed backups", "rollbacks", "lost instr", "backups"],
        table,
    )
    static_rows = rows[: len(MARGINS)]
    adaptive_result = rows[-1][1]
    progress = [result.forward_progress for _, result in static_rows]
    losses = [result.lost_instructions for _, result in static_rows]
    best = max(range(len(MARGINS)), key=lambda i: progress[i])
    print(f"\nbest static margin: {MARGINS[best]:g}")
    print(
        f"adaptive controller: lost {adaptive_result.lost_instructions} "
        f"(static m=1.0 lost {losses[0]}), final margin "
        f"{adaptive_result.extras.get('final_margin', 0):.2f}"
    )
    benchmark.extra_info["best_margin"] = MARGINS[best]
    # Shapes: a bare margin loses substantial work to failed backups;
    # generous margins eliminate it; the closed-loop controller starting
    # at the bare margin recovers most of the loss automatically.
    assert losses[0] > 0
    assert losses[-1] == 0
    assert progress[best] > progress[0]
    assert adaptive_result.lost_instructions < 0.5 * losses[0]
