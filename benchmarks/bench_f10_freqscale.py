"""F10 — clock-frequency scaling under harvested power.

Reconstructs the Spendthrift-class result: the forward-progress-optimal
clock frequency grows with harvested income (leakage dominates at low
clocks, supply collapses at high clocks), so a power-aware frequency
policy beats any fixed clock across income levels.
"""

from repro.core.config import NVPConfig
from repro.core.nvp import NVPPlatform
from repro.harvest.sources import wristwatch_trace
from repro.isa.energy import dvfs_model
from repro.policy.freqscale import PowerAwareFrequencyPolicy, best_frequency, frequency_sweep
from repro.system.presets import nvp_capacitor
from repro.workloads.base import AbstractWorkload

from common import publish_table, BENCH_SEED, print_header, simulate

FREQUENCIES_HZ = [0.25e6, 0.5e6, 1e6, 2e6, 4e6, 8e6]
INCOMES_W = [8e-6, 25e-6, 80e-6, 250e-6]
DURATION_S = 3.0


def run_at(income_w, frequency_hz, seed_offset=0):
    trace = wristwatch_trace(
        DURATION_S, seed=BENCH_SEED + seed_offset, mean_power_w=income_w
    )
    # DVFS: faster clocks need higher VDD, so energy/instruction rises.
    workload = AbstractWorkload(energy_model=dvfs_model(frequency_hz))
    config = NVPConfig(clock_hz=frequency_hz, label=f"{frequency_hz / 1e6:g}MHz")
    platform = NVPPlatform(workload, nvp_capacitor(), config, seed=0)
    return simulate(trace, platform)


def run_experiment():
    table = {}
    policy = PowerAwareFrequencyPolicy()
    for income in INCOMES_W:
        sweep = frequency_sweep(
            FREQUENCIES_HZ, lambda f, income=income: run_at(income, f)
        )
        table[income] = sweep
        winner, _ = best_frequency(sweep)
        policy.add_training_point(income, winner)
    return table, policy


def test_f10_frequency_scaling(benchmark):
    table, policy = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_header("F10", "forward progress vs clock frequency vs income")
    rows = []
    winners = {}
    for income, sweep in table.items():
        fps = [result.forward_progress for _, result in sweep]
        winner, _ = best_frequency(sweep)
        winners[income] = winner
        rows.append([f"{income * 1e6:.0f} uW"] + fps + [f"{winner / 1e6:g} MHz"])
    headers = (
        ["income"] + [f"{f / 1e6:g}MHz" for f in FREQUENCIES_HZ] + ["best"]
    )
    publish_table(headers, rows)
    print("\ntrained income->frequency policy:")
    for income, frequency in policy.table().items():
        print(f"  {income * 1e6:.0f} uW -> {frequency / 1e6:g} MHz")

    # Shape: the winning frequency is non-decreasing with income, and
    # the extremes differ (a crossover exists).
    ordered = [winners[income] for income in INCOMES_W]
    assert all(a <= b for a, b in zip(ordered, ordered[1:]))
    assert ordered[0] < ordered[-1]
