"""BENCH_core — wall-clock of the core tick engine, fast vs. exact.

Times the same simulation twice — once with the steady-state
fast-forward engine (the default), once forced onto the exact per-tick
path (``use_fast_forward=False``) — across the presets that span the
engine's behaviour space, asserts the two paths return bit-identical
:class:`~repro.system.result.SimulationResult`s, and publishes
``benchmarks/results/BENCH_core.json`` as the perf-trajectory baseline
(see ``docs/performance.md``).

Environment knobs::

    NVPSIM_BENCH_PERF_DURATION   simulated seconds per trace (default 60)
    NVPSIM_PERF_MIN_SPEEDUP      floor asserted on the outage-heavy
                                 preset (default 3.0)
    NVPSIM_PERF_MIN_SPEEDUP_CHARGE
                                 floor asserted on the charge-dominated
                                 preset (default 2.0)

Run standalone (CI perf-smoke does) with::

    PYTHONPATH=src python benchmarks/bench_perf_core.py
"""

from __future__ import annotations

import os
import time

from common import print_header, publish_table

from repro.harvest.sources import square_trace, wristwatch_trace
from repro.system.presets import (
    build_checkpoint,
    build_nvp,
    build_oracle,
    build_wait_compute,
    standard_rectifier,
)
from repro.system.simulator import SystemSimulator
from repro.workloads.base import AbstractWorkload

PERF_DURATION_S = float(os.environ.get("NVPSIM_BENCH_PERF_DURATION", "60"))
MIN_SPEEDUP_OUTAGE = float(os.environ.get("NVPSIM_PERF_MIN_SPEEDUP", "3.0"))
MIN_SPEEDUP_CHARGE = float(
    os.environ.get("NVPSIM_PERF_MIN_SPEEDUP_CHARGE", "2.0")
)

#: Trace seed (fixed: the perf trajectory must compare like with like).
PERF_SEED = 2017


def outage_heavy_trace():
    """8% duty square wave: the off/charge-dominated worst case."""
    return square_trace(400e-6, 0.0, 2.0, 0.08, PERF_DURATION_S)


def wristwatch() -> object:
    return wristwatch_trace(PERF_DURATION_S, seed=PERF_SEED)


#: (preset, platform builder, trace factory, asserted min speedup).
#: ``oracle_guard`` never fast-forwards while running — it guards
#: against the fast path taxing run-dominated workloads (no floor).
PRESETS = (
    ("outage_heavy_nvp", build_nvp, outage_heavy_trace, MIN_SPEEDUP_OUTAGE),
    ("charge_dominated_wait", build_wait_compute, outage_heavy_trace,
     MIN_SPEEDUP_CHARGE),
    ("outage_heavy_checkpoint", build_checkpoint, outage_heavy_trace, None),
    ("wristwatch_nvp", build_nvp, wristwatch, None),
    ("oracle_guard", build_oracle, wristwatch, None),
)


def _timed_run(builder, trace, use_fast_forward):
    simulator = SystemSimulator(
        trace,
        builder(AbstractWorkload()),
        rectifier=standard_rectifier(),
        stop_when_finished=False,
        use_fast_forward=use_fast_forward,
    )
    started = time.perf_counter()
    result = simulator.run()
    return result, time.perf_counter() - started, simulator


def run_presets():
    rows = []
    for preset, builder, make_trace, min_speedup in PRESETS:
        trace = make_trace()
        exact_result, exact_s, _ = _timed_run(builder, trace, False)
        fast_result, fast_s, simulator = _timed_run(builder, trace, None)
        identical = fast_result.to_dict() == exact_result.to_dict()
        speedup = exact_s / fast_s if fast_s > 0 else float("inf")
        rows.append({
            "preset": preset,
            "platform": fast_result.label,
            "ticks": len(trace),
            "ticks_fast_forwarded": simulator.ticks_fast_forwarded,
            "ticks_exact": simulator.ticks_exact,
            "exact_s": exact_s,
            "fast_s": fast_s,
            "speedup": speedup,
            "identical": identical,
            "min_speedup": min_speedup,
        })
    return rows


def check_rows(rows):
    for row in rows:
        assert row["identical"], (
            f"{row['preset']}: fast path diverged from the exact path"
        )
        floor = row["min_speedup"]
        if floor is not None:
            assert row["speedup"] >= floor, (
                f"{row['preset']}: {row['speedup']:.2f}x < required "
                f"{floor:.1f}x (exact {row['exact_s']:.3f}s, "
                f"fast {row['fast_s']:.3f}s)"
            )


def publish(rows):
    print_header(
        "BENCH_core",
        f"core tick engine: fast-forward vs exact "
        f"({PERF_DURATION_S:g}s traces)",
        config={
            "duration_s": PERF_DURATION_S,
            "min_speedup_outage": MIN_SPEEDUP_OUTAGE,
            "min_speedup_charge": MIN_SPEEDUP_CHARGE,
        },
    )
    publish_table(
        ["preset", "platform", "ticks", "ff ticks", "exact ticks",
         "exact s", "fast s", "speedup", "identical"],
        [
            [
                row["preset"],
                row["platform"],
                row["ticks"],
                row["ticks_fast_forwarded"],
                row["ticks_exact"],
                f"{row['exact_s']:.3f}",
                f"{row['fast_s']:.3f}",
                f"{row['speedup']:.2f}x",
                row["identical"],
            ]
            for row in rows
        ],
    )


def test_perf_core(benchmark):
    rows = benchmark.pedantic(run_presets, rounds=1, iterations=1)
    publish(rows)
    for row in rows:
        if row["min_speedup"] is not None:
            benchmark.extra_info[f"{row['preset']}_speedup"] = round(
                row["speedup"], 2
            )
    check_rows(rows)


def main() -> int:
    rows = run_presets()
    publish(rows)
    check_rows(rows)
    print("\nBENCH_core: all presets bit-identical, speedup floors met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
