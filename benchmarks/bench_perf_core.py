"""BENCH_core — wall-clock of the core tick engine, engines vs. exact.

Times the same simulation four ways — both bulk engines enabled (the
default: dormant-tick fast-forward + the batched active-tick exact
kernel), fast-forward only (``use_exact_batch=False``), and forced
onto the scalar per-tick path (both engines off) — across the presets
that span the engine's behaviour space, asserts every path returns
bit-identical :class:`~repro.system.result.SimulationResult`s, and
publishes ``benchmarks/results/BENCH_core.json`` as the
perf-trajectory baseline (see ``docs/performance.md``).

Each preset also runs *observed* — an event bus with a non-TICK
subscriber attached — which must keep both bulk engines (run-length
event synthesis, PR 5) and stay within
``NVPSIM_PERF_MAX_OBS_OVERHEAD`` of the unobserved fast wall-clock.

Each row splits ticks by phase: ``dormant_ticks`` were fast-forwarded,
``active_ticks`` executed (batched or scalar) while powered on.

Environment knobs::

    NVPSIM_BENCH_PERF_DURATION   simulated seconds per trace (default 60)
    NVPSIM_PERF_MIN_SPEEDUP      floor asserted on the outage-heavy
                                 preset (default 3.0)
    NVPSIM_PERF_MIN_SPEEDUP_CHARGE
                                 floor asserted on the charge-dominated
                                 preset (default 2.0)
    NVPSIM_PERF_MIN_SPEEDUP_BATCH
                                 floor asserted on the run-dominated
                                 oracle preset, which only the batched
                                 exact kernel can speed up (default 2.0)
    NVPSIM_PERF_MIN_SPEEDUP_ISA  end-to-end floor asserted on the
                                 compiled (NV16) preset against the
                                 scalar instruction interpreter with
                                 the block engine disabled
                                 (default 2.0)
    NVPSIM_PERF_MAX_OBS_OVERHEAD max observed/fast wall-clock ratio
                                 asserted on floored presets
                                 (default 1.3)
    NVPSIM_PERF_MAX_OBS_OVERHEAD_ACTIVE
                                 same ceiling for run-dominated
                                 presets, where event synthesis has no
                                 dormant bulk to amortise against
                                 (default 2.5)

Run standalone (CI perf-smoke does) with::

    PYTHONPATH=src python benchmarks/bench_perf_core.py
"""

from __future__ import annotations

import os
import time

from common import print_header, publish_metrics, publish_table

from repro.harvest.sources import square_trace, wristwatch_trace
from repro.isa import blockengine
from repro.obs import events as ev
from repro.obs.events import EventBus
from repro.system.presets import (
    build_checkpoint,
    build_nvp,
    build_oracle,
    build_wait_compute,
    standard_rectifier,
)
from repro.system.simulator import SystemSimulator
from repro.workloads.base import AbstractWorkload
from repro.workloads.suite import build_kernel, make_functional_workload

PERF_DURATION_S = float(os.environ.get("NVPSIM_BENCH_PERF_DURATION", "60"))
MIN_SPEEDUP_OUTAGE = float(os.environ.get("NVPSIM_PERF_MIN_SPEEDUP", "3.0"))
MIN_SPEEDUP_CHARGE = float(
    os.environ.get("NVPSIM_PERF_MIN_SPEEDUP_CHARGE", "2.0")
)
MIN_SPEEDUP_BATCH = float(
    os.environ.get("NVPSIM_PERF_MIN_SPEEDUP_BATCH", "2.0")
)
MIN_SPEEDUP_ISA = float(
    os.environ.get("NVPSIM_PERF_MIN_SPEEDUP_ISA", "2.0")
)
MAX_OBS_OVERHEAD = float(
    os.environ.get("NVPSIM_PERF_MAX_OBS_OVERHEAD", "1.3")
)
MAX_OBS_OVERHEAD_ACTIVE = float(
    os.environ.get("NVPSIM_PERF_MAX_OBS_OVERHEAD_ACTIVE", "2.5")
)

#: Trace seed (fixed: the perf trajectory must compare like with like).
PERF_SEED = 2017


def outage_heavy_trace():
    """8% duty square wave: the off/charge-dominated worst case."""
    return square_trace(400e-6, 0.0, 2.0, 0.08, PERF_DURATION_S)


def wristwatch() -> object:
    return wristwatch_trace(PERF_DURATION_S, seed=PERF_SEED)


def abstract_workload():
    return AbstractWorkload()


def run_heavy_trace():
    """90% duty square wave: active (executing) ticks dominate."""
    return square_trace(400e-6, 0.0, 2.0, 0.9, PERF_DURATION_S)


def fir_workload():
    """A compiled NV16 FIR run sized to outlast the whole trace."""
    frames = max(2, int(PERF_DURATION_S * 10))
    return make_functional_workload(build_kernel("fir"), frames=frames)


#: (preset, platform builder, workload factory, trace factory,
#: asserted min speedup, asserted min isa speedup).
#: ``oracle_guard`` never fast-forwards while running — its floor is
#: carried entirely by the batched active-tick exact kernel.
#: ``nvp_fir_compiled`` runs a real NV16 program; its floor compares
#: the full engine stack against the scalar instruction interpreter
#: (block engine off, per-tick loop).
PRESETS = (
    ("outage_heavy_nvp", build_nvp, abstract_workload, outage_heavy_trace,
     MIN_SPEEDUP_OUTAGE, None),
    ("charge_dominated_wait", build_wait_compute, abstract_workload,
     outage_heavy_trace, MIN_SPEEDUP_CHARGE, None),
    ("outage_heavy_checkpoint", build_checkpoint, abstract_workload,
     outage_heavy_trace, None, None),
    ("wristwatch_nvp", build_nvp, abstract_workload, wristwatch, None, None),
    ("oracle_guard", build_oracle, abstract_workload, wristwatch,
     MIN_SPEEDUP_BATCH, None),
    ("nvp_fir_compiled", build_nvp, fir_workload, run_heavy_trace,
     None, MIN_SPEEDUP_ISA),
)


def _timed_run(builder, workload_factory, trace, use_fast_forward,
               use_exact_batch, bus=None):
    simulator = SystemSimulator(
        trace,
        builder(workload_factory()),
        rectifier=standard_rectifier(),
        stop_when_finished=False,
        bus=bus,
        use_fast_forward=use_fast_forward,
        use_exact_batch=use_exact_batch,
    )
    started = time.perf_counter()
    result = simulator.run()
    return result, time.perf_counter() - started, simulator


def run_presets():
    rows = []
    for (preset, builder, make_workload, make_trace, min_speedup,
         isa_floor) in PRESETS:
        trace = make_trace()
        exact_result, exact_s, _ = _timed_run(
            builder, make_workload, trace, False, False
        )
        fast_result, fast_s, simulator = _timed_run(
            builder, make_workload, trace, None, None
        )
        nobatch_result, nobatch_s, _ = _timed_run(
            builder, make_workload, trace, None, False
        )
        bus = EventBus()
        log = bus.record(names=ev.NON_TICK_EVENT_NAMES)
        observed_result, observed_s, observed_sim = _timed_run(
            builder, make_workload, trace, None, None, bus=bus
        )
        noengine_s = None
        noengine_identical = True
        if isa_floor is not None:
            # The scalar instruction interpreter: block engine off,
            # per-tick advance.  Dormant fast-forward stays on in both
            # runs, so the ratio isolates active-tick execution plus
            # batching — the two layers this preset exists to gate.
            blockengine.set_enabled(False)
            try:
                noengine_result, noengine_s, _ = _timed_run(
                    builder, make_workload, trace, None, False
                )
            finally:
                blockengine.set_enabled(True)
            noengine_identical = (
                noengine_result.to_dict() == exact_result.to_dict()
            )
        identical = fast_result.to_dict() == exact_result.to_dict()
        nobatch_identical = nobatch_result.to_dict() == exact_result.to_dict()
        observed_identical = (
            observed_result.to_dict() == exact_result.to_dict()
        )
        speedup = exact_s / fast_s if fast_s > 0 else float("inf")
        rows.append({
            "preset": preset,
            "platform": fast_result.label,
            "ticks": len(trace),
            "ticks_fast_forwarded": simulator.ticks_fast_forwarded,
            "ticks_batched": simulator.ticks_batched,
            "ticks_exact": simulator.ticks_exact,
            "active_ticks": simulator.ticks_batched + simulator.ticks_exact,
            "dormant_ticks": simulator.ticks_fast_forwarded,
            "exact_s": exact_s,
            "fast_s": fast_s,
            "nobatch_s": nobatch_s,
            "observed_s": observed_s,
            "obs_overhead": observed_s / fast_s if fast_s > 0 else 1.0,
            "events": len(log),
            "speedup": speedup,
            "batch_speedup": nobatch_s / fast_s if fast_s > 0 else 1.0,
            "identical": identical,
            "nobatch_identical": nobatch_identical,
            "observed_identical": observed_identical,
            "observed_fast_forwarded": observed_sim.ticks_fast_forwarded,
            "observed_batched": observed_sim.ticks_batched,
            "min_speedup": min_speedup,
            "noengine_s": noengine_s,
            "noengine_identical": noengine_identical,
            "isa_speedup": (
                noengine_s / fast_s
                if noengine_s is not None and fast_s > 0 else None
            ),
            "instr_per_s": (
                fast_result.total_executed / fast_s if fast_s > 0 else 0.0
            ),
            "isa_floor": isa_floor,
        })
    return rows


def check_rows(rows):
    for row in rows:
        assert row["identical"], (
            f"{row['preset']}: fast path diverged from the exact path"
        )
        assert row["nobatch_identical"], (
            f"{row['preset']}: fast-forward-only path diverged"
        )
        assert row["observed_identical"], (
            f"{row['preset']}: observed fast path diverged"
        )
        # Engine selection depends only on the subscription set, so
        # the observed run must route the exact same ticks through
        # each engine.
        assert row["observed_fast_forwarded"] == row["ticks_fast_forwarded"], (
            f"{row['preset']}: observed run fast-forwarded "
            f"{row['observed_fast_forwarded']} ticks, unobserved "
            f"{row['ticks_fast_forwarded']}"
        )
        assert row["observed_batched"] == row["ticks_batched"], (
            f"{row['preset']}: observed run batched "
            f"{row['observed_batched']} ticks, unobserved "
            f"{row['ticks_batched']}"
        )
        assert row["events"] >= 2, (
            f"{row['preset']}: observed run produced no events"
        )
        assert row["noengine_identical"], (
            f"{row['preset']}: scalar-interpreter path diverged"
        )
        isa_floor = row["isa_floor"]
        if isa_floor is not None:
            assert row["isa_speedup"] >= isa_floor, (
                f"{row['preset']}: block engine {row['isa_speedup']:.2f}x "
                f"< required {isa_floor:.1f}x over the scalar interpreter "
                f"(interpreter {row['noengine_s']:.3f}s, "
                f"engine {row['fast_s']:.3f}s)"
            )
        floor = row["min_speedup"]
        if floor is not None:
            assert row["speedup"] >= floor, (
                f"{row['preset']}: {row['speedup']:.2f}x < required "
                f"{floor:.1f}x (exact {row['exact_s']:.3f}s, "
                f"fast {row['fast_s']:.3f}s)"
            )
            # A run-dominated preset has no dormant bulk to amortise
            # event synthesis against, so its ceiling is looser.
            ceiling = (
                MAX_OBS_OVERHEAD if row["dormant_ticks"]
                else MAX_OBS_OVERHEAD_ACTIVE
            )
            assert row["observed_s"] <= ceiling * row["fast_s"], (
                f"{row['preset']}: observed run {row['observed_s']:.3f}s "
                f"exceeds {ceiling:.2f}x the unobserved fast "
                f"path ({row['fast_s']:.3f}s)"
            )


def publish(rows):
    print_header(
        "BENCH_core",
        f"core tick engine: bulk engines vs exact "
        f"({PERF_DURATION_S:g}s traces)",
        config={
            "duration_s": PERF_DURATION_S,
            "min_speedup_outage": MIN_SPEEDUP_OUTAGE,
            "min_speedup_charge": MIN_SPEEDUP_CHARGE,
            "min_speedup_batch": MIN_SPEEDUP_BATCH,
            "min_speedup_isa": MIN_SPEEDUP_ISA,
        },
    )
    publish_table(
        ["preset", "platform", "ticks", "dormant", "batched", "exact",
         "exact s", "fast s", "nobatch s", "observed s", "obs x",
         "speedup", "batch x", "isa x", "identical"],
        [
            [
                row["preset"],
                row["platform"],
                row["ticks"],
                row["dormant_ticks"],
                row["ticks_batched"],
                row["ticks_exact"],
                f"{row['exact_s']:.3f}",
                f"{row['fast_s']:.3f}",
                f"{row['nobatch_s']:.3f}",
                f"{row['observed_s']:.3f}",
                f"{row['obs_overhead']:.2f}x",
                f"{row['speedup']:.2f}x",
                f"{row['batch_speedup']:.2f}x",
                "-" if row["isa_speedup"] is None
                else f"{row['isa_speedup']:.2f}x",
                row["identical"] and row["nobatch_identical"]
                and row["observed_identical"]
                and row["noengine_identical"],
            ]
            for row in rows
        ],
    )
    metrics = {}
    total_ticks = 0
    total_fast_s = 0.0
    for row in rows:
        preset = row["preset"]
        metrics[f"{preset}.speedup"] = row["speedup"]
        metrics[f"{preset}.batch_speedup"] = row["batch_speedup"]
        metrics[f"{preset}.exact_s"] = row["exact_s"]
        metrics[f"{preset}.fast_s"] = row["fast_s"]
        metrics[f"{preset}.nobatch_s"] = row["nobatch_s"]
        metrics[f"{preset}.observed_s"] = row["observed_s"]
        metrics[f"{preset}.obs_overhead"] = row["obs_overhead"]
        metrics[f"{preset}.events"] = row["events"]
        metrics[f"{preset}.active_ticks_per_s"] = (
            row["active_ticks"] / row["fast_s"] if row["fast_s"] > 0 else 0.0
        )
        metrics[f"{preset}.dormant_ticks_per_s"] = (
            row["dormant_ticks"] / row["fast_s"] if row["fast_s"] > 0 else 0.0
        )
        if row["isa_speedup"] is not None:
            metrics[f"{preset}.isa_speedup"] = row["isa_speedup"]
            metrics[f"{preset}.noengine_s"] = row["noengine_s"]
            metrics[f"{preset}.instr_per_s"] = row["instr_per_s"]
        total_ticks += row["ticks"]
        total_fast_s += row["fast_s"]
    metrics["throughput_ticks_per_s"] = (
        total_ticks / total_fast_s if total_fast_s > 0 else 0.0
    )
    publish_metrics(metrics)


def test_perf_core(benchmark):
    rows = benchmark.pedantic(run_presets, rounds=1, iterations=1)
    publish(rows)
    for row in rows:
        if row["min_speedup"] is not None:
            benchmark.extra_info[f"{row['preset']}_speedup"] = round(
                row["speedup"], 2
            )
    check_rows(rows)


def main() -> int:
    rows = run_presets()
    publish(rows)
    check_rows(rows)
    print("\nBENCH_core: all presets bit-identical, speedup floors met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
