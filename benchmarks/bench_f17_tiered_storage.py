"""F17 (extension) — two-tier storage: backup capacitor + reservoir.

A reservoir only earns its keep when harvested spikes exceed what the
core can consume *plus* what the primary capacitor can absorb.  The
experiment therefore crosses reservoir presence with core clock: at
1 MHz (≈230 µW draw) the core itself swallows nearly every spike and
the tier adds ~1%; at 0.25 MHz (≈70 µW) the surplus is real and the
reservoir recovers several percent of forward progress.  The honest
shape: *tier gain grows as core power shrinks relative to spike
power* — storage architecture and operating point must be co-designed.
"""

from repro.core.config import NVPConfig
from repro.core.nvp import NVPPlatform
from repro.isa.energy import dvfs_model
from repro.storage.tiered import TieredStorage
from repro.system.presets import nvp_capacitor, supercap
from repro.workloads.base import AbstractWorkload

from common import publish_table, print_header, profiles, simulate

CLOCKS_HZ = [0.25e6, 1e6]
PRIMARY_F = 22e-9
RESERVOIR_F = 10e-6


def make_platform(clock_hz, with_reservoir):
    workload = AbstractWorkload(energy_model=dvfs_model(clock_hz))
    if with_reservoir:
        storage = TieredStorage(
            nvp_capacitor(PRIMARY_F),
            supercap(RESERVOIR_F),
            transfer_efficiency=0.85,
            transfer_power_w=200e-6,
        )
    else:
        storage = nvp_capacitor(PRIMARY_F)
    label = f"{clock_hz / 1e6:g}MHz{'+res' if with_reservoir else ''}"
    return NVPPlatform(workload, storage, NVPConfig(clock_hz=clock_hz, label=label), seed=0), storage


def run_experiment():
    rows = []
    for clock in CLOCKS_HZ:
        per_clock = []
        for trace in profiles()[:3]:
            alone, _ = make_platform(clock, with_reservoir=False)
            alone_result = simulate(trace, alone)
            tiered, storage = make_platform(clock, with_reservoir=True)
            tiered_result = simulate(trace, tiered)
            per_clock.append(
                (trace.source, alone_result, tiered_result, storage)
            )
        rows.append((clock, per_clock))
    return rows


def test_f17_two_tier_storage(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_header(
        "F17", "reservoir gain vs core clock (22 nF primary, +10 uF reservoir)"
    )
    table = []
    mean_gains = {}
    for clock, per_clock in rows:
        gains = []
        for source, alone, tiered, storage in per_clock:
            gain = tiered.forward_progress / max(1, alone.forward_progress)
            gains.append(gain)
            table.append(
                [
                    f"{clock / 1e6:g} MHz",
                    source,
                    alone.forward_progress,
                    tiered.forward_progress,
                    f"{gain:.3f}x",
                    storage.total_spilled_j * 1e6,
                ]
            )
        mean_gains[clock] = sum(gains) / len(gains)
    publish_table(
        ["clock", "profile", "primary only", "+reservoir", "gain", "spilled uJ"],
        table,
    )
    slow, fast = mean_gains[CLOCKS_HZ[0]], mean_gains[CLOCKS_HZ[1]]
    print(
        f"\nmean reservoir gain: {slow:.3f}x at "
        f"{CLOCKS_HZ[0] / 1e6:g} MHz vs {fast:.3f}x at {CLOCKS_HZ[1] / 1e6:g} MHz"
    )
    benchmark.extra_info["gain_slow_clock"] = round(slow, 4)
    benchmark.extra_info["gain_fast_clock"] = round(fast, 4)
    # Shapes: the reservoir never hurts, and its gain is larger for the
    # low-power core (whose run power cannot absorb the spikes).
    assert slow > fast
    assert slow > 1.03
    assert fast >= 0.99
