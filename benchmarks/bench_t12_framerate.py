"""T12 — application frame rates on harvested power.

Reconstructs the end-to-end application table: seconds per frame for
real image kernels (functional NV16 execution) on the wristwatch
harvester, NVP versus wait-and-compute.  Expected shape: the NVP
processes frames severalfold faster and both are far from the
continuously-powered oracle.
"""

from repro.analysis.report import ratio
from repro.system.presets import build_nvp, build_oracle, build_wait_compute
from repro.workloads.suite import build_kernel, make_functional_workload

from common import publish_table, BENCH_DURATION_S, print_header, profiles, simulate

KERNELS = [
    ("sobel", {"size": 16}),
    ("median", {"size": 8}),
    ("integral", {"size": 16}),
]
FRAMES = 40  # more than any platform completes in the window


def seconds_per_frame(result):
    if result.units_completed == 0:
        return float("inf")
    return result.duration_s / result.units_completed


def run_experiment():
    trace = profiles()[0]
    rows = []
    for name, params in KERNELS:
        build = build_kernel(name, **params)
        nvp = simulate(
            trace, build_nvp(make_functional_workload(build, frames=FRAMES))
        )
        wait = simulate(
            trace, build_wait_compute(make_functional_workload(build, frames=FRAMES))
        )
        oracle = simulate(
            trace,
            build_oracle(make_functional_workload(build, frames=FRAMES)),
            stop_when_finished=True,
        )
        rows.append((name, nvp, wait, oracle))
    return rows


def test_t12_application_frame_rates(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_header(
        "T12", f"seconds/frame on profile-1 ({BENCH_DURATION_S:.0f}s window)"
    )
    table = []
    for name, nvp, wait, oracle in rows:
        table.append(
            [
                name,
                nvp.units_completed,
                seconds_per_frame(nvp),
                wait.units_completed,
                seconds_per_frame(wait),
                seconds_per_frame(oracle),
                f"{ratio(nvp.units_completed, max(1, wait.units_completed)):.1f}x",
            ]
        )
    publish_table(
        [
            "kernel", "nvp frames", "nvp s/f", "wait frames", "wait s/f",
            "oracle s/f", "nvp/wait",
        ],
        table,
    )
    for name, nvp, wait, oracle in rows:
        # The NVP must complete frames, and at least as many as
        # wait-and-compute; the oracle bounds both.
        assert nvp.units_completed > 0, name
        assert nvp.units_completed >= wait.units_completed, name
        assert oracle.units_completed >= nvp.units_completed, name
