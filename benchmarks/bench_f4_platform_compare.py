"""F4 — forward progress: NVP vs wait-and-compute vs sw-checkpointing.

The tutorial's headline system-level comparison.  Expected shape: the
NVP outperforms wait-and-compute by roughly 2-5x (the published band)
and software checkpointing sits between them; the oracle bounds all.
"""

from repro.analysis.report import ratio

from common import engine_sweep, publish_table, print_header, profiles

#: ``(display label, engine platform preset)`` in table order.
PLATFORMS = [
    ("nvp", "nvp"),
    ("wait-compute", "wait"),
    ("sw-checkpoint", "checkpoint"),
    ("oracle", "oracle"),
]

N_PROFILES = 5


def run_comparison():
    _, results = engine_sweep(
        "f4_platform_compare",
        axes={
            "platform": [preset for _, preset in PLATFORMS],
            "profile_index": list(range(N_PROFILES)),
        },
    )
    # Grid order: the profile axis varies fastest within each platform.
    table = {}
    for row, (label, _) in enumerate(PLATFORMS):
        table[label] = results[row * N_PROFILES:(row + 1) * N_PROFILES]
    return table


def test_f4_platform_comparison(benchmark):
    table = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_header("F4", "forward progress per platform per profile")
    rows = []
    for label, results in table.items():
        fps = [r.forward_progress for r in results]
        rows.append([label] + fps + [sum(fps) / len(fps)])
    headers = ["platform"] + [t.source for t in profiles()] + ["mean"]
    publish_table(headers, rows)

    nvp_mean = sum(r.forward_progress for r in table["nvp"]) / len(profiles())
    wait_mean = sum(
        r.forward_progress for r in table["wait-compute"]
    ) / len(profiles())
    checkpoint_mean = sum(
        r.forward_progress for r in table["sw-checkpoint"]
    ) / len(profiles())
    oracle_mean = sum(r.forward_progress for r in table["oracle"]) / len(profiles())

    nvp_vs_wait = ratio(nvp_mean, wait_mean)
    print(f"\nNVP / wait-compute  = {nvp_vs_wait:.2f}x  (published band: 2.2-5x)")
    print(f"NVP / sw-checkpoint = {ratio(nvp_mean, checkpoint_mean):.2f}x")
    print(f"NVP / oracle        = {ratio(nvp_mean, oracle_mean):.2%} of upper bound")
    benchmark.extra_info["nvp_vs_wait"] = round(nvp_vs_wait, 3)

    # Shape assertions.
    assert 1.8 <= nvp_vs_wait <= 8.0
    assert nvp_mean > checkpoint_mean > 0
    assert oracle_mean > nvp_mean
