"""F4 — forward progress: NVP vs wait-and-compute vs sw-checkpointing.

The tutorial's headline system-level comparison.  Expected shape: the
NVP outperforms wait-and-compute by roughly 2-5x (the published band)
and software checkpointing sits between them; the oracle bounds all.
"""

from repro.analysis.report import ratio
from repro.system.presets import (
    build_checkpoint,
    build_nvp,
    build_oracle,
    build_wait_compute,
)
from repro.workloads.base import AbstractWorkload

from common import publish_table, print_header, profiles, simulate

BUILDERS = [
    ("nvp", build_nvp),
    ("wait-compute", build_wait_compute),
    ("sw-checkpoint", build_checkpoint),
    ("oracle", build_oracle),
]


def run_comparison():
    table = {}
    for label, builder in BUILDERS:
        table[label] = [
            simulate(trace, builder(AbstractWorkload())) for trace in profiles()
        ]
    return table


def test_f4_platform_comparison(benchmark):
    table = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_header("F4", "forward progress per platform per profile")
    rows = []
    for label, results in table.items():
        fps = [r.forward_progress for r in results]
        rows.append([label] + fps + [sum(fps) / len(fps)])
    headers = ["platform"] + [t.source for t in profiles()] + ["mean"]
    publish_table(headers, rows)

    nvp_mean = sum(r.forward_progress for r in table["nvp"]) / len(profiles())
    wait_mean = sum(
        r.forward_progress for r in table["wait-compute"]
    ) / len(profiles())
    checkpoint_mean = sum(
        r.forward_progress for r in table["sw-checkpoint"]
    ) / len(profiles())
    oracle_mean = sum(r.forward_progress for r in table["oracle"]) / len(profiles())

    nvp_vs_wait = ratio(nvp_mean, wait_mean)
    print(f"\nNVP / wait-compute  = {nvp_vs_wait:.2f}x  (published band: 2.2-5x)")
    print(f"NVP / sw-checkpoint = {ratio(nvp_mean, checkpoint_mean):.2f}x")
    print(f"NVP / oracle        = {ratio(nvp_mean, oracle_mean):.2%} of upper bound")
    benchmark.extra_info["nvp_vs_wait"] = round(nvp_vs_wait, 3)

    # Shape assertions.
    assert 1.8 <= nvp_vs_wait <= 8.0
    assert nvp_mean > checkpoint_mean > 0
    assert oracle_mean > nvp_mean
