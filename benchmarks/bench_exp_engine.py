"""E1 — experiment-engine throughput: parallel speedup and cache hits.

The scaling acceptance for the ``repro.exp`` engine: a 16-point
capacitor-technology sweep must (a) return bit-identical results under
``jobs=4`` and serial execution, (b) beat 40% of the serial wall time
on a >= 4-core machine, and (c) re-run with zero simulations executed
— every point served from the content-addressed cache.
"""

import os
import tempfile

from repro.exp import ExperimentSpec, ResultCache, SweepRunner

from common import bench_base, print_header, publish_table

PARALLEL_JOBS = 4

#: 16 points: 8 capacitances x 2 NVM technologies.
CAPACITANCES_F = [22e-9, 68e-9, 150e-9, 330e-9, 470e-9, 1e-6, 2.2e-6, 10e-6]
TECHNOLOGIES = ["FeRAM", "ReRAM"]


def build_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="exp_engine_accept",
        description="16-point capacitor x technology grid",
        base=bench_base(),
        axes={
            "capacitance_f": CAPACITANCES_F,
            "nvp.technology": TECHNOLOGIES,
        },
    )


def run_experiment():
    spec = build_spec()
    configs = spec.expand()
    assert len(configs) == 16

    serial = SweepRunner(jobs=1).run(configs).raise_on_failure()
    with tempfile.TemporaryDirectory(prefix="repro-exp-bench-") as root:
        cache = ResultCache(root)
        parallel = SweepRunner(
            jobs=PARALLEL_JOBS, cache=cache
        ).run(configs).raise_on_failure()
        rerun = SweepRunner(
            jobs=PARALLEL_JOBS, cache=cache
        ).run(configs).raise_on_failure()
    return serial, parallel, rerun


def test_exp_engine_parallel_and_cached(benchmark):
    serial, parallel, rerun = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    print_header(
        "E1", "experiment engine: 16-point sweep, serial vs jobs=4 vs cached"
    )
    speedup = serial.wall_s / max(parallel.wall_s, 1e-9)
    rows = [
        ["serial (jobs=1)", serial.executed, serial.cached,
         serial.wall_s, 1.0],
        [f"parallel (jobs={PARALLEL_JOBS})", parallel.executed,
         parallel.cached, parallel.wall_s, speedup],
        ["re-run (cached)", rerun.executed, rerun.cached,
         rerun.wall_s, serial.wall_s / max(rerun.wall_s, 1e-9)],
    ]
    publish_table(["pass", "executed", "cached", "wall s", "speedup"], rows)
    cores = os.cpu_count() or 1
    print(f"\nhost cores: {cores}; parallel speedup: {speedup:.2f}x")
    benchmark.extra_info["speedup_jobs4"] = round(speedup, 3)
    benchmark.extra_info["rerun_executed"] = rerun.executed

    # Determinism: parallel execution returns exactly the serial results.
    assert [r.result for r in parallel] == [r.result for r in serial]
    assert [r.key for r in parallel] == [r.key for r in serial]
    # Resume-for-free: the immediate re-run executes zero simulations.
    assert rerun.executed == 0
    assert rerun.cached == len(parallel.records)
    assert [r.result for r in rerun] == [r.result for r in parallel]
    # Scaling: on a >= 4-core host, jobs=4 must finish a 16-point
    # sweep in under 40% of the serial wall time.
    if cores >= 4:
        assert parallel.wall_s < 0.4 * serial.wall_s, (
            f"parallel {parallel.wall_s:.2f}s vs serial {serial.wall_s:.2f}s"
        )
