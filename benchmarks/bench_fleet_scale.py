"""BENCH_fleet — throughput of the batched fleet kernel at scale.

Advances fleets of N ∈ {100, 1k, 10k} staggered NVP devices through
one :class:`~repro.fleet.kernel.FleetKernel` on a single core and
publishes device-ticks/second and devices/second as gated throughput
metrics (``repro bench-report`` fails CI when they collapse).  Before
timing anything it asserts the kernel's core promise on a small mixed
fleet: every device's :class:`~repro.system.result.SimulationResult`
is bit-identical to the single-device engine's.

The fleet config keeps devices mostly dormant (low harvested power →
long charge runs), which is both the realistic deployment regime —
NVP nodes spend the vast majority of wall-clock charging, not
computing — and the regime the struct-of-arrays layout accelerates:
dormant ticks advance vectorized across the whole fleet, wakes drop
to exact per-device ticking.  Throughput therefore *grows* with N as
the vector step amortises (the committed baseline shows ~1.4M →
~3M+ device-ticks/s from N=100 to N=10k).

After the scaling sweep, the bench measures the telemetry tax: one
mid-size fleet advanced twice — telemetry off, then sampling at a
dashboard-rate cadence — with bit-identical results required and the
device-ticks/s drop asserted below a budget (the zero-overhead
contract in :mod:`repro.fleet.telemetry` is one ``None`` check per
lockstep tick, so the budget is mostly jitter allowance).

Environment knobs::

    NVPSIM_BENCH_FLEET_SIZES     comma-separated N list
                                 (default "100,1000,10000")
    NVPSIM_BENCH_FLEET_DURATION  simulated seconds per device
                                 (default 0.5)
    NVPSIM_BENCH_FLEET_MEAN_UW   mean harvested power, microwatts
                                 (default 8.0)
    NVPSIM_BENCH_FLEET_MAX_TELEMETRY_OVERHEAD
                                 max fractional device-ticks/s drop
                                 with telemetry on (default 0.05)

Run standalone (CI fleet-smoke does) with::

    PYTHONPATH=src python benchmarks/bench_fleet_scale.py
"""

from __future__ import annotations

import os
import time

from common import BENCH_SEED, print_header, publish_metrics, publish_table

from repro.fleet import FleetKernel, FleetSpec, FleetTelemetry, replay_device

SIZES = tuple(
    int(value)
    for value in os.environ.get(
        "NVPSIM_BENCH_FLEET_SIZES", "100,1000,10000"
    ).split(",")
)
FLEET_DURATION_S = float(
    os.environ.get("NVPSIM_BENCH_FLEET_DURATION", "0.5")
)
FLEET_MEAN_UW = float(os.environ.get("NVPSIM_BENCH_FLEET_MEAN_UW", "8.0"))
MAX_TELEMETRY_OVERHEAD = float(
    os.environ.get("NVPSIM_BENCH_FLEET_MAX_TELEMETRY_OVERHEAD", "0.05")
)


def fleet_spec(n: int) -> FleetSpec:
    """N replicas of the standard low-power NVP node, offsets staggered
    across the first half of the shared wristwatch trace."""
    return FleetSpec(
        name=f"bench-fleet-{n}",
        base={
            "platform": "nvp",
            "source": "wristwatch",
            "duration_s": FLEET_DURATION_S,
            "seed": BENCH_SEED,
            "mean_uw": FLEET_MEAN_UW,
        },
        replicas=n,
        stagger_s=FLEET_DURATION_S * 0.5 / n,
    )


def assert_bit_identity() -> None:
    """The kernel's contract, spot-checked before anything is timed."""
    spec = FleetSpec(
        name="bench-fleet-identity",
        base={
            "source": "wristwatch",
            "duration_s": min(FLEET_DURATION_S, 0.5),
            "seed": BENCH_SEED,
        },
        axes={"platform": ["nvp", "wait", "checkpoint", "oracle"]},
        replicas=2,
        stagger_s=0.05,
    )
    configs = spec.devices()
    results = FleetKernel(configs).run()
    for config, result in zip(configs, results):
        single, _ = replay_device(config)
        if result.to_dict() != single.to_dict():
            raise SystemExit(
                f"fleet result differs from single engine for "
                f"{config['label']} — bit-identity contract broken"
            )
    print(f"identity: {len(configs)} mixed devices bit-identical "
          f"to the single-device engine")


def main() -> None:
    print_header(
        "BENCH_fleet",
        "fleet kernel throughput (one core, struct-of-arrays lockstep)",
        config={
            "sizes": list(SIZES),
            "duration_s": FLEET_DURATION_S,
            "mean_uw": FLEET_MEAN_UW,
            "seed": BENCH_SEED,
        },
    )
    assert_bit_identity()

    headers = [
        "devices", "build s", "run s", "device-ticks",
        "Mdevice-ticks/s", "devices/s",
    ]
    rows = []
    metrics = {}
    for n in SIZES:
        configs = fleet_spec(n).devices()
        built = time.perf_counter()
        kernel = FleetKernel(configs)
        started = time.perf_counter()
        results = kernel.run()
        wall = time.perf_counter() - started
        device_ticks = sum(
            int(round(result.duration_s / kernel.dt)) for result in results
        )
        rows.append([
            n,
            round(started - built, 3),
            round(wall, 3),
            device_ticks,
            round(device_ticks / wall / 1e6, 3),
            round(n / wall, 1),
        ])
        metrics[f"fleet_throughput_device_ticks_per_s_n{n}"] = (
            device_ticks / wall
        )
        metrics[f"fleet_throughput_devices_per_s_n{n}"] = n / wall
    publish_table(headers, rows, title="fleet kernel scaling")
    telemetry_metrics = measure_telemetry_overhead()
    metrics.update(telemetry_metrics)
    publish_metrics(metrics)
    largest = max(SIZES)
    print(f"\nscale   : {largest} devices advanced concurrently on one core")


def measure_telemetry_overhead() -> dict:
    """Device-ticks/s with dashboard-rate telemetry vs. without.

    Best-of-two wall time per variant (same configs, fresh kernels),
    bit-identical results required, and the throughput drop asserted
    under :data:`MAX_TELEMETRY_OVERHEAD`.
    """
    n = min(1000, max(SIZES))
    configs = fleet_spec(n).devices()
    every_s = FLEET_DURATION_S / 10.0

    def run_once(with_telemetry: bool):
        kernel = FleetKernel(
            list(configs),
            telemetry=FleetTelemetry(every_s=every_s)
            if with_telemetry else None,
        )
        started = time.perf_counter()
        results = kernel.run()
        return time.perf_counter() - started, results, kernel

    base_wall, base_results, kernel = min(
        (run_once(False) for _ in range(2)), key=lambda r: r[0]
    )
    tel_wall, tel_results, _ = min(
        (run_once(True) for _ in range(2)), key=lambda r: r[0]
    )
    for off, on in zip(base_results, tel_results):
        if off.to_dict() != on.to_dict():
            raise SystemExit(
                "telemetry changed a device result — the read-only "
                "contract is broken"
            )
    device_ticks = sum(
        int(round(result.duration_s / kernel.dt))
        for result in base_results
    )
    overhead = tel_wall / base_wall - 1.0
    print(f"telemetry: {n} devices, {base_wall:.3f}s off vs "
          f"{tel_wall:.3f}s on ({overhead:+.1%}, budget "
          f"{MAX_TELEMETRY_OVERHEAD:.0%})")
    if overhead > MAX_TELEMETRY_OVERHEAD:
        raise SystemExit(
            f"telemetry overhead {overhead:.1%} exceeds the "
            f"{MAX_TELEMETRY_OVERHEAD:.0%} budget"
        )
    return {
        # Contains "ticks_per_s": regression-gated by bench-report.
        "fleet_telemetry_ticks_per_s": device_ticks / tel_wall,
        "fleet_telemetry_overhead_frac": max(overhead, 0.0),
    }


if __name__ == "__main__":
    main()
