"""F3 — power-outage duration and frequency statistics.

Reconstructs the outage-characterisation figure: duration histogram
and emergency counts at the 33 µW operating threshold, per profile.
"""

import numpy as np

from repro.analysis.report import series_text
from repro.harvest.outage import DEFAULT_THRESHOLD_W, analyze_outages

from common import publish_table, BENCH_DURATION_S, print_header, profiles


def build_stats():
    return [(trace.source, analyze_outages(trace)) for trace in profiles()]


def test_f3_outage_statistics(benchmark):
    stats = benchmark.pedantic(build_stats, rounds=1, iterations=1)
    print_header("F3", f"outage statistics at {DEFAULT_THRESHOLD_W * 1e6:.0f} uW")
    rows = []
    for name, s in stats:
        rows.append(
            [
                name,
                s.count,
                s.emergencies_per_second(BENCH_DURATION_S),
                s.mean_duration_s * 1e3,
                s.max_duration_s * 1e3,
                s.duty_cycle,
            ]
        )
    publish_table(
            ["profile", "outages", "per s", "mean ms", "max ms", "duty"], rows
        )
    # Histogram for profile 1 (the published figure's subject).
    name, s = stats[0]
    counts, edges = s.histogram(bins=10)
    print(
        series_text(
            f"outage-duration histogram ({name})",
            [f"{edge * 1e3:.1f}ms" for edge in edges[:-1]],
            [int(c) for c in counts],
        )
    )
    for name, s in stats:
        # Published: 1000-2000 emergencies per 10 s window.
        per_10s = s.count * 10.0 / BENCH_DURATION_S
        assert 600 <= per_10s <= 3000, (name, per_10s)
        # Most outages are milliseconds; rare ones reach fractions of a second.
        durations = np.asarray(s.durations_s)
        assert np.median(durations) < 0.05
