"""F8 — energy-band dynamic power management vs greedy execution.

Reconstructs the TECS'17-class result: keeping the storage capacitor
inside its efficient conversion band yields more net forward progress
than greedily draining it, despite throttled execution ticks.
"""

from repro.core.config import NVPConfig
from repro.core.nvp import NVPPlatform
from repro.policy.dpm import EnergyBandGovernor
from repro.storage.capacitor import Capacitor, ChargeEfficiency
from repro.workloads.base import AbstractWorkload

from common import publish_table, print_header, profiles, simulate


def peaky_cap():
    """An NVP capacitor whose converter has a pronounced efficiency peak."""
    return Capacitor(
        150e-9,
        v_max_v=3.3,
        leak_resistance_ohm=1e9,
        efficiency=ChargeEfficiency(
            eta_peak=0.92, eta_floor=0.35, v_opt_v=2.0, v_span_v=1.4
        ),
    )


def run_experiment():
    rows = []
    for trace in profiles()[:3]:
        greedy = NVPPlatform(
            AbstractWorkload(), peaky_cap(), NVPConfig(label="greedy"), seed=0
        )
        greedy_result = simulate(trace, greedy)
        cap = peaky_cap()
        governor = EnergyBandGovernor.for_capacitor(cap, 0.4, 1.2, slowdown=0.25)
        dpm = NVPPlatform(
            AbstractWorkload(), cap, NVPConfig(label="band-dpm"),
            seed=0, governor=governor,
        )
        dpm_result = simulate(trace, dpm)
        rows.append((trace.source, greedy_result, dpm_result, governor))
    return rows


def test_f8_energy_band_dpm(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_header("F8", "energy-band DPM vs greedy NVP execution")
    table = []
    gains = []
    for source, greedy, dpm, governor in rows:
        gain = dpm.forward_progress / max(1, greedy.forward_progress)
        gains.append(gain)
        table.append(
            [
                source,
                greedy.forward_progress,
                dpm.forward_progress,
                f"{gain:.2f}x",
                governor.throttled_ticks,
            ]
        )
    publish_table(
        ["profile", "greedy FP", "band-DPM FP", "gain", "throttled ticks"], table
    )
    mean_gain = sum(gains) / len(gains)
    print(f"\nmean DPM gain: {mean_gain:.2f}x")
    benchmark.extra_info["mean_gain"] = round(mean_gain, 3)
    # Shape: DPM wins on average and never loses badly.
    assert mean_gain > 1.05
    assert min(gains) > 0.9
