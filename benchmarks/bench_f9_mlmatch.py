"""F9 — ML-based matching of NVP configuration to power profiles.

Reconstructs the ICCAD'15-class result: a k-NN matcher trained on
profile statistics picks per-trace configurations whose forward
progress approaches the per-trace best-static oracle and beats any
single static configuration.
"""

from repro.core.config import NVPConfig
from repro.core.nvp import NVPPlatform
from repro.harvest.sources import rf_trace, thermal_trace, wristwatch_trace
from repro.isa.energy import dvfs_model
from repro.policy.mlmatch import train_from_sweeps
from repro.system.presets import nvp_capacitor
from repro.workloads.base import AbstractWorkload

from common import publish_table, BENCH_SEED, print_header, simulate

#: Configuration space: (clock Hz, backup margin).
CONFIGS = [(0.5e6, 3.0), (1e6, 1.5), (4e6, 1.2)]
TRAIN_DURATION_S = 2.0


def make_platform(config_index):
    clock, margin = CONFIGS[config_index]
    workload = AbstractWorkload(energy_model=dvfs_model(clock))
    config = NVPConfig(
        clock_hz=clock, backup_margin=margin, label=f"cfg{config_index}"
    )
    return NVPPlatform(workload, nvp_capacitor(), config, seed=0)


def evaluate(trace, config_index):
    return simulate(trace, make_platform(config_index)).forward_progress


def make_traces(seed_base, duration):
    traces = []
    for offset in range(3):
        traces.append(
            wristwatch_trace(duration, seed=seed_base + offset, mean_power_w=20e-6)
        )
        traces.append(thermal_trace(duration, seed=seed_base + offset))
        traces.append(
            rf_trace(duration, seed=seed_base + offset, mean_power_w=120e-6)
        )
    return traces


def run_experiment():
    train = make_traces(BENCH_SEED, TRAIN_DURATION_S)
    test = make_traces(BENCH_SEED + 100, TRAIN_DURATION_S)
    matcher = train_from_sweeps(train, len(CONFIGS), evaluate, k=3)
    rows = []
    matched_total = 0.0
    best_total = 0.0
    static_totals = [0.0] * len(CONFIGS)
    for trace in test:
        scores = [evaluate(trace, index) for index in range(len(CONFIGS))]
        predicted = matcher.predict_trace(trace)
        matched_total += scores[predicted]
        best_total += max(scores)
        for index, score in enumerate(scores):
            static_totals[index] += score
        rows.append(
            [trace.source, predicted, int(scores[predicted]), int(max(scores))]
        )
    return rows, matched_total, best_total, static_totals


def test_f9_ml_config_matching(benchmark):
    rows, matched, best, statics = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    print_header("F9", "ML config matching vs static configurations")
    publish_table(["test trace", "picked cfg", "matched FP", "best FP"], rows)
    best_static = max(statics)
    print(f"\nmatched total FP : {matched:.0f}")
    print(f"best-static total: {best_static:.0f} (config {statics.index(best_static)})")
    print(f"oracle total     : {best:.0f}")
    print(f"matched/oracle   : {matched / best:.2%}")
    benchmark.extra_info["matched_over_oracle"] = round(matched / best, 4)
    # Shapes: matching recovers most of the oracle and beats best-static.
    assert matched >= 0.9 * best_static
    assert matched >= 0.75 * best
