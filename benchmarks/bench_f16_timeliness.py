"""F16 (extension) — task timeliness: NVP vs wait-and-compute.

The tutorial's responsiveness argument: two platforms with similar
*total* forward progress can differ wildly in *when* work completes.
The wait-and-compute MCU delivers its capacity in rare bursts after
long charge periods, so periodic sensing jobs with second-scale
deadlines miss far more often than on an NVP, which executes in
fine-grained slices whenever power allows.
"""

from repro.system.presets import build_nvp, build_wait_compute
from repro.system.scheduler import PeriodicTask, schedule_replay
from repro.system.simulator import SystemSimulator
from repro.system.telemetry import Telemetry
from repro.workloads.base import AbstractWorkload

from common import publish_table, print_header, profiles

TASKS = [
    PeriodicTask("sense", period_s=0.25, instructions=3_000),
    PeriodicTask("classify", period_s=1.0, instructions=15_000),
]


def capacity_of(builder, trace):
    telemetry = Telemetry()
    platform = builder(AbstractWorkload())
    from repro.system.presets import standard_rectifier

    SystemSimulator(
        trace,
        platform,
        rectifier=standard_rectifier(),
        stop_when_finished=False,
        telemetry=telemetry,
    ).run()
    return telemetry.instructions


def run_experiment():
    rows = []
    for trace in profiles()[:3]:
        nvp_capacity = capacity_of(build_nvp, trace)
        wait_capacity = capacity_of(build_wait_compute, trace)
        nvp_report = schedule_replay(nvp_capacity, trace.dt_s, TASKS, policy="edf")
        wait_report = schedule_replay(wait_capacity, trace.dt_s, TASKS, policy="edf")
        rows.append((trace.source, sum(nvp_capacity), nvp_report,
                     sum(wait_capacity), wait_report))
    return rows


def test_f16_task_timeliness(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_header(
        "F16",
        "deadline miss rate under EDF (sense@4Hz/3k, classify@1Hz/15k)",
    )
    table = []
    for source, nvp_total, nvp_report, wait_total, wait_report in rows:
        table.append(
            [
                source,
                nvp_total,
                f"{nvp_report.miss_rate:.1%}",
                f"{nvp_report.p95_response_s():.3g}s",
                wait_total,
                f"{wait_report.miss_rate:.1%}",
                f"{wait_report.p95_response_s():.3g}s",
            ]
        )
    publish_table(
        [
            "profile", "nvp instr", "nvp miss", "nvp p95",
            "wait instr", "wait miss", "wait p95",
        ],
        table,
    )
    nvp_misses = [r[2].miss_rate for r in rows]
    wait_misses = [r[4].miss_rate for r in rows]
    mean_nvp = sum(nvp_misses) / len(nvp_misses)
    mean_wait = sum(wait_misses) / len(wait_misses)
    print(f"\nmean miss rate: NVP {mean_nvp:.1%} vs wait-compute {mean_wait:.1%}")
    benchmark.extra_info["nvp_miss"] = round(mean_nvp, 4)
    benchmark.extra_info["wait_miss"] = round(mean_wait, 4)
    # Shape: the NVP's fine-grained execution misses far fewer deadlines.
    assert mean_nvp < mean_wait
    assert mean_wait > 0.3  # wait-compute's bursts genuinely miss