"""T1 — NVM technology comparison table.

Reconstructs the device-layer table the tutorial builds its survey on:
per-technology write/read energy, latency, retention, endurance,
wake-up time, and the derived backup/restore cost of one NVP state
image (360 bits).
"""

from repro.core.config import DEFAULT_STATE_BITS
from repro.nvm.technology import TECHNOLOGIES

from common import publish_table, print_header


def build_table():
    rows = []
    for tech in TECHNOLOGIES:
        rows.append(
            [
                tech.name,
                tech.write_energy_j_per_bit * 1e12,
                tech.read_energy_j_per_bit * 1e12,
                tech.write_latency_s * 1e9,
                f"{tech.retention_s:.3g}" if not tech.volatile else "power-gated",
                f"{tech.endurance_cycles:.1g}",
                tech.wakeup_time_s * 1e6,
                tech.backup_energy_j(DEFAULT_STATE_BITS) * 1e12,
                tech.restore_time_s(DEFAULT_STATE_BITS) * 1e6,
            ]
        )
    return rows


def test_t1_nvm_technology_table(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print_header("T1", "NVM technology comparison (360-bit NVP state image)")
    publish_table(
            [
                "tech", "Ewr pJ/b", "Erd pJ/b", "tWR ns", "retention s",
                "endurance", "wakeup us", "backup pJ", "restore us",
            ],
            rows,
        )
    benchmark.extra_info["technologies"] = len(rows)
    # Shape checks: flash worst writes, FeFET cheapest, ReRAM fastest wake.
    by_name = {row[0]: row for row in rows}
    assert by_name["NOR-Flash"][1] > by_name["FeRAM"][1]
    assert by_name["FeFET"][1] < by_name["FeRAM"][1]
    assert by_name["ReRAM"][6] < by_name["FeRAM"][6]
