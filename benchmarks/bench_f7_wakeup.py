"""F7 — wake-up/restore time vs achievable duty cycle.

Reconstructs the wake-up comparison: per-technology wake-up and backup
times, and the duty cycle each sustains as the outage rate grows
(analytic model) — the figure behind "3 µs wake-up" headlines.
"""

from repro.analysis.report import series_text
from repro.core.config import DEFAULT_STATE_BITS
from repro.core.restore import WakeupModel, wakeup_comparison
from repro.harvest.outage import analyze_outages
from repro.nvm.technology import FERAM, NOR_FLASH, RERAM, TECHNOLOGIES

from common import publish_table, BENCH_DURATION_S, print_header, profiles

OUTAGE_RATES_HZ = [10, 50, 150, 500, 1500, 5000]


def run_experiment():
    nonvolatile = [t for t in TECHNOLOGIES if not t.volatile]
    table = wakeup_comparison(
        nonvolatile, DEFAULT_STATE_BITS, outage_rate_hz=150.0, supply_duty=0.2
    )
    curves = {}
    for tech in (FERAM, RERAM, NOR_FLASH):
        model = WakeupModel(tech, DEFAULT_STATE_BITS)
        curves[tech.name] = [
            model.effective_duty_cycle(rate, supply_duty=0.2)
            for rate in OUTAGE_RATES_HZ
        ]
    measured_rate = analyze_outages(profiles()[0]).count / BENCH_DURATION_S
    return table, curves, measured_rate


def test_f7_wakeup_duty_cycle(benchmark):
    table, curves, measured_rate = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    print_header("F7", "wake-up overheads and duty cycle vs outage rate")
    rows = [
        [name, row["wakeup_us"], row["backup_us"], f"{row['duty_cycle']:.3f}"]
        for name, row in table.items()
    ]
    publish_table(
        ["tech", "wakeup us", "backup us", "duty@150/s (supply 0.2)"], rows
    )
    print(f"\nmeasured emergency rate on profile-1: {measured_rate:.0f}/s\n")
    for name, duties in curves.items():
        print(series_text(f"duty({name})", OUTAGE_RATES_HZ, duties))

    # Shapes: ReRAM's faster restore dominates FeRAM; flash collapses first.
    assert table["ReRAM"]["wakeup_us"] < table["FeRAM"]["wakeup_us"]
    assert curves["NOR-Flash"][-1] < curves["FeRAM"][-1]
    assert curves["FeRAM"][0] > 0.19  # near the supply bound at low rates
