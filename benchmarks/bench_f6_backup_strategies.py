"""F6 — backup strategy and state-size comparison.

Compares full / incremental / compare-and-write backup writes and
sweeps the architectural state size: larger state raises both backup
energy and the reserve threshold, eroding forward progress.
"""

from repro.core.config import NVPConfig
from repro.core.nvp import NVPPlatform
from repro.system.presets import nvp_capacitor
from repro.workloads.base import AbstractWorkload

from common import publish_table, print_header, profiles, simulate

STRATEGIES = ["full", "compare_and_write", "incremental"]
STATE_BITS = [168, 360, 1024, 4096]


def run_experiment():
    trace = profiles()[0]
    strategy_results = {}
    for strategy in STRATEGIES:
        platform = NVPPlatform(
            AbstractWorkload(),
            nvp_capacitor(),
            NVPConfig(backup_strategy=strategy, label=f"nvp-{strategy}"),
            seed=0,
        )
        result = simulate(trace, platform)
        strategy_results[strategy] = (result, platform.controller.total_bits_written)
    size_results = []
    for bits in STATE_BITS:
        platform = NVPPlatform(
            AbstractWorkload(),
            nvp_capacitor(),
            NVPConfig(state_bits=bits, label=f"nvp-{bits}b"),
            seed=0,
        )
        size_results.append((bits, simulate(trace, platform)))
    return strategy_results, size_results


def test_f6_backup_strategies(benchmark):
    strategy_results, size_results = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    print_header("F6", "backup strategies and state-size sweep (profile-1)")
    rows = []
    for strategy, (result, bits_written) in strategy_results.items():
        per_backup = bits_written / max(1, result.backups)
        rows.append(
            [
                strategy,
                result.forward_progress,
                result.backups,
                per_backup,
                result.backup_energy_j * 1e9,
            ]
        )
    publish_table(
        ["strategy", "FP", "backups", "bits/backup", "backup nJ"], rows
    )

    print()
    size_rows = [
        [bits, r.forward_progress, r.backups, r.backup_energy_j * 1e9]
        for bits, r in size_results
    ]
    publish_table(["state bits", "FP", "backups", "backup nJ"], size_rows)

    # Shapes: differential strategies write fewer bits than full; a 4 Kb
    # state image costs visibly more progress than a 360 b one.
    full_bits = strategy_results["full"][1]
    assert strategy_results["compare_and_write"][1] < full_bits
    assert strategy_results["incremental"][1] <= full_bits
    assert size_results[0][1].forward_progress >= size_results[-1][1].forward_progress
    assert (
        size_results[-1][1].backup_energy_j > size_results[0][1].backup_energy_j
    )
