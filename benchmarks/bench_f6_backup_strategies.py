"""F6 — backup strategy and state-size comparison.

Compares full / incremental / compare-and-write backup writes and
sweeps the architectural state size: larger state raises both backup
energy and the reserve threshold, eroding forward progress.
"""

from common import engine_sweep, publish_table, print_header

STRATEGIES = ["full", "compare_and_write", "incremental"]
STATE_BITS = [168, 360, 1024, 4096]


def run_experiment():
    _, strat = engine_sweep(
        "f6_backup_strategies",
        axes={"nvp.backup_strategy": STRATEGIES},
    )
    strategy_results = {
        strategy: (result, result.extras["bits_written"])
        for strategy, result in zip(STRATEGIES, strat)
    }
    _, sized = engine_sweep(
        "f6_state_bits",
        axes={"nvp.state_bits": STATE_BITS},
    )
    size_results = list(zip(STATE_BITS, sized))
    return strategy_results, size_results


def test_f6_backup_strategies(benchmark):
    strategy_results, size_results = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    print_header("F6", "backup strategies and state-size sweep (profile-1)")
    rows = []
    for strategy, (result, bits_written) in strategy_results.items():
        per_backup = bits_written / max(1, result.backups)
        rows.append(
            [
                strategy,
                result.forward_progress,
                result.backups,
                per_backup,
                result.backup_energy_j * 1e9,
            ]
        )
    publish_table(
        ["strategy", "FP", "backups", "bits/backup", "backup nJ"], rows
    )

    print()
    size_rows = [
        [bits, r.forward_progress, r.backups, r.backup_energy_j * 1e9]
        for bits, r in size_results
    ]
    publish_table(["state bits", "FP", "backups", "backup nJ"], size_rows)

    # Shapes: differential strategies write fewer bits than full; a 4 Kb
    # state image costs visibly more progress than a 360 b one.
    full_bits = strategy_results["full"][1]
    assert strategy_results["compare_and_write"][1] < full_bits
    assert strategy_results["incremental"][1] <= full_bits
    assert size_results[0][1].forward_progress >= size_results[-1][1].forward_progress
    assert (
        size_results[-1][1].backup_energy_j > size_results[0][1].backup_energy_j
    )
