"""F5 — forward progress and backups vs storage-capacitor size.

Reconstructs the architecture-exploration sweep: tiny capacitors
cannot fund the backup reserve (constant thrash / no start), oversized
capacitors waste income on conversion losses and slow first-start.
Expect an interior plateau around the backup-sized capacitor.
"""

from common import engine_sweep, publish_table, print_header

CAPACITANCES_F = [4.7e-9, 22e-9, 68e-9, 150e-9, 470e-9, 2.2e-6, 10e-6, 47e-6]


def run_sweep():
    _, results = engine_sweep(
        "f5_cap_sweep", axes={"capacitance_f": CAPACITANCES_F}
    )
    return list(zip(CAPACITANCES_F, results))


def test_f5_capacitor_sweep(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_header("F5", "NVP forward progress vs capacitor size (profile-1)")
    rows = [
        [
            f"{capacitance * 1e9:.4g} nF",
            r.forward_progress,
            r.backups,
            r.rollbacks,
            f"{r.on_time_fraction:.1%}",
        ]
        for capacitance, r in results
    ]
    publish_table(["capacitance", "FP", "backups", "rollbacks", "on-time"], rows)

    progress = [r.forward_progress for _, r in results]
    best = max(range(len(progress)), key=lambda i: progress[i])
    print(f"\nbest capacitance: {CAPACITANCES_F[best] * 1e9:.4g} nF")
    benchmark.extra_info["best_nF"] = CAPACITANCES_F[best] * 1e9
    # Shape: the optimum is interior — both extremes underperform it.
    assert progress[best] > progress[0]
    assert progress[best] > progress[-1]
