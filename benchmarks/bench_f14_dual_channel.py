"""F14 (extension) — dual-channel front end vs single channel.

Reconstructs the dual-channel result the tutorial's system layer
cites (Sheng et al., NVMSA'14): feeding the load directly from the
harvester while it runs — touching the capacitor only for surplus and
shortfall — avoids the double conversion toll and raises forward
progress on conversion-lossy storage.
"""

from repro.core.config import NVPConfig
from repro.core.nvp import NVPPlatform
from repro.storage.capacitor import Capacitor, ChargeEfficiency
from repro.storage.frontend import DualChannelFrontEnd, SingleChannelFrontEnd
from repro.workloads.base import AbstractWorkload

from common import publish_table, print_header, profiles, simulate


def lossy_cap():
    """A realistic small capacitor with visible conversion losses."""
    return Capacitor(
        150e-9,
        v_max_v=3.3,
        leak_resistance_ohm=1e9,
        efficiency=ChargeEfficiency(
            eta_peak=0.80, eta_floor=0.40, v_opt_v=2.0, v_span_v=1.6
        ),
    )


def run_experiment():
    rows = []
    for trace in profiles()[:3]:
        single = NVPPlatform(
            AbstractWorkload(),
            SingleChannelFrontEnd(lossy_cap()),
            NVPConfig(label="single"),
            seed=0,
        )
        single_result = simulate(trace, single)
        dual_frontend = DualChannelFrontEnd(lossy_cap(), bypass_efficiency=0.95)
        dual = NVPPlatform(
            AbstractWorkload(), dual_frontend, NVPConfig(label="dual"), seed=0
        )
        dual_result = simulate(trace, dual)
        rows.append((trace.source, single_result, dual_result, dual_frontend))
    return rows


def test_f14_dual_channel_frontend(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_header("F14", "dual-channel vs single-channel front end")
    table = []
    gains = []
    for source, single, dual, frontend in rows:
        gain = dual.forward_progress / max(1, single.forward_progress)
        gains.append(gain)
        table.append(
            [
                source,
                single.forward_progress,
                dual.forward_progress,
                f"{gain:.2f}x",
                frontend.total_bypassed_j * 1e6,
            ]
        )
    publish_table(
        ["profile", "single FP", "dual FP", "gain", "bypassed uJ"], table
    )
    mean_gain = sum(gains) / len(gains)
    print(f"\nmean dual-channel gain: {mean_gain:.2f}x")
    benchmark.extra_info["mean_gain"] = round(mean_gain, 3)
    assert mean_gain > 1.05
    assert all(frontend.total_bypassed_j > 0 for _, _, _, frontend in rows)
