#!/usr/bin/env python3
"""Explore NVM technology choices and approximate backup for an NVP.

Sweeps the state-storage technology (FeRAM / ReRAM / STT-MRAM / PCM /
NOR-Flash / FeFET) for the same harvester and workload, then shows
what retention-relaxed ("approximate") backup buys on STT-MRAM when
the backup image includes a 1K-word SRAM working set.

Run:  python examples/technology_explorer.py
"""

from repro import (
    AbstractWorkload,
    LinearPolicy,
    LogPolicy,
    NVPConfig,
    NVPPlatform,
    ParabolaPolicy,
    STT_MRAM,
    SystemSimulator,
    TECHNOLOGIES,
    nvp_capacitor,
    standard_rectifier,
    wristwatch_trace,
)
from repro.analysis.report import format_table


def simulate(trace, config):
    platform = NVPPlatform(AbstractWorkload(), nvp_capacitor(), config, seed=0)
    return SystemSimulator(
        trace, platform, rectifier=standard_rectifier(), stop_when_finished=False
    ).run()


def main() -> None:
    trace = wristwatch_trace(duration_s=8.0, seed=5)

    print("=== State-storage technology sweep ===\n")
    rows = []
    for tech in TECHNOLOGIES:
        if tech.volatile:
            continue
        result = simulate(trace, NVPConfig(technology=tech, label=tech.name))
        rows.append(
            [
                tech.name,
                result.forward_progress,
                result.backups,
                result.backup_energy_j * 1e9,
                tech.wakeup_time_s * 1e6,
            ]
        )
    print(format_table(
        ["technology", "FP", "backups", "backup nJ total", "wakeup us"], rows
    ))

    print("\n=== Retention-relaxed backup on STT-MRAM (1K-word SRAM image) ===\n")
    t_max = STT_MRAM.retention_s
    policies = [
        ("precise", None),
        ("linear 10ms..10y", LinearPolicy(10e-3, t_max)),
        ("log 10ms..10y", LogPolicy(10e-3, t_max)),
        ("parabola 10ms..10y", ParabolaPolicy(10e-3, t_max)),
    ]
    rows = []
    baseline_fp = None
    for name, policy in policies:
        config = NVPConfig(
            technology=STT_MRAM,
            retention_policy=policy,
            sram_backup_words=1024,
            label=name,
        )
        result = simulate(trace, config)
        if baseline_fp is None:
            baseline_fp = result.forward_progress
        rows.append(
            [
                name,
                result.forward_progress,
                f"{result.forward_progress / baseline_fp:.2f}x",
                result.backup_energy_j / max(1, result.backups) * 1e9,
                int(result.extras.get("flipped_bits", 0)),
            ]
        )
    print(format_table(
        ["policy", "FP", "vs precise", "nJ/backup", "bit failures"], rows
    ))
    print(
        "\nRelaxing low-order-bit retention to the millisecond scale of real"
        "\noutages frees backup energy for computation; high-order bits keep"
        "\nnominal retention, bounding the quality impact."
    )


if __name__ == "__main__":
    main()
