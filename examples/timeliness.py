#!/usr/bin/env python3
"""Timeliness: why forward progress alone undersells the NVP.

Records per-tick execution capacity for an NVP and a wait-and-compute
MCU on the same harvested trace, then replays both against a periodic
sensing task set under EDF.  The wait-and-compute design delivers its
instructions in rare post-charge bursts, so jobs with sub-second
deadlines mostly miss even when total progress looks respectable.

Run:  python examples/timeliness.py
"""

from repro import (
    AbstractWorkload,
    PeriodicTask,
    SystemSimulator,
    Telemetry,
    build_nvp,
    build_wait_compute,
    schedule_replay,
    standard_rectifier,
    wristwatch_trace,
)
from repro.analysis.report import format_table

TASKS = [
    PeriodicTask("sense", period_s=0.25, instructions=3_000),
    PeriodicTask("classify", period_s=1.0, instructions=15_000),
]


def capacity(builder, trace):
    telemetry = Telemetry()
    SystemSimulator(
        trace,
        builder(AbstractWorkload()),
        rectifier=standard_rectifier(),
        stop_when_finished=False,
        telemetry=telemetry,
    ).run()
    return telemetry.instructions


def main() -> None:
    trace = wristwatch_trace(8.0, seed=31, mean_power_w=25e-6)
    print(f"trace: {trace}")
    print(f"task set: {[t.name for t in TASKS]}\n")

    rows = []
    for label, builder in (("nvp", build_nvp), ("wait-compute", build_wait_compute)):
        series = capacity(builder, trace)
        report = schedule_replay(series, trace.dt_s, TASKS, policy="edf")
        rows.append(
            [
                label,
                sum(series),
                report.released,
                report.completed,
                f"{report.miss_rate:.1%}",
                f"{report.p95_response_s():.3g}s",
            ]
        )
    print(format_table(
        ["platform", "total instr", "jobs", "completed", "miss rate", "p95 resp"],
        rows,
    ))
    print(
        "\nSame harvester, same tasks: the NVP's fine-grained execution"
        "\nslices turn harvested joules into *on-time* results; the"
        "\nwait-and-compute design's burst schedule cannot."
    )


if __name__ == "__main__":
    main()
