#!/usr/bin/env python3
"""Quickstart: simulate an NVP on a wrist-worn energy harvester.

Builds the default nonvolatile processor (FeRAM state, 1 MHz core,
150 nF backup capacitor), feeds it a synthetic 10 s wristwatch power
trace through the standard AC-DC front end, and compares its forward
progress against the conventional wait-and-compute design and the
continuously-powered oracle.

Run:  python examples/quickstart.py
"""

from repro import (
    AbstractWorkload,
    SystemSimulator,
    Telemetry,
    analyze_outages,
    build_nvp,
    build_oracle,
    build_wait_compute,
    standard_rectifier,
    wristwatch_trace,
)


def main() -> None:
    # 1. A harvested-power trace: ~25 uW average, 0-2000 uW swings.
    trace = wristwatch_trace(duration_s=10.0, seed=7)
    outages = analyze_outages(trace)
    print(f"trace: {trace}")
    print(
        f"power emergencies: {outages.count} "
        f"(mean {outages.mean_duration_s * 1e3:.1f} ms, "
        f"duty {outages.duty_cycle:.0%})\n"
    )

    # 2. Three platforms, each running the same generic sensing workload.
    platforms = [
        build_nvp(AbstractWorkload()),
        build_wait_compute(AbstractWorkload()),
        build_oracle(AbstractWorkload()),
    ]

    # 3. Simulate and report.
    results = []
    for platform in platforms:
        result = SystemSimulator(
            trace, platform, rectifier=standard_rectifier(),
            stop_when_finished=False,
        ).run()
        results.append(result)
        print(result.summary())

    # 4. Zoom into ~50 ms of the NVP's life around its first wake-up:
    #    the restore / run / backup rhythm of each power emergency.
    telemetry = Telemetry()
    SystemSimulator(
        trace.slice(0.0, 1.0), build_nvp(AbstractWorkload()),
        rectifier=standard_rectifier(), stop_when_finished=False,
        telemetry=telemetry,
    ).run()
    start = max(0, telemetry.first_index("run") - 30)
    print("\nNVP timeline (~50 ms around the first wake-up):")
    print(telemetry.window(start, 500).render_strip(68))

    nvp, wait, oracle = results
    print(
        f"\nNVP achieves {nvp.forward_progress / max(1, wait.forward_progress):.1f}x "
        f"the forward progress of wait-and-compute\n"
        f"({nvp.forward_progress / max(1, oracle.forward_progress):.1%} of the "
        f"continuously-powered upper bound),\n"
        f"surviving {nvp.backups} power emergencies with "
        f"{nvp.lost_instructions} instructions lost."
    )


if __name__ == "__main__":
    main()
