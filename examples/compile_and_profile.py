#!/usr/bin/env python3
"""The NVC toolchain: compile, lint, profile, and run intermittently.

Writes a small sensing application in NVC (the framework's C-like
language), compiles it to NV16, runs the intermittency linter on it,
energy-profiles the binary, and finally executes it on an NVP across
power outages — showing the full "annotated C to intermittent
execution" flow real NVP toolchains provide.

Run:  python examples/compile_and_profile.py
"""

import numpy as np

from repro import (
    NVPConfig,
    NVPPlatform,
    SystemSimulator,
    nvp_capacitor,
    standard_rectifier,
    wristwatch_trace,
)
from repro.analysis.profiler import profile_program
from repro.lang import compile_source, interpret, lint
from repro.workloads.base import FunctionalWorkload

SOURCE = """
// Smooth a sensor trace and count activity peaks.
int sig[32] = {12, 14, 60, 200, 190, 40, 13, 12, 15, 18, 90, 220,
               210, 80, 20, 14, 11, 13, 70, 180, 205, 90, 25, 12,
               14, 16, 95, 215, 200, 60, 18, 13};
int peaks;                    // <-- read-modify-write accumulator!

func smooth(i) {
    return (sig[i - 1] + 2 * sig[i] + sig[i + 1]) / 4;
}

func main() {
    int i; int v;
    for (i = 1; i < 31; i = i + 1) {
        v = smooth(i);
        out(v);
        if (v > 128) { peaks = peaks + 1; }
    }
    out(peaks);
}
"""


def main() -> None:
    print("=== compile ===")
    compiled = compile_source(SOURCE)
    print(
        f"{len(compiled.program.instructions)} instructions, "
        f"{len(compiled.program.data_image)} data words"
    )

    print("\n=== intermittency lint ===")
    warnings = lint(SOURCE)
    for warning in warnings:
        print(
            f"  {warning.function}:{warning.line}: global {warning.name!r} "
            f"is {warning.kind} — replaying a rolled-back span would "
            "double-count it"
        )
    if not warnings:
        print("  clean")

    print("\n=== energy profile ===")
    profile = profile_program(compiled.program)
    print(profile.report(top=6))

    print("\n=== intermittent execution ===")
    expected = interpret(SOURCE).outputs
    workload = FunctionalWorkload(compiled.program, total_units=3)
    platform = NVPPlatform(workload, nvp_capacitor(), NVPConfig(), seed=1)
    trace = wristwatch_trace(10.0, seed=13, mean_power_w=20e-6)
    result = SystemSimulator(
        trace, platform, rectifier=standard_rectifier()
    ).run()
    outputs = np.array(workload.outputs, dtype=np.uint16)
    frames = len(outputs) // len(expected)
    exact = frames > 0 and np.array_equal(
        outputs[: frames * len(expected)], np.tile(expected, frames)
    )
    print(result.summary())
    print(
        f"{frames} complete frame(s), "
        f"{'bit-exact' if exact else 'MISMATCH'} across "
        f"{result.backups} backup/restore cycles"
    )
    print(
        "\n(The linter's warning is real: if a rollback ever replayed the "
        "peak-counting span,\n 'peaks' would double-count — precise NVP "
        "margins prevent rollbacks, which is why\n the outputs are exact "
        "here.)"
    )


if __name__ == "__main__":
    main()
