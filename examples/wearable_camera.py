#!/usr/bin/env python3
"""Batteryless wearable camera: edge detection across power outages.

The motivating application class for NVPs: a sensor captures frames
and the node must run real image-processing locally on harvested
power.  This example executes the *actual* NV16 Sobel binary on the
simulated core, interrupted hundreds of times by power emergencies,
and verifies the final edge maps are bit-exact — the NVP's defining
property.

Run:  python examples/wearable_camera.py
"""

import numpy as np

from repro import (
    SystemSimulator,
    build_kernel,
    build_nvp,
    build_wait_compute,
    expected_stream,
    make_functional_workload,
    psnr,
    standard_rectifier,
    wristwatch_trace,
)

FRAMES = 30
IMAGE_SIZE = 16


def run_platform(builder, label: str, trace):
    build = build_kernel("sobel", size=IMAGE_SIZE, seed=3)
    workload = make_functional_workload(build, frames=FRAMES)
    platform = builder(workload)
    result = SystemSimulator(
        trace, platform, rectifier=standard_rectifier(), stop_when_finished=False
    ).run()
    outputs = np.array(workload.outputs, dtype=np.uint16)
    complete_frames = len(outputs) // len(build.expected_output)
    reference = expected_stream(build, frames=max(1, complete_frames))
    exact = complete_frames > 0 and np.array_equal(
        outputs[: len(reference)], reference
    )
    print(f"--- {label} ---")
    print(f"  frames completed : {result.units_completed}/{FRAMES}")
    print(f"  backups/restores : {result.backups}/{result.restores}")
    print(f"  rollbacks        : {result.rollbacks}")
    if complete_frames:
        quality = psnr(
            reference.astype(float), outputs[: len(reference)].astype(float)
        )
        print(f"  output exactness : {'bit-exact' if exact else 'DEGRADED'}"
              f" (PSNR {quality if quality != float('inf') else 'inf'} dB)")
    else:
        print("  output exactness : no complete frame")
    print()
    return result


def main() -> None:
    trace = wristwatch_trace(duration_s=10.0, seed=21, mean_power_w=16e-6)
    print(
        f"Processing {FRAMES} frames of {IMAGE_SIZE}x{IMAGE_SIZE} Sobel edge "
        f"detection on a {trace.mean_power_w * 1e6:.0f} uW wristwatch harvester\n"
    )
    nvp = run_platform(build_nvp, "nonvolatile processor", trace)
    wait = run_platform(build_wait_compute, "wait-and-compute MCU", trace)
    print(
        f"NVP processed {nvp.units_completed} frames vs "
        f"{wait.units_completed} for wait-and-compute — and every completed "
        "frame is bit-exact despite the interruptions."
    )


if __name__ == "__main__":
    main()
