#!/usr/bin/env python3
"""Adaptive system policies: energy-band DPM and frequency scaling.

Demonstrates the two system-layer adaptation mechanisms the tutorial
surveys on top of NVPs:

1. *Energy-band DPM* — throttle execution when the capacitor drops
   below its efficient conversion band (more net energy harvested).
2. *Power-aware frequency scaling* — sweep the DVFS operating point
   per income level and train an income -> clock policy.

Run:  python examples/adaptive_policies.py
"""

from repro import (
    AbstractWorkload,
    Capacitor,
    ChargeEfficiency,
    NVPConfig,
    NVPPlatform,
    SystemSimulator,
    standard_rectifier,
    wristwatch_trace,
)
from repro.analysis.report import format_table
from repro.isa.energy import dvfs_model
from repro.policy.dpm import EnergyBandGovernor
from repro.policy.freqscale import PowerAwareFrequencyPolicy, best_frequency, frequency_sweep
from repro.system.presets import nvp_capacitor


def peaky_cap():
    return Capacitor(
        150e-9,
        v_max_v=3.3,
        leak_resistance_ohm=1e9,
        efficiency=ChargeEfficiency(
            eta_peak=0.92, eta_floor=0.35, v_opt_v=2.0, v_span_v=1.4
        ),
    )


def simulate(trace, platform):
    return SystemSimulator(
        trace, platform, rectifier=standard_rectifier(), stop_when_finished=False
    ).run()


def demo_dpm() -> None:
    print("=== Energy-band DPM vs greedy execution ===\n")
    trace = wristwatch_trace(6.0, seed=11, mean_power_w=30e-6)
    greedy = simulate(
        trace, NVPPlatform(AbstractWorkload(), peaky_cap(), NVPConfig(label="greedy"))
    )
    cap = peaky_cap()
    governor = EnergyBandGovernor.for_capacitor(cap, 0.4, 1.2, slowdown=0.25)
    dpm = simulate(
        trace,
        NVPPlatform(
            AbstractWorkload(), cap, NVPConfig(label="band-dpm"), governor=governor
        ),
    )
    print(format_table(
        ["policy", "FP", "backups"],
        [
            ["greedy", greedy.forward_progress, greedy.backups],
            ["band-DPM", dpm.forward_progress, dpm.backups],
        ],
    ))
    print(
        f"\nDPM gain: {dpm.forward_progress / max(1, greedy.forward_progress):.2f}x "
        f"({governor.throttled_ticks} throttled ticks)\n"
    )


def demo_freqscale() -> None:
    print("=== Power-aware frequency scaling (DVFS) ===\n")
    frequencies = [0.25e6, 0.5e6, 1e6, 2e6, 4e6]
    incomes = [10e-6, 40e-6, 150e-6]
    policy = PowerAwareFrequencyPolicy()
    rows = []
    for income in incomes:
        trace = wristwatch_trace(3.0, seed=17, mean_power_w=income)

        def evaluate(frequency, trace=trace):
            workload = AbstractWorkload(energy_model=dvfs_model(frequency))
            config = NVPConfig(clock_hz=frequency, label=f"{frequency/1e6:g}MHz")
            return simulate(
                trace, NVPPlatform(workload, nvp_capacitor(), config)
            )

        sweep = frequency_sweep(frequencies, evaluate)
        winner, best_result = best_frequency(sweep)
        policy.add_training_point(income, winner)
        rows.append(
            [f"{income * 1e6:.0f} uW"]
            + [result.forward_progress for _, result in sweep]
            + [f"{winner / 1e6:g} MHz"]
        )
    print(format_table(
        ["income"] + [f"{f / 1e6:g}MHz" for f in frequencies] + ["best"], rows
    ))
    print("\ntrained policy recommendations:")
    for income in (15e-6, 100e-6):
        freq = policy.recommend(income)
        print(f"  sampled income {income * 1e6:.0f} uW -> run at {freq / 1e6:g} MHz")


def main() -> None:
    demo_dpm()
    demo_freqscale()


if __name__ == "__main__":
    main()
