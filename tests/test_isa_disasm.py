"""Disassembler tests, including the assemble/disassemble round-trip."""

from hypothesis import given, strategies as st

from repro.isa.assembler import assemble
from repro.isa.disasm import disassemble, disassemble_program
from repro.isa.instructions import (
    IMM_MAX,
    IMM_MIN,
    Instruction,
    Opcode,
)


class TestFormatting:
    def test_alu(self):
        assert disassemble(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)) == "add r1, r2, r3"

    def test_load_store(self):
        assert disassemble(Instruction(Opcode.LD, rd=1, rs1=2, imm=-3)) == "ld r1, -3(r2)"
        assert disassemble(Instruction(Opcode.ST, rs1=2, rs2=4, imm=5)) == "st r4, 5(r2)"

    def test_nop_halt(self):
        assert disassemble(Instruction(Opcode.NOP)) == "nop"
        assert disassemble(Instruction(Opcode.HALT)) == "halt"

    def test_accepts_encoded_word(self):
        from repro.isa.instructions import encode

        word = encode(Instruction(Opcode.JAL, rd=6, imm=9))
        assert disassemble(word) == "jal r6, 9"

    def test_program_listing_has_pc(self):
        lines = disassemble_program(
            [Instruction(Opcode.NOP), Instruction(Opcode.HALT)]
        )
        assert lines[0].startswith("0x0000:")
        assert lines[1].startswith("0x0001:")


@given(
    op=st.sampled_from(sorted(Opcode)),
    rd=st.integers(0, 7),
    rs1=st.integers(0, 7),
    rs2=st.integers(0, 7),
    imm=st.integers(IMM_MIN, IMM_MAX),
)
def test_disassembly_reassembles_identically(op, rd, rs1, rs2, imm):
    """Property: assemble(disassemble(i)) reproduces the encoded fields
    that matter for that opcode."""
    instr = Instruction(op, rd=rd, rs1=rs1, rs2=rs2, imm=imm)
    text = disassemble(instr)
    reassembled = assemble(text).instructions[0]
    assert disassemble(reassembled) == text
