"""Tests for two-tier storage and NVM wear/endurance modelling."""

import numpy as np
import pytest

from repro.core.config import NVPConfig
from repro.core.nvp import NVPPlatform
from repro.harvest.sources import square_trace, wristwatch_trace
from repro.nvm.array import NVMArray
from repro.nvm.technology import NVMTechnology
from repro.storage.capacitor import Capacitor, ChargeEfficiency
from repro.storage.tiered import TieredStorage
from repro.system.presets import standard_rectifier
from repro.system.simulator import SystemSimulator
from repro.workloads.base import AbstractWorkload


def lossless(capacitance):
    return Capacitor(
        capacitance,
        v_max_v=3.3,
        leak_resistance_ohm=1e18,
        efficiency=ChargeEfficiency(1.0, 1.0, 0.0, 1.0),
    )


def tiered(primary_f=150e-9, reservoir_f=10e-6, **kwargs):
    return TieredStorage(lossless(primary_f), lossless(reservoir_f), **kwargs)


class TestTieredStorage:
    def test_validation(self):
        with pytest.raises(ValueError):
            tiered(transfer_efficiency=0.0)
        with pytest.raises(ValueError):
            tiered(transfer_power_w=0.0)
        with pytest.raises(ValueError):
            tiered(refill_fraction=1.5)
        store = tiered()
        with pytest.raises(ValueError):
            store.step(-1.0, 0.0, 1e-4)
        with pytest.raises(ValueError):
            store.draw(-1.0)

    def test_income_fills_primary_first(self):
        store = tiered()
        store.step(100e-6, 0.0, 1e-3)
        assert store.primary.energy_j > 0
        assert store.reservoir.energy_j == 0.0

    def test_overflow_spills_to_reservoir(self):
        store = tiered(primary_f=10e-9)  # tiny primary (54 nJ)
        store.step(2000e-6, 0.0, 1e-3)  # 2 uJ >> capacity
        assert store.primary.energy_j == pytest.approx(
            store.primary.energy_max_j
        )
        assert store.reservoir.energy_j > 0
        assert store.total_spilled_j > 0

    def test_spill_pays_transfer_efficiency(self):
        store = tiered(primary_f=10e-9, transfer_efficiency=0.5)
        store.step(2000e-6, 0.0, 1e-3)
        offered = 2e-6 - store.primary.energy_max_j
        assert store.reservoir.energy_j == pytest.approx(0.5 * offered, rel=0.05)

    def test_refill_during_drought(self):
        store = tiered()
        store.reservoir.set_energy(5e-6)
        store.primary.set_energy(0.0)
        store.step(0.0, 0.0, 1e-3)
        assert store.primary.energy_j > 0
        assert store.total_refilled_j > 0

    def test_refill_rate_limited(self):
        store = tiered(transfer_power_w=100e-6)
        store.reservoir.set_energy(5e-6)
        store.primary.set_energy(0.0)
        store.step(0.0, 0.0, 1e-3)
        assert store.primary.energy_j <= 100e-6 * 1e-3 + 1e-15

    def test_no_refill_above_fraction(self):
        store = tiered(refill_fraction=0.5)
        store.reservoir.set_energy(5e-6)
        store.primary.set_energy(0.9 * store.primary.energy_max_j)
        store.step(0.0, 0.0, 1e-3)
        assert store.total_refilled_j == 0.0

    def test_draw_falls_back_to_reservoir(self):
        store = tiered(transfer_efficiency=1.0)
        store.primary.set_energy(1e-7)
        store.reservoir.set_energy(1e-6)
        got = store.draw(5e-7)
        assert got == pytest.approx(5e-7)
        assert store.reservoir.energy_j < 1e-6

    def test_energy_j_reports_primary_only(self):
        store = tiered()
        store.reservoir.set_energy(1e-6)
        assert store.energy_j == 0.0
        assert store.total_energy_j == pytest.approx(1e-6)

    def test_nvp_gains_from_reservoir_on_bursty_income(self):
        """Spiky income overflows a lone small capacitor; the tier
        captures the spikes and converts them into forward progress."""
        trace = wristwatch_trace(6.0, seed=20, mean_power_w=30e-6)

        def run(storage):
            platform = NVPPlatform(AbstractWorkload(), storage, NVPConfig())
            return SystemSimulator(
                trace, platform, rectifier=standard_rectifier(),
                stop_when_finished=False,
            ).run()

        alone = run(lossless(150e-9))
        two_tier = run(tiered())
        assert two_tier.forward_progress > 1.1 * alone.forward_progress

    def test_platform_compatible_interface(self):
        trace = square_trace(500e-6, 0.0, 0.1, 0.5, 1.0)
        platform = NVPPlatform(AbstractWorkload(), tiered(), NVPConfig())
        result = SystemSimulator(trace, platform, stop_when_finished=False).run()
        # The reservoir bridges the off-periods entirely here, so the
        # work stays volatile (no backups needed) — but it executed.
        assert result.total_executed > 0


def short_lived_tech(endurance=10):
    return NVMTechnology(
        name="weak",
        write_energy_j_per_bit=1e-12,
        read_energy_j_per_bit=1e-13,
        write_latency_s=50e-9,
        read_latency_s=50e-9,
        retention_s=3.15e8,
        endurance_cycles=endurance,
        wakeup_time_s=1e-6,
        supports_retention_relaxation=True,
    )


class TestWear:
    def test_write_counts_tracked(self):
        array = NVMArray(4)
        for _ in range(5):
            array.write(0, 1)
        array.write(1, 2)
        report = array.wear_report()
        assert report.max_writes == 5
        assert report.mean_writes == pytest.approx(6 / 4)

    def test_headroom(self):
        array = NVMArray(2, short_lived_tech(endurance=10))
        for _ in range(5):
            array.write(0, 1)
        assert array.wear_report().headroom == pytest.approx(0.5)

    def test_no_enforcement_by_default(self):
        array = NVMArray(2, short_lived_tech(endurance=3))
        for value in range(10):
            array.write(0, value)
        assert array.read(0) == 9  # keeps updating
        assert array.wear_report().worn_words == 1

    def test_enforcement_sticks_worn_cells(self):
        array = NVMArray(2, short_lived_tech(endurance=3), enforce_endurance=True)
        for value in range(10):
            array.write(0, value)
        # Writes 1..3 landed; the rest were dropped.
        assert array.read(0) == 2
        assert array.stats.worn_writes == 7

    def test_worn_writes_still_cost_energy(self):
        array = NVMArray(1, short_lived_tech(endurance=1), enforce_endurance=True)
        array.write(0, 1)
        energy_after_first = array.stats.write_energy_j
        array.write(0, 2)
        assert array.stats.write_energy_j == pytest.approx(2 * energy_after_first)

    def test_lifetime_consistency_with_technology_model(self):
        """The array-level wear report agrees with the analytic
        lifetime screen: at 200 backups/s, ReRAM's 1e8 endurance is
        exhausted in under ten days."""
        from repro.nvm.technology import RERAM

        backups_per_second = 200.0
        lifetime = RERAM.lifetime_s(backups_per_second)
        assert lifetime == pytest.approx(1e8 / 200.0)
        assert lifetime < 10 * 86_400
