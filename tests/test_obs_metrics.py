"""Tests for the metrics registry (counters, gauges, histograms, labels)."""

import math
import warnings

import pytest

from repro.obs.metrics import DEFAULT_MAX_SERIES, MetricsRegistry


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("ticks")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("ticks")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labeled_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("backups", labels=("platform",))
        counter.labels(platform="nvp").inc(3)
        counter.labels(platform="checkpoint").inc(1)
        assert counter.labels(platform="nvp").value == 3
        assert counter.labels(platform="checkpoint").value == 1

    def test_unlabeled_access_on_labeled_metric_raises(self):
        registry = MetricsRegistry()
        counter = registry.counter("backups", labels=("platform",))
        with pytest.raises(ValueError):
            counter.inc()

    def test_labels_on_unlabeled_metric_raise(self):
        counter = MetricsRegistry().counter("ticks")
        with pytest.raises(ValueError):
            counter.labels(platform="nvp")

    def test_wrong_label_names_raise(self):
        registry = MetricsRegistry()
        counter = registry.counter("backups", labels=("platform",))
        with pytest.raises(ValueError):
            counter.labels(state="run")
        with pytest.raises(ValueError):
            counter.labels(platform="nvp", state="run")


class TestGauge:
    def test_set_and_read(self):
        gauge = MetricsRegistry().gauge("energy_j")
        gauge.set(1.5e-6)
        assert gauge.value == 1.5e-6

    def test_callback_gauge_samples_lazily(self):
        state = {"value": 0.0}
        gauge = MetricsRegistry().gauge("energy_j", fn=lambda: state["value"])
        state["value"] = 42.0
        assert gauge.value == 42.0

    def test_callback_gauge_cannot_be_set(self):
        gauge = MetricsRegistry().gauge("energy_j", fn=lambda: 1.0)
        with pytest.raises(ValueError):
            gauge.set(2.0)

    def test_labeled_callback_gauge(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("storage_energy_j", labels=("platform",))
        gauge.labels(platform="nvp").set_function(lambda: 7.0)
        assert gauge.labels(platform="nvp").value == 7.0


class TestHistogram:
    def test_observe_buckets_and_sum(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("outage_s", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 5.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(5.0555)

    def test_bucket_rows_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("outage_s", buckets=(0.001, 0.01))
        histogram.observe(0.0005)
        histogram.observe(0.005)
        rows = {field: value for _, _, _, field, value in histogram.rows()}
        assert rows["le_0.001"] == 1
        assert rows["le_0.01"] == 2
        assert rows["le_inf"] == 2

    def test_infinite_bucket_added_automatically(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0,))
        assert math.isinf(histogram.buckets[-1])

    def test_quantile_approximation(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.6, 3.0):
            histogram.observe(value)
        assert histogram._default_child().quantile(0.5) == 2.0

    def test_quantile_zero_is_first_populated_bucket(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        histogram.observe(1.5)  # nothing in the le_1 bucket
        child = histogram._default_child()
        assert child.quantile(0.0) == 2.0

    def test_quantile_one_is_last_populated_bucket(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0):
            histogram.observe(value)
        assert histogram._default_child().quantile(1.0) == 4.0

    def test_quantile_of_empty_histogram_is_zero(self):
        child = MetricsRegistry().histogram("h")._default_child()
        assert child.quantile(0.0) == 0.0
        assert child.quantile(0.5) == 0.0
        assert child.quantile(1.0) == 0.0

    def test_quantile_overflow_bucket_falls_back_to_mean(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0,))
        histogram.observe(10.0)
        histogram.observe(30.0)
        assert histogram._default_child().quantile(0.5) == 20.0

    def test_quantile_out_of_range_rejected(self):
        child = MetricsRegistry().histogram("h")._default_child()
        with pytest.raises(ValueError):
            child.quantile(-0.1)
        with pytest.raises(ValueError):
            child.quantile(1.1)

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=())


class TestCardinalityGuard:
    def test_series_capped_with_one_warning(self):
        registry = MetricsRegistry(max_series=3)
        counter = registry.counter("ops", labels=("op",))
        for index in range(3):
            counter.labels(op=str(index)).inc()
        with pytest.warns(RuntimeWarning, match="exceeded 3 labeled series"):
            counter.labels(op="overflow-a").inc()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second overflow must not warn
            counter.labels(op="overflow-b").inc()
        assert len(counter.series()) == 3
        assert counter.overflow_count == 2

    def test_overflow_series_dropped_from_rows(self):
        registry = MetricsRegistry(max_series=1)
        counter = registry.counter("ops", labels=("op",))
        counter.labels(op="kept").inc()
        with pytest.warns(RuntimeWarning):
            counter.labels(op="dropped").inc(100)
        labels = {row[2] for row in counter.rows()}
        assert labels == {"op=kept"}

    def test_existing_series_unaffected_past_cap(self):
        registry = MetricsRegistry(max_series=1)
        counter = registry.counter("ops", labels=("op",))
        counter.labels(op="kept").inc()
        with pytest.warns(RuntimeWarning):
            counter.labels(op="extra").inc()
        counter.labels(op="kept").inc()  # still reaches the real series
        assert counter.labels(op="kept").value == 2

    def test_overflow_updates_share_one_child(self):
        registry = MetricsRegistry(max_series=1)
        counter = registry.counter("ops", labels=("op",))
        counter.labels(op="kept").inc()
        with pytest.warns(RuntimeWarning):
            first = counter.labels(op="a")
        second = counter.labels(op="b")
        assert first is second

    def test_guard_applies_to_histograms(self):
        registry = MetricsRegistry(max_series=1)
        histogram = registry.histogram("h", labels=("k",), buckets=(1.0,))
        histogram.labels(k="kept").observe(0.5)
        with pytest.warns(RuntimeWarning):
            histogram.labels(k="extra").observe(0.5)
        assert {row[2] for row in histogram.rows()} == {"k=kept"}

    def test_default_cap(self):
        counter = MetricsRegistry().counter("ops", labels=("op",))
        assert counter.max_series == DEFAULT_MAX_SERIES

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_series=0).counter("ops", labels=("op",))


class TestRegistry:
    def test_reregistration_returns_same_metric(self):
        registry = MetricsRegistry()
        first = registry.counter("backups", labels=("platform",))
        second = registry.counter("backups", labels=("platform",))
        assert first is second

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("x", labels=("b",))

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad name!")

    def test_get_and_contains(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        assert "x" in registry
        assert registry.get("x") is counter
        with pytest.raises(KeyError):
            registry.get("missing")

    def test_rows_cover_all_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops", labels=("op",))
        counter.labels(op="a").inc()
        counter.labels(op="b").inc(2)
        registry.gauge("level").set(0.5)
        rows = registry.rows()
        names = {(row[1], row[2]) for row in rows}
        assert ("ops", "op=a") in names
        assert ("ops", "op=b") in names
        assert ("level", "") in names

    def test_snapshot_view(self):
        registry = MetricsRegistry()
        registry.counter("ticks").inc(5)
        assert registry.snapshot()["ticks"]["value"] == 5


class TestDeterministicOrdering:
    """Label ordering is sorted, not insertion-ordered — the property
    the byte-stable Prometheus/JSONL exposition rests on."""

    def test_series_keys_sort_label_names(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops", labels=("b", "a"))
        counter.labels(b="2", a="1").inc()
        (key,) = registry.get("ops").series().keys()
        assert key == (("a", "1"), ("b", "2"))

    def test_label_order_does_not_fork_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops", labels=("a", "b"))
        counter.labels(a="1", b="2").inc()
        counter.labels(b="2", a="1").inc()
        series = registry.get("ops").series()
        assert len(series) == 1
        (child,) = series.values()
        assert child.value == 2

    def test_metrics_iteration_is_name_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta")
        registry.gauge("alpha")
        registry.counter("mid")
        assert [m.name for m in registry.metrics()] == [
            "alpha", "mid", "zeta",
        ]
