"""Unit tests for the analytic STT-MRAM retention/energy model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.nvm.sttram import (
    DEFAULT_STT,
    STTParameters,
    TAU0_S,
    energy_saving_fraction,
    optimal_pulse_width,
    required_delta,
    retention_from_delta,
    write_current,
    write_energy,
    write_energy_at_optimum,
)
from repro.nvm.technology import SECONDS_PER_DAY, SECONDS_PER_YEAR


class TestDelta:
    def test_known_values(self):
        assert required_delta(10e-3) == pytest.approx(math.log(1e7), rel=1e-6)
        assert required_delta(SECONDS_PER_DAY) == pytest.approx(
            math.log(SECONDS_PER_DAY / TAU0_S), rel=1e-6
        )

    def test_clamped_at_min_delta(self):
        assert required_delta(2e-9) == DEFAULT_STT.min_delta

    def test_rejects_nonpositive_retention(self):
        with pytest.raises(ValueError):
            required_delta(0.0)

    def test_inverse_roundtrip(self):
        delta = required_delta(1.0)
        assert retention_from_delta(delta) == pytest.approx(1.0, rel=1e-9)

    @given(st.floats(min_value=1e-6, max_value=1e9))
    def test_delta_monotone_in_retention(self, retention):
        assert required_delta(retention * 2) >= required_delta(retention)


class TestWriteCurrent:
    def test_shorter_pulses_need_more_current(self):
        long_pulse = write_current(1.0, 10e-9)
        short_pulse = write_current(1.0, 1e-9)
        assert short_pulse > long_pulse

    def test_longer_retention_needs_more_current(self):
        assert write_current(SECONDS_PER_YEAR, 5e-9) > write_current(1e-3, 5e-9)

    def test_rejects_nonpositive_pulse(self):
        with pytest.raises(ValueError):
            write_current(1.0, 0.0)


class TestWriteEnergy:
    def test_optimal_pulse_minimises_energy(self):
        opt = optimal_pulse_width(1.0)
        e_opt = write_energy(1.0, opt)
        for factor in (0.25, 0.5, 2.0, 4.0):
            assert write_energy(1.0, opt * factor) >= e_opt

    def test_energy_scales_with_delta_squared(self):
        e1 = write_energy_at_optimum(retention_from_delta(10))
        e2 = write_energy_at_optimum(retention_from_delta(20))
        assert e2 / e1 == pytest.approx(4.0, rel=1e-6)

    def test_headline_saving_one_day_to_ten_ms(self):
        """Relaxing 1 day -> 10 ms should save roughly 75% write energy
        (the published figure for this tradeoff is 77%)."""
        saving = energy_saving_fraction(10e-3, SECONDS_PER_DAY)
        assert 0.70 <= saving <= 0.80

    def test_saving_is_zero_for_equal_retention(self):
        assert energy_saving_fraction(1.0, 1.0) == pytest.approx(0.0)

    def test_pj_scale_magnitudes(self):
        """10-year-retention writes should land in the pJ/bit regime."""
        energy = write_energy_at_optimum(10 * SECONDS_PER_YEAR)
        assert 0.05e-12 < energy < 50e-12


class TestParameters:
    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            STTParameters(ic_per_delta_a=0.0)
        with pytest.raises(ValueError):
            STTParameters(min_delta=0.0)

    def test_custom_resistance_scales_energy(self):
        low = STTParameters(resistance_ohm=1000.0)
        high = STTParameters(resistance_ohm=4000.0)
        assert write_energy_at_optimum(1.0, high) == pytest.approx(
            4 * write_energy_at_optimum(1.0, low)
        )
