"""Compiled-kernel correctness plus a differential compiler fuzzer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.cpu import CPU
from repro.lang.codegen import compile_source
from repro.lang.interp import interpret
from repro.workloads.compiled import (
    NVC_KERNELS,
    build_moving_average,
    build_sobel,
    build_threshold_count,
    moving_average_reference,
)
from repro.workloads.images import test_image as make_image


def execute(build, max_instructions=2_000_000):
    cpu = CPU(build.program.instructions)
    cpu.memory.load_image(build.program.data_image)
    cpu.run(max_instructions=max_instructions)
    assert cpu.state.halted
    return np.array(cpu.memory.output, dtype=np.uint16)


class TestCompiledKernels:
    @pytest.mark.parametrize("name", sorted(NVC_KERNELS))
    def test_matches_reference(self, name):
        build = NVC_KERNELS[name]()
        outputs = execute(build)
        assert np.array_equal(outputs, build.expected_output), name

    def test_nvc_sobel_matches_assembly_sobel(self):
        """The compiled Sobel and the hand-written assembly Sobel must
        agree exactly (both match the shared NumPy reference)."""
        from repro.workloads.sobel import build as asm_build

        img = make_image(10, seed=5)
        compiled = execute(build_sobel(image=img))
        assembly = execute(asm_build(image=img))
        assert np.array_equal(compiled, assembly)

    def test_moving_average_window_values(self):
        signal = np.array([4, 8, 12, 16, 20, 24], dtype=np.uint8)
        build = build_moving_average(signal=signal)
        assert list(execute(build)) == [10, 14, 18]
        assert list(moving_average_reference(signal)) == [10, 14, 18]

    def test_threshold_count_exact(self):
        img = np.array([[100, 200], [128, 129]], dtype=np.uint8)
        build = build_threshold_count(image=img, threshold=128)
        assert list(execute(build)) == [2]

    def test_compiled_kernel_runs_under_intermittent_power(self):
        """A compiled kernel survives NVP power cycling bit-exactly."""
        from repro.core.config import NVPConfig
        from repro.core.nvp import NVPPlatform
        from repro.harvest.sources import square_trace
        from repro.storage.capacitor import Capacitor, ChargeEfficiency
        from repro.system.simulator import SystemSimulator
        from repro.workloads.base import FunctionalWorkload

        build = build_moving_average(length=48, seed=3)
        workload = FunctionalWorkload(build.program, total_units=2)
        cap = Capacitor(
            22e-9, v_max_v=3.3, leak_resistance_ohm=1e18,
            efficiency=ChargeEfficiency(1.0, 1.0, 0.0, 1.0),
        )
        platform = NVPPlatform(workload, cap, NVPConfig(), seed=4)
        trace = square_trace(
            high_w=800e-6, low_w=0.0, period_s=0.011, duty=0.1, duration_s=10.0
        )
        result = SystemSimulator(trace, platform).run()
        assert result.completed
        assert result.backups >= 1
        outputs = np.array(workload.outputs, dtype=np.uint16)
        assert np.array_equal(outputs, np.tile(build.expected_output, 2))


# ---- differential fuzzing --------------------------------------------------------

_NUMS = st.integers(0, 0xFFFF)
_BIN_OPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
            "==", "!=", "<", "<=", ">", ">=")
_UN_OPS = ("-", "~", "!")


def _expr_strategy():
    def extend(children):
        binary = st.tuples(
            st.sampled_from(_BIN_OPS), children, children
        ).map(lambda t: f"({t[1]} {t[0]} {t[2]})")
        unary = st.tuples(st.sampled_from(_UN_OPS), children).map(
            lambda t: f"({t[0]}{t[1]})"
        )
        logical = st.tuples(
            st.sampled_from(("&&", "||")), children, children
        ).map(lambda t: f"({t[1]} {t[0]} {t[2]})")
        return st.one_of(binary, unary, logical)

    leaves = st.one_of(
        _NUMS.map(str),
        st.sampled_from(("g0", "g1", "a[0]", "a[1]", "a[g0 % 4]")),
    )
    return st.recursive(leaves, extend, max_leaves=12)


@given(
    expr=_expr_strategy(),
    g0=_NUMS,
    g1=_NUMS,
    a=st.lists(_NUMS, min_size=4, max_size=4),
)
@settings(max_examples=120, deadline=None)
def test_differential_expression_fuzz(expr, g0, g1, a):
    """Property: for any generated expression and globals, the compiled
    program and the interpreter produce identical output."""
    source = f"""
    int g0 = {g0};
    int g1 = {g1};
    int a[4] = {{{', '.join(str(v) for v in a)}}};
    func main() {{ out({expr}); }}
    """
    expected = interpret(source).outputs
    compiled = compile_source(source)
    cpu = CPU(compiled.program.instructions)
    cpu.memory.load_image(compiled.program.data_image)
    cpu.run(max_instructions=100_000)
    assert cpu.state.halted
    assert cpu.memory.output == expected, source
