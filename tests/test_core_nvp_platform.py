"""Scenario tests for the NVP platform state machine."""

import numpy as np
import pytest

from repro.core.config import NVPConfig
from repro.core.nvp import NVPPlatform
from repro.harvest.sources import constant_trace, square_trace
from repro.storage.capacitor import Capacitor, ChargeEfficiency
from repro.system.simulator import SystemSimulator
from repro.workloads.base import AbstractWorkload
from repro.workloads.suite import build_kernel, expected_stream, make_functional_workload

DT = 1e-4


def lossless_cap(capacitance=1e-6):
    return Capacitor(
        capacitance,
        v_max_v=3.3,
        leak_resistance_ohm=1e18,
        efficiency=ChargeEfficiency(1.0, 1.0, 0.0, 1.0),
    )


def make_platform(workload=None, config=None, capacitance=1e-6):
    workload = workload if workload is not None else AbstractWorkload()
    return NVPPlatform(workload, lossless_cap(capacitance), config, seed=0)


class TestBasicLifecycle:
    def test_starts_off_and_waits_for_energy(self):
        platform = make_platform()
        report = platform.tick(0.0, DT)
        assert report.state == "off"
        assert report.instructions == 0

    def test_wakes_once_start_threshold_reached(self):
        platform = make_platform()
        plan = platform.thresholds(DT)
        # Feed generous power until the platform restores.
        states = []
        for _ in range(200):
            states.append(platform.tick(2000e-6, DT).state)
            if states[-1] == "restore":
                break
        assert "restore" in states
        assert platform.storage.energy_j >= 0
        assert plan.start_threshold_j > plan.backup_threshold_j

    def test_runs_after_restore(self):
        platform = make_platform()
        executed = 0
        for _ in range(500):
            report = platform.tick(2000e-6, DT)
            executed += report.instructions
            if executed > 0:
                break
        assert executed > 0

    def test_first_wake_is_cold_start(self):
        platform = make_platform()
        for _ in range(500):
            if platform.tick(2000e-6, DT).state == "restore":
                break
        # No backup image yet, so no controller restore happened.
        assert platform.controller.restore_count == 0

    def test_abundant_power_needs_no_backups(self):
        platform = make_platform()
        for _ in range(2000):
            platform.tick(2000e-6, DT)
        assert platform.controller.backup_count == 0
        assert platform.ledger.volatile > 0


class TestBackupRestoreCycle:
    def run_square(self, duration=1.0, high=1000e-6):
        trace = square_trace(
            high_w=high, low_w=0.0, period_s=0.1, duty=0.5, duration_s=duration
        )
        platform = make_platform()
        result = SystemSimulator(trace, platform, stop_when_finished=False).run()
        return platform, result

    def test_power_cycles_cause_backups_and_restores(self):
        platform, result = self.run_square()
        assert result.backups >= 5
        assert result.restores >= 5
        # Each off-period triggers one backup (plus possibly threshold
        # oscillation), and one restore on recovery.
        assert result.failed_backups == 0
        assert result.rollbacks == 0

    def test_forward_progress_is_committed_work(self):
        platform, result = self.run_square()
        assert result.forward_progress > 0
        assert result.forward_progress == platform.ledger.persistent
        assert result.lost_instructions == 0

    def test_progress_survives_every_outage(self):
        """Persistent progress must be monotone non-decreasing."""
        trace = square_trace(
            high_w=1000e-6, low_w=0.0, period_s=0.05, duty=0.5, duration_s=0.5
        )
        platform = make_platform()
        last = 0
        for p in trace.samples_w:
            platform.tick(float(p), DT)
            assert platform.ledger.persistent >= last
            last = platform.ledger.persistent

    def test_backup_energy_accounted(self):
        platform, result = self.run_square()
        assert result.backup_energy_j > 0
        assert result.backup_energy_j == pytest.approx(
            platform.controller.total_backup_energy_j
        )


class TestFailureModes:
    def test_crash_without_backup_rolls_back(self):
        """If the tick's run energy exceeds what is stored, volatile
        work is lost."""
        platform = make_platform()
        plan = platform.thresholds(DT)
        # Get the platform running.
        for _ in range(500):
            if platform.tick(2000e-6, DT).state == "run":
                break
        platform.ledger.execute(0)  # no-op, platform is mid-run
        volatile_before = platform.ledger.volatile
        assert volatile_before > 0
        # Starve it: barely above the backup threshold, no income.
        platform.storage.set_energy(plan.backup_threshold_j * 1.0001)
        report = platform.tick(0.0, DT)
        # Either it backed up in time (energy fell to threshold) or the
        # run tick browned out; both must not lose accounting.
        total = (
            platform.ledger.persistent
            + platform.ledger.volatile
            + platform.ledger.lost
        )
        assert total == platform.ledger.total_executed
        assert report.state in ("backup", "run")

    def test_failed_backup_counts_and_rolls_back(self):
        platform = make_platform()
        for _ in range(500):
            if platform.tick(2000e-6, DT).state == "run":
                break
        plan = platform.thresholds(DT)
        # Force stored energy below the backup cost but also below the
        # trigger threshold, so the next tick attempts a backup and fails.
        platform.storage.set_energy(plan.backup_cost_j * 0.1)
        report = platform.tick(0.0, DT)
        assert report.state == "backup"
        assert platform.failed_backups == 1
        assert platform.ledger.rollbacks == 1

    def test_failed_restore_keeps_charging(self):
        platform = make_platform()
        # Simulate a prior successful backup so a restore is attempted.
        snapshot = platform.workload.snapshot()
        words = platform.workload.snapshot_words(snapshot)
        platform.controller.backup(words)
        plan = platform.thresholds(DT)
        # Energy at start threshold but restore draw will be re-checked;
        # make restore fail by setting energy below restore cost.
        restore_cost = platform.controller.restore_energy_j()
        if restore_cost < plan.start_threshold_j:
            pytest.skip("restore cost below start threshold; cannot fail here")

    def test_finished_workload_reports_done(self):
        workload = AbstractWorkload(total_units=1, instructions_per_unit=10)
        platform = make_platform(workload)
        for _ in range(2000):
            report = platform.tick(2000e-6, DT)
            if platform.finished:
                break
        assert platform.finished
        assert platform.tick(0.0, DT).state == "done"


class TestFunctionalUnderIntermittence:
    def test_sobel_completes_exactly_despite_outages(self):
        """The headline NVP property: a real program finishes with
        bit-exact outputs across many power interruptions."""
        build = build_kernel("sobel", size=8)
        workload = make_functional_workload(build, frames=4)
        # A 22 nF backup capacitor cannot ride through the ~10 ms
        # outages, so every off-period forces a real backup/restore.
        platform = NVPPlatform(workload, lossless_cap(22e-9), NVPConfig(), seed=1)
        trace = square_trace(
            high_w=800e-6, low_w=0.0, period_s=0.011, duty=0.1, duration_s=10.0
        )
        result = SystemSimulator(trace, platform).run()
        assert result.completed, result.summary()
        assert result.backups >= 3  # it really was interrupted
        outputs = np.array(workload.outputs, dtype=np.uint16)
        assert np.array_equal(outputs, expected_stream(build, frames=4))

    def test_replay_idempotent_kernel_correct_after_rollback(self):
        """Drive a functional workload into a mid-frame restore and
        confirm outputs stay exact (sobel is replay-idempotent)."""
        build = build_kernel("sobel", size=8)
        workload = make_functional_workload(build, frames=1)
        platform = NVPPlatform(workload, lossless_cap(22e-9), NVPConfig(), seed=2)
        # Short on-bursts guarantee several backup/restore cycles per frame.
        trace = square_trace(
            high_w=800e-6, low_w=0.0, period_s=0.005, duty=0.1, duration_s=10.0
        )
        result = SystemSimulator(trace, platform).run()
        assert result.completed
        assert result.restores >= 2
        outputs = np.array(workload.outputs, dtype=np.uint16)
        assert np.array_equal(outputs, build.expected_output)


class TestStats:
    def test_stats_keys_complete(self):
        platform = make_platform()
        platform.tick(100e-6, DT)
        stats = platform.stats()
        for key in (
            "forward_progress", "total_executed", "lost_instructions",
            "units_completed", "backups", "restores", "failed_backups",
            "failed_restores", "rollbacks", "consumed_j",
            "backup_energy_j", "restore_energy_j", "flipped_bits",
            "volatile_at_end",
        ):
            assert key in stats
