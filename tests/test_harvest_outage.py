"""Unit tests for outage analytics."""

import numpy as np
import pytest

from repro.harvest.outage import analyze_outages, outage_intervals
from repro.harvest.sources import constant_trace, square_trace
from repro.harvest.traces import PowerTrace


def trace_of(values):
    return PowerTrace(np.asarray(values, dtype=float), 1e-4)


class TestIntervals:
    def test_no_outage(self):
        assert outage_intervals(trace_of([5, 5, 5]), threshold_w=1.0) == []

    def test_all_outage(self):
        assert outage_intervals(trace_of([0, 0, 0]), threshold_w=1.0) == [(0, 3)]

    def test_interior_outage(self):
        intervals = outage_intervals(trace_of([5, 0, 0, 5]), threshold_w=1.0)
        assert intervals == [(1, 3)]

    def test_leading_and_trailing(self):
        intervals = outage_intervals(trace_of([0, 5, 0]), threshold_w=1.0)
        assert intervals == [(0, 1), (2, 3)]

    def test_threshold_is_exclusive_below(self):
        # A sample exactly at threshold counts as powered.
        assert outage_intervals(trace_of([1.0, 1.0]), threshold_w=1.0) == []

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            outage_intervals(trace_of([1.0]), threshold_w=-1.0)


class TestStats:
    def test_square_wave_exact_counts(self):
        # 1 s of 10 ms period at 40% duty -> 100 outages of 6 ms.
        trace = square_trace(
            high_w=100e-6, low_w=0.0, period_s=0.01, duty=0.4, duration_s=1.0
        )
        stats = analyze_outages(trace, threshold_w=33e-6)
        assert stats.count == 100
        assert stats.mean_duration_s == pytest.approx(6e-3, rel=0.02)
        assert stats.duty_cycle == pytest.approx(0.4, abs=0.01)

    def test_constant_above_threshold(self):
        stats = analyze_outages(constant_trace(100e-6, 0.1), threshold_w=33e-6)
        assert stats.count == 0
        assert stats.duty_cycle == 1.0
        assert stats.mean_duration_s == 0.0
        assert stats.max_duration_s == 0.0

    def test_total_below_matches_durations(self):
        trace = trace_of([0, 5, 0, 0, 5])
        stats = analyze_outages(trace, threshold_w=1.0)
        assert stats.total_below_s == pytest.approx(sum(stats.durations_s))

    def test_emergencies_per_second(self):
        trace = square_trace(
            high_w=1.0, low_w=0.0, period_s=0.02, duty=0.5, duration_s=2.0
        )
        stats = analyze_outages(trace, threshold_w=0.5)
        assert stats.emergencies_per_second(trace.duration_s) == pytest.approx(
            50.0, rel=0.05
        )

    def test_emergencies_rate_rejects_bad_duration(self):
        stats = analyze_outages(constant_trace(1.0, 0.1), threshold_w=0.5)
        with pytest.raises(ValueError):
            stats.emergencies_per_second(0.0)

    def test_histogram(self):
        trace = trace_of([0, 5, 0, 0, 5, 0, 0, 0, 5])
        stats = analyze_outages(trace, threshold_w=1.0)
        counts, edges = stats.histogram(bins=3)
        assert counts.sum() == stats.count
        assert len(edges) == 4

    def test_histogram_empty(self):
        stats = analyze_outages(constant_trace(1.0, 0.01), threshold_w=0.5)
        counts, _ = stats.histogram(bins=5)
        assert counts.sum() == 0
